#!/usr/bin/env python3
"""Heterogeneous multi-tenant GPU: where per-cluster DVFS pays off.

Deals a memory-bound tenant and a compute-bound tenant across the
clusters of a reduced GPU, then compares every chip-wide static
operating point against per-cluster SSMDVFS.  No single static level
can serve both tenants — the controller splits them (memory tenant at
the bottom of the table, compute tenant near the top) and beats the
best static EDP while honouring the latency preset.

Usage::

    python examples/mixed_tenancy.py
"""

from repro.gpu import GPUSimulator, small_test_config
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import compute_phase, memory_phase
from repro.datagen import ProtocolConfig
from repro.nn.trainer import TrainConfig
from repro.core import (PipelineConfig, SSMDVFSController, StaticPolicy,
                        build_ssmdvfs)

PRESET = 0.10


def main():
    arch = small_test_config(num_clusters=2)
    print("training a model (reduced setup)...")
    pipeline = build_ssmdvfs(
        arch,
        [
            KernelProfile("mt.compute",
                          [compute_phase("c", 120_000, warps=20)],
                          iterations=12, jitter=0.05),
            KernelProfile("mt.memory",
                          [memory_phase("m", 120_000, warps=48,
                                        l1_miss=0.9, l2_miss=0.9)],
                          iterations=12, jitter=0.05),
        ],
        PipelineConfig(
            protocol=ProtocolConfig(max_breakpoints_per_kernel=4, seed=12),
            feature_names=("power_per_core", "ipc", "stall_mem_hazard",
                           "stall_mem_hazard_nonload", "l1_read_miss"),
            train=TrainConfig(epochs=80, patience=12, learning_rate=3e-3),
            seed=12,
        ),
        variants=("base",),
    )
    model = pipeline.model("base")

    # Duration-balanced tenants (the memory tenant is bandwidth-capped,
    # so it needs far fewer instructions for the same wall-clock).
    tenants = [
        KernelProfile("mt.mem-tenant",
                      [memory_phase("m", 100_000, warps=48, l1_miss=0.9,
                                    l2_miss=0.9)],
                      iterations=2, jitter=0.06),
        KernelProfile("mt.cmp-tenant",
                      [compute_phase("c", 250_000, warps=20)],
                      iterations=4, jitter=0.05),
    ]

    print(f"\n{'policy':14s} {'latency':>8s} {'energy':>8s} {'EDP':>8s}")
    base = None
    for level in range(arch.vf_table.num_levels):
        simulator = GPUSimulator(arch, tenants, seed=9)
        run = simulator.run(StaticPolicy(level), keep_records=False)
        if level == arch.vf_table.default_level:
            base = run
    for level in range(arch.vf_table.num_levels):
        simulator = GPUSimulator(arch, tenants, seed=9)
        run = simulator.run(StaticPolicy(level), keep_records=False)
        print(f"static-l{level:<6d} {run.time_s / base.time_s:8.3f} "
              f"{run.energy_j / base.energy_j:8.3f} "
              f"{run.edp / base.edp:8.3f}")

    simulator = GPUSimulator(arch, tenants, seed=9)
    controller = SSMDVFSController(model, PRESET)
    run = simulator.run(controller, keep_records=True)
    print(f"{'ssmdvfs':14s} {run.time_s / base.time_s:8.3f} "
          f"{run.energy_j / base.energy_j:8.3f} {run.edp / base.edp:8.3f}")
    steady = run.records[2:-2] or run.records
    mem_mean = sum(r.levels[0] for r in steady) / len(steady)
    cmp_mean = sum(r.levels[1] for r in steady) / len(steady)
    print(f"\nssmdvfs split the tenants: memory cluster mean level "
          f"{mem_mean:.2f}, compute cluster mean level {cmp_mean:.2f}")


if __name__ == "__main__":
    main()
