#!/usr/bin/env python3
"""SSMDVFS vs PCSTALL vs F-LEMMA on evaluation kernels (paper Fig. 4).

Loads (or builds) the paper-scale model, then compares all policies on a
subset of the ~300 us evaluation programs at a 10 % performance-loss
preset, printing per-kernel normalized EDP/latency and the aggregate
improvements the paper headlines.

Usage::

    python examples/baseline_comparison.py [--kernels N] [--preset 0.10]
"""

import argparse

from repro.gpu import titan_x_config
from repro.workloads import (evaluation_suite, scale_kernel_to_duration,
                             training_suite)
from repro.datagen import ProtocolConfig, cached_dataset
from repro.nn.trainer import TrainConfig
from repro.core import PipelineConfig, build_from_dataset
from repro.evaluation import run_fig4

PAPER_FEATURES = ("power_per_core", "ipc", "stall_mem_hazard",
                  "stall_mem_hazard_nonload", "l1_read_miss")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", type=int, default=8,
                        help="number of evaluation kernels")
    parser.add_argument("--preset", type=float, default=0.10)
    parser.add_argument("--cache", default=".cache")
    args = parser.parse_args()

    arch = titan_x_config()
    print("building the model (dataset cached after the first run)...")
    dataset = cached_dataset(
        args.cache, training_suite(), arch,
        ProtocolConfig(max_breakpoints_per_kernel=10, seed=3))
    pipeline = build_from_dataset(dataset, arch, PipelineConfig(
        feature_names=PAPER_FEATURES,
        train=TrainConfig(epochs=250, patience=30, learning_rate=2e-3),
        seed=3,
    ))

    kernels = [scale_kernel_to_duration(k, arch, 300e-6)
               for k in evaluation_suite()[:args.kernels]]
    print(f"running Fig. 4 comparison on {len(kernels)} kernels at "
          f"preset {args.preset:.0%}...")
    fig4 = run_fig4(
        {"base": pipeline.models["base"],
         "pruned": pipeline.models["pruned"]},
        kernels, arch, presets=(args.preset,), seed=5)
    print(fig4.render())


if __name__ == "__main__":
    main()
