#!/usr/bin/env python3
"""ASIC cost of the SSMDVFS inference module (paper §V-D).

Builds a compressed+pruned model pair at the paper's final architecture
and prints the inference engine's cycle count, latency, area and power
at 65 nm and scaled to 28 nm, next to the paper's reported numbers.
Also shows the effect of quantizing the weights to 16-bit fixed point.

Usage::

    python examples/hardware_cost.py
"""

import numpy as np

from repro.hardware import ASICConfig, ASICModel
from repro.nn.compress import PAPER_COMPRESSED_SPEC, PAPER_PRUNE_PARAMS
from repro.nn.mlp import MLP
from repro.nn.prune import prune_model
from repro.nn.quant import quantize_model
from repro.units import us


def build_compressed_pair():
    """A 3+2x12 pair pruned with (x1, x2) = (0.6, 0.9) — Table II scale."""
    rng = np.random.default_rng(0)
    decision = MLP([6, *PAPER_COMPRESSED_SPEC.decision_hidden, 6], rng=rng)
    calibrator = MLP([7, *PAPER_COMPRESSED_SPEC.calibrator_hidden, 1],
                     rng=rng)
    x1, x2 = PAPER_PRUNE_PARAMS
    for model in (decision, calibrator):
        prune_model(model, x1, x2)
    return [decision, calibrator]


def main():
    models = build_compressed_pair()
    asic = ASICModel(ASICConfig(num_macs=1))
    report = asic.report(models, sparse=True, node_nm=28)

    print("SSMDVFS inference module (compressed + pruned pair)")
    print(f"  cycles / inference : {report.cycles_per_inference} "
          "(paper: 192)")
    print(f"  latency            : {report.latency_us:.3f} us "
          "(paper: 0.16 us @ 1165 MHz)")
    print(f"  area @65nm         : {report.area_mm2_reference:.4f} mm^2")
    print(f"  area @28nm         : {report.area_mm2_scaled:.4f} mm^2 "
          "(paper: 0.0080 mm^2)")
    print(f"  power              : {report.power_w_scaled * 1e3:.2f} mW "
          "(paper: 2.5 mW)")
    print(f"  share of 10us epoch: "
          f"{report.epoch_fraction(us(10)) * 100:.2f}% (paper: 1.65%)")
    print(f"  share of 250W TDP  : "
          f"{report.tdp_fraction(250.0) * 100:.5f}%")

    print("\nfixed-point ablation (weights quantized per layer):")
    for bits in (8, 12, 16):
        errors = []
        for model in models:
            _, quant_report = quantize_model(model, total_bits=bits)
            errors.append(quant_report.max_weight_error)
        print(f"  {bits:2d}-bit: max weight error {max(errors):.5f}")


if __name__ == "__main__":
    main()
