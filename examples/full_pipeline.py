#!/usr/bin/env python3
"""The paper-scale end-to-end build (Fig. 2).

Generates the training dataset over the Rodinia/Parboil/PolyBench-style
training suite on the 24-cluster GTX Titan X configuration, runs RFE
feature selection (Table I), trains the base 5+4x20 pair, the
layer-wise-compressed 3+2x12 pair, and the pruned pair (Table II), and
saves the deployable artefacts under ``artifacts/``.

First run takes a few minutes (data generation); the dataset is cached
under ``.cache/`` for subsequent runs.

Usage::

    python examples/full_pipeline.py [--fast] [--workers N] [--stats]
"""

import argparse
from pathlib import Path

from repro.gpu import titan_x_config
from repro.workloads import training_suite
from repro.datagen import ProtocolConfig, cached_dataset
from repro.nn.trainer import TrainConfig
from repro.core import PipelineConfig, build_from_dataset
from repro.evaluation import run_table1, run_table2
from repro.parallel import CampaignStats


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="fewer breakpoints and epochs (smoke run)")
    parser.add_argument("--cache", default=".cache",
                        help="dataset cache directory")
    parser.add_argument("--out", default="artifacts",
                        help="output directory for model artefacts")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool size for data generation "
                             "(1 = serial, 0 = all cores)")
    parser.add_argument("--stats", action="store_true",
                        help="print campaign timings and cache counters")
    parser.add_argument("--no-cache", action="store_true",
                        help="regenerate the dataset even if cached")
    args = parser.parse_args()

    arch = titan_x_config()
    breakpoints = 4 if args.fast else 10
    protocol = ProtocolConfig(max_breakpoints_per_kernel=breakpoints, seed=3)
    stats = CampaignStats()

    print(f"1. data generation ({len(training_suite())} kernels, "
          f"{breakpoints} breakpoints each; cached in {args.cache}/)...")
    dataset = cached_dataset(args.cache, training_suite(), arch, protocol,
                             workers=args.workers, stats=stats,
                             use_cache=not args.no_cache)
    print(f"   {dataset.num_groups} breakpoints, "
          f"{dataset.num_samples} samples")
    if args.stats:
        print(stats.render())

    print("2. feature selection (RFE, Table I)...")
    table1 = run_table1(dataset, arch, seed=3)
    print(table1.render())

    print("3. training + compression + pruning (Table II)...")
    config = PipelineConfig(
        feature_names=table1.rfe.all_features,
        train=TrainConfig(epochs=60 if args.fast else 250,
                          patience=30, learning_rate=2e-3),
        finetune=TrainConfig(epochs=30 if args.fast else 80,
                             patience=15, learning_rate=5e-4),
        seed=3,
    )
    pipeline = build_from_dataset(dataset, arch, config)
    table2 = run_table2(pipeline)
    print(table2.render())

    out = Path(args.out)
    for variant, model in pipeline.models.items():
        model.save(out / variant)
        print(f"   saved {variant} model -> {out / variant}")


if __name__ == "__main__":
    main()
