#!/usr/bin/env python3
"""Quickstart: train a small SSMDVFS model and drive a GPU kernel with it.

Runs in about a minute on a laptop.  It uses a reduced 2-cluster GPU and
a handful of synthetic kernels; see ``full_pipeline.py`` for the
paper-scale build.

Usage::

    python examples/quickstart.py
"""

from repro.gpu import GPUSimulator, small_test_config
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import balanced_phase, compute_phase, memory_phase
from repro.datagen import ProtocolConfig
from repro.nn.trainer import TrainConfig
from repro.core import (PipelineConfig, SSMDVFSController, StaticPolicy,
                        build_ssmdvfs)


def training_kernels():
    """Three small kernels spanning compute-bound to memory-bound."""
    return [
        KernelProfile("qs.compute", [compute_phase("c", 120_000, warps=20)],
                      iterations=12, jitter=0.05),
        KernelProfile("qs.memory",
                      [memory_phase("m", 120_000, l1_miss=0.8, l2_miss=0.8)],
                      iterations=12, jitter=0.05),
        KernelProfile("qs.balanced", [balanced_phase("b", 120_000)],
                      iterations=12, jitter=0.05),
    ]


def main():
    arch = small_test_config(num_clusters=2)

    print("1. building the SSMDVFS model (data generation + training)...")
    pipeline = build_ssmdvfs(
        arch,
        training_kernels(),
        PipelineConfig(
            protocol=ProtocolConfig(max_breakpoints_per_kernel=4, seed=1),
            feature_names=("power_per_core", "ipc", "stall_mem_hazard",
                           "stall_mem_hazard_nonload", "l1_read_miss"),
            train=TrainConfig(epochs=80, patience=12, learning_rate=3e-3),
            seed=1,
        ),
        variants=("base",),
    )
    pair = pipeline.pairs["base"]
    print(f"   decision accuracy {pair.accuracy_pct:.1f}%  "
          f"calibrator MAPE {pair.mape_pct:.1f}%")

    print("2. running an unseen mixed kernel under the controller...")
    unseen = KernelProfile(
        "qs.unseen",
        [memory_phase("m", 150_000), compute_phase("c", 100_000, warps=24)],
        iterations=4, jitter=0.06)

    results = {}
    for policy in (StaticPolicy(arch.vf_table.default_level),
                   SSMDVFSController(pipeline.model("base"), preset=0.10)):
        simulator = GPUSimulator(arch, unseen, seed=7)
        results[policy.name] = simulator.run(policy, keep_records=False)

    base = results["static-l5"]
    ssm = results["ssmdvfs-p10"]
    print(f"   baseline : {base.time_s * 1e6:7.1f} us, "
          f"{base.energy_j * 1e3:6.2f} mJ")
    print(f"   ssmdvfs  : {ssm.time_s * 1e6:7.1f} us, "
          f"{ssm.energy_j * 1e3:6.2f} mJ")
    print(f"   normalized EDP {ssm.edp / base.edp:.3f}  "
          f"latency {ssm.time_s / base.time_s:.3f} (preset 10%)")


if __name__ == "__main__":
    main()
