#!/usr/bin/env python3
"""Operating-point residency: what each DVFS policy actually does.

Runs the baseline, SSMDVFS, PCSTALL and F-LEMMA on one memory-bound and
one compute-bound kernel, and prints the V/f residency histogram of
each run — the most direct view of policy behaviour (a good policy
pins memory-bound code at the lowest point and compute-bound code near
the top; RL exploration smears residency across the table).

Usage::

    python examples/residency_analysis.py
"""

from repro.gpu import GPUSimulator, small_test_config
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import compute_phase, memory_phase
from repro.datagen import ProtocolConfig
from repro.nn.trainer import TrainConfig
from repro.baselines import FLEMMAPolicy, PCSTALLPolicy
from repro.core import (PipelineConfig, SSMDVFSController, StaticPolicy,
                        build_ssmdvfs)
from repro.evaluation import residency_from_records

PRESET = 0.10


def main():
    arch = small_test_config(num_clusters=2)
    print("training a model (reduced setup)...")
    pipeline = build_ssmdvfs(
        arch,
        [
            KernelProfile("res.compute",
                          [compute_phase("c", 120_000, warps=20)],
                          iterations=12, jitter=0.05),
            KernelProfile("res.memory",
                          [memory_phase("m", 120_000, warps=48,
                                        l1_miss=0.9, l2_miss=0.9)],
                          iterations=12, jitter=0.05),
        ],
        PipelineConfig(
            protocol=ProtocolConfig(max_breakpoints_per_kernel=4, seed=6),
            feature_names=("power_per_core", "ipc", "stall_mem_hazard",
                           "stall_mem_hazard_nonload", "l1_read_miss"),
            train=TrainConfig(epochs=80, patience=12, learning_rate=3e-3),
            seed=6,
        ),
        variants=("base",),
    )
    model = pipeline.model("base")

    workloads = {
        "memory-bound": KernelProfile(
            "res.mem-eval", [memory_phase("m", 140_000, warps=48,
                                          l1_miss=0.9, l2_miss=0.9)],
            iterations=10, jitter=0.06),
        "compute-bound": KernelProfile(
            "res.cmp-eval", [compute_phase("c", 140_000, warps=18)],
            iterations=10, jitter=0.06),
    }

    for label, kernel in workloads.items():
        print(f"\n=== {label} kernel ===")
        policies = [
            StaticPolicy(arch.vf_table.default_level),
            SSMDVFSController(model, PRESET),
            PCSTALLPolicy(PRESET),
            FLEMMAPolicy(PRESET, seed=1),
        ]
        for policy in policies:
            simulator = GPUSimulator(arch, kernel, seed=8)
            result = simulator.run(policy, keep_records=True)
            profile = residency_from_records(result.records,
                                             arch.vf_table.num_levels)
            print(f"{policy.name:14s} {profile.render()}  "
                  f"entropy={profile.entropy_bits():.2f} bits")


if __name__ == "__main__":
    main()
