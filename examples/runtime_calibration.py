#!/usr/bin/env python3
"""Demonstrates the self-calibration mechanism (paper Fig. 1, §III-C).

Runs a phase-shifting kernel under the controller with and without the
Calibrator and prints the per-epoch operating-point and working-preset
traces, plus the end-to-end latency each achieves.  The calibrated run
tightens its working preset whenever the measured instruction count
falls short of the Calibrator's prediction, pulling latency back toward
the user preset.

Usage::

    python examples/runtime_calibration.py
"""

from repro.gpu import GPUSimulator, small_test_config
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import compute_phase, divergent_phase, memory_phase
from repro.datagen import ProtocolConfig
from repro.nn.trainer import TrainConfig
from repro.core import (PipelineConfig, SSMDVFSController, StaticPolicy,
                        build_ssmdvfs)

PRESET = 0.10


def main():
    arch = small_test_config(num_clusters=2)
    print("training a model (reduced setup)...")
    pipeline = build_ssmdvfs(
        arch,
        [
            KernelProfile("cal.compute",
                          [compute_phase("c", 120_000, warps=20)],
                          iterations=12, jitter=0.05),
            KernelProfile("cal.memory",
                          [memory_phase("m", 120_000, l1_miss=0.8,
                                        l2_miss=0.8)],
                          iterations=12, jitter=0.05),
            KernelProfile("cal.mixed",
                          [compute_phase("c", 100_000, warps=24),
                           memory_phase("m", 100_000)],
                          iterations=8, jitter=0.08),
        ],
        PipelineConfig(
            protocol=ProtocolConfig(max_breakpoints_per_kernel=4, seed=2),
            feature_names=("power_per_core", "ipc", "stall_mem_hazard",
                           "stall_mem_hazard_nonload", "l1_read_miss"),
            train=TrainConfig(epochs=80, patience=12, learning_rate=3e-3),
            seed=2,
        ),
        variants=("base",),
    )
    model = pipeline.model("base")

    # A kernel that swings between behaviours: exactly where one-epoch-
    # ahead prediction goes wrong and calibration earns its keep.
    swinging = KernelProfile(
        "cal.swing",
        [compute_phase("c", 140_000, warps=20),
         divergent_phase("d", 60_000, warps=20),
         memory_phase("m", 120_000)],
        iterations=4, jitter=0.10)

    base = GPUSimulator(arch, swinging, seed=9).run(
        StaticPolicy(arch.vf_table.default_level), keep_records=False)

    for use_calibrator in (False, True):
        controller = SSMDVFSController(model, preset=PRESET,
                                       use_calibrator=use_calibrator)
        simulator = GPUSimulator(arch, swinging, seed=9)
        result = simulator.run(controller, keep_records=True)
        latency = result.time_s / base.time_s
        label = "with calibrator" if use_calibrator else "without calibrator"
        print(f"\n--- {label}: normalized latency {latency:.3f} "
              f"(preset {PRESET:.0%}), normalized EDP "
              f"{result.edp / base.edp:.3f}")
        levels = [r.levels[0] for r in result.records]
        print("   levels : " + " ".join(str(l) for l in levels))
        if use_calibrator:
            print("   preset : " + " ".join(
                f"{p:.2f}" for p in controller.preset_trace))


if __name__ == "__main__":
    main()
