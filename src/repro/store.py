"""Crash-consistent artifact store and atomic-write helpers.

A production DVFS deployment keeps trained Decision-maker / Calibrator
pairs, datasets and evaluation grids on disk, and a crash mid-write
must never leave a torn file that a later run silently trusts (or
silently retrains from).  This module provides the two layers that
guarantee:

* :func:`atomic_write_bytes` / :func:`atomic_write_text` — the shared
  write-temp / fsync / rename helper every persistent writer in the
  repo routes through (dataset cache, evaluation-grid cache, sweep
  cache, campaign checkpoints, model artefacts).  A reader of the
  destination path sees either the complete old content or the
  complete new content, never a prefix.  Crash simulation is built in:
  ``crash_after`` aborts the write after that many payload bytes with
  :class:`SimulatedCrash`, leaving exactly the on-disk state a power
  loss would — the chaos-soak harness and the torn-write tests drive
  every byte offset through it.

* :class:`ArtifactStore` — a versioned, checksummed registry.  Every
  ``put`` writes a self-describing version file (magic + JSON header
  with schema version, payload length and an embedded SHA-256, then
  the payload) through the atomic helper and records it in a
  per-artifact manifest.  ``get`` verifies the digest before returning
  a single byte and raises :class:`~repro.errors.ArtifactCorrupt` on
  mismatch — or transparently falls back to the newest *verifying*
  version when one exists.  A ``last_known_good`` pointer per artifact
  name, advanced only by :meth:`ArtifactStore.mark_good`, is what the
  drift-rollback machinery restores from.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from .errors import ArtifactCorrupt, ReproError

#: First line of every version file; bump when the header layout changes.
ARTIFACT_MAGIC = b"repro-artifact-v1"

#: Manifest schema identifier (checked on load; mismatch = rebuild).
MANIFEST_MAGIC = "repro-artifact-manifest-v1"


class SimulatedCrash(ReproError):
    """An injected mid-write crash (testing / chaos-soak only).

    Raised by the atomic-write helpers when ``crash_after`` is set:
    the temp file holds a prefix of the payload, the destination is
    untouched — exactly the state a real kill would leave.
    """


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so a completed rename survives power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform without directory fsync (not a correctness loss)
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes, *,
                       crash_after: int | None = None) -> None:
    """Write ``data`` to ``path`` atomically (temp + fsync + rename).

    Readers of ``path`` observe either its previous content or ``data``
    in full — never a torn prefix.  ``crash_after`` simulates a crash:
    the temp file is flushed with exactly that many payload bytes and
    :class:`SimulatedCrash` is raised *without* renaming (a value
    larger than ``len(data)`` crashes after the full write but before
    the rename, exercising the rename boundary).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            if crash_after is not None and crash_after <= len(data):
                handle.write(data[:crash_after])
                handle.flush()
                os.fsync(handle.fileno())
                raise SimulatedCrash(
                    f"injected crash after {crash_after} of "
                    f"{len(data)} bytes -> {path.name}")
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        if crash_after is not None:
            raise SimulatedCrash(
                f"injected crash before rename -> {path.name}")
        os.replace(tmp, path)
    except SimulatedCrash:
        raise  # leave the temp file behind, exactly like a real kill
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_dir(path.parent)


def atomic_write_text(path: str | Path, text: str, *,
                      crash_after: int | None = None) -> None:
    """UTF-8 convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"), crash_after=crash_after)


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256 of a payload (the digest embedded in version files)."""
    return hashlib.sha256(data).hexdigest()


# ---------------------------------------------------------------------------
# Versioned registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ArtifactVersion:
    """Manifest entry describing one stored version of an artifact."""

    version: int
    filename: str
    sha256: str
    schema: str
    length: int

    def to_payload(self) -> dict:
        """JSON-ready manifest entry."""
        return {"version": self.version, "filename": self.filename,
                "sha256": self.sha256, "schema": self.schema,
                "length": self.length}

    @classmethod
    def from_payload(cls, payload: dict) -> "ArtifactVersion":
        """Inverse of :meth:`to_payload`."""
        return cls(version=int(payload["version"]),
                   filename=str(payload["filename"]),
                   sha256=str(payload["sha256"]),
                   schema=str(payload["schema"]),
                   length=int(payload["length"]))


def _encode_version_file(data: bytes, schema: str) -> bytes:
    header = json.dumps({"schema": schema, "sha256": sha256_hex(data),
                         "length": len(data)}, sort_keys=True)
    return b"\n".join([ARTIFACT_MAGIC, header.encode("utf-8"), data])


def _decode_version_file(blob: bytes, path: Path) -> tuple[bytes, dict]:
    """Split and verify a version file; raises ArtifactCorrupt."""
    magic, _, rest = blob.partition(b"\n")
    if magic != ARTIFACT_MAGIC:
        raise ArtifactCorrupt(f"{path}: bad or missing artifact magic")
    header_line, _, payload = rest.partition(b"\n")
    try:
        header = json.loads(header_line.decode("utf-8"))
    except Exception as exc:
        raise ArtifactCorrupt(f"{path}: unreadable header") from exc
    if len(payload) != header.get("length"):
        raise ArtifactCorrupt(
            f"{path}: truncated payload ({len(payload)} bytes, header "
            f"says {header.get('length')})")
    if sha256_hex(payload) != header.get("sha256"):
        raise ArtifactCorrupt(f"{path}: SHA-256 mismatch")
    return payload, header


class ArtifactStore:
    """Versioned, checksummed, crash-consistent artifact registry.

    Layout: ``root/<name>/v<NNNNNN>.art`` version files plus a
    ``manifest.json`` per artifact name recording the version list and
    the ``last_known_good`` pointer.  Both are written through the
    atomic helper, so no crash can leave a reader-visible torn file.  A
    corrupt or missing manifest is rebuilt by re-scanning (and
    re-verifying) the version files — degraded, never fatal.  A corrupt
    version file raises :class:`~repro.errors.ArtifactCorrupt` on
    direct reads; reads without an explicit version transparently fall
    back to the newest version that still verifies.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        #: Observability counters (``store_*`` names), merged into
        #: campaign ``--stats`` by the soak harness.
        self.counters: dict[str, int] = {}

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    # -- manifest ------------------------------------------------------
    def _dir(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise ReproError(f"invalid artifact name {name!r}")
        return self.root / name

    def _manifest_path(self, name: str) -> Path:
        return self._dir(name) / "manifest.json"

    def _load_manifest(self, name: str) -> dict:
        path = self._manifest_path(name)
        if path.exists():
            try:
                payload = json.loads(path.read_text())
                if payload.get("magic") != MANIFEST_MAGIC:
                    raise ArtifactCorrupt(f"{path}: wrong manifest magic")
                versions = [ArtifactVersion.from_payload(entry)
                            for entry in payload["versions"]]
                return {"versions": versions,
                        "last_known_good": payload.get("last_known_good")}
            except Exception:
                self._count("store_manifest_rebuilds")
        elif not self._dir(name).exists():
            return {"versions": [], "last_known_good": None}
        else:
            self._count("store_manifest_rebuilds")
        return self._rebuild_manifest(name)

    def _rebuild_manifest(self, name: str) -> dict:
        """Re-scan version files after manifest loss/corruption."""
        versions = []
        for file in sorted(self._dir(name).glob("v*.art")):
            try:
                payload, header = _decode_version_file(file.read_bytes(),
                                                       file)
            except ArtifactCorrupt:
                continue  # unverifiable versions are not resurrected
            try:
                number = int(file.stem[1:])
            except ValueError:
                continue
            versions.append(ArtifactVersion(
                version=number, filename=file.name,
                sha256=header["sha256"], schema=header["schema"],
                length=header["length"]))
        manifest = {"versions": versions, "last_known_good": None}
        if versions:
            self._save_manifest(name, manifest)
        return manifest

    def _save_manifest(self, name: str, manifest: dict, *,
                       crash_after: int | None = None) -> None:
        payload = {
            "magic": MANIFEST_MAGIC,
            "versions": [v.to_payload() for v in manifest["versions"]],
            "last_known_good": manifest["last_known_good"],
        }
        atomic_write_text(self._manifest_path(name),
                          json.dumps(payload, indent=2, sort_keys=True),
                          crash_after=crash_after)

    # -- public API ----------------------------------------------------
    def names(self) -> list[str]:
        """All artifact names present under the store root."""
        if not self.root.exists():
            return []
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())

    def versions(self, name: str) -> list[ArtifactVersion]:
        """Manifest entries for ``name``, oldest first."""
        return sorted(self._load_manifest(name)["versions"],
                      key=lambda v: v.version)

    def latest_version(self, name: str) -> int | None:
        """Highest recorded version number (None when absent)."""
        versions = self.versions(name)
        return versions[-1].version if versions else None

    def last_known_good(self, name: str) -> int | None:
        """The version :meth:`mark_good` last blessed (None if never)."""
        return self._load_manifest(name)["last_known_good"]

    def put(self, name: str, data: bytes, schema: str = "bytes/v1", *,
            mark_good: bool = False,
            crash_after: int | None = None) -> int:
        """Store a new version of ``name``; returns its version number.

        ``mark_good`` additionally advances the ``last_known_good``
        pointer — callers should only set it after validating the
        payload end-to-end.  ``crash_after`` forwards to the atomic
        writer for crash simulation: the store is guaranteed readable
        (old versions intact, manifest consistent) after the simulated
        kill.
        """
        if not isinstance(data, bytes):
            raise ReproError("artifact payload must be bytes")
        manifest = self._load_manifest(name)
        versions = manifest["versions"]
        number = (max(v.version for v in versions) + 1) if versions else 1
        filename = f"v{number:06d}.art"
        atomic_write_bytes(self._dir(name) / filename,
                           _encode_version_file(data, schema),
                           crash_after=crash_after)
        versions.append(ArtifactVersion(
            version=number, filename=filename, sha256=sha256_hex(data),
            schema=schema, length=len(data)))
        if mark_good:
            manifest["last_known_good"] = number
        self._save_manifest(name, manifest)
        self._count("store_puts")
        return number

    def _read_version(self, name: str, entry: ArtifactVersion) -> bytes:
        path = self._dir(name) / entry.filename
        if not path.exists():
            raise ArtifactCorrupt(f"{path}: version file missing")
        payload, header = _decode_version_file(path.read_bytes(), path)
        if header["sha256"] != entry.sha256:
            raise ArtifactCorrupt(
                f"{path}: digest differs from manifest entry")
        return payload

    def get(self, name: str, version: int | None = None, *,
            fallback: bool = True) -> bytes:
        """Read and verify one version's payload.

        ``version=None`` reads the ``last_known_good`` version when one
        is marked, the newest otherwise.  On a failed digest check the
        read falls back to the newest older version that verifies
        (``store_fallbacks`` counts it) unless ``fallback=False``, in
        which case :class:`~repro.errors.ArtifactCorrupt` propagates.
        """
        entries = self.versions(name)
        if not entries:
            raise ArtifactCorrupt(f"no artifact named {name!r} in store")
        by_version = {entry.version: entry for entry in entries}
        if version is None:
            version = self._load_manifest(name)["last_known_good"]
            if version is None:
                version = entries[-1].version
        if version not in by_version:
            raise ArtifactCorrupt(f"{name!r} has no version {version}")
        try:
            payload = self._read_version(name, by_version[version])
            self._count("store_reads")
            return payload
        except ArtifactCorrupt:
            self._count("store_corrupt_reads")
            if not fallback:
                raise
        for entry in reversed(entries):
            if entry.version == version:
                continue
            try:
                payload = self._read_version(name, entry)
            except ArtifactCorrupt:
                self._count("store_corrupt_reads")
                continue
            self._count("store_fallbacks")
            return payload
        raise ArtifactCorrupt(
            f"{name!r}: no stored version verifies (tried "
            f"{[e.version for e in entries]})")

    def verify(self, name: str, version: int) -> bool:
        """True when the version's payload matches its embedded digest."""
        entries = {e.version: e for e in self.versions(name)}
        if version not in entries:
            return False
        try:
            self._read_version(name, entries[version])
            return True
        except ArtifactCorrupt:
            return False

    def mark_good(self, name: str, version: int) -> None:
        """Advance ``last_known_good`` after the caller validated it."""
        manifest = self._load_manifest(name)
        if version not in {v.version for v in manifest["versions"]}:
            raise ArtifactCorrupt(f"{name!r} has no version {version}")
        manifest["last_known_good"] = version
        self._save_manifest(name, manifest)

    def rollback(self, name: str) -> int:
        """Force ``last_known_good`` back to the previous verifying version.

        The operations runbook's manual override: demotes the pointer
        past the currently-blessed version and returns the new target.
        Raises :class:`~repro.errors.ArtifactCorrupt` when nothing
        older verifies.
        """
        manifest = self._load_manifest(name)
        entries = sorted(manifest["versions"], key=lambda v: v.version)
        current = manifest["last_known_good"]
        if current is None and entries:
            current = entries[-1].version
        candidates = [e for e in entries if e.version < (current or 0)]
        for entry in reversed(candidates):
            if self.verify(name, entry.version):
                manifest["last_known_good"] = entry.version
                self._save_manifest(name, manifest)
                self._count("store_rollbacks")
                return entry.version
        raise ArtifactCorrupt(
            f"{name!r}: no verifying version older than {current}")

    def prune(self, name: str, keep_last: int, *,
              crash_after: int | None = None) -> int:
        """Retire old versions, always preserving ``last_known_good``.

        Keeps the ``keep_last`` newest versions plus the blessed
        version (wherever it sits), deletes the rest, and returns how
        many were removed.  Crash-safe by ordering: the shrunk manifest
        is committed atomically *first*, then doomed version files are
        unlinked.  A crash between the two steps (simulated through
        ``crash_after``, which forwards to the manifest write) leaves
        orphaned ``v*.art`` files that no manifest references — harmless
        to every read path, and swept up by the next prune, which
        removes any version file absent from the kept manifest.
        """
        if keep_last < 1:
            raise ReproError("prune must keep at least one version")
        manifest = self._load_manifest(name)
        entries = sorted(manifest["versions"], key=lambda v: v.version)
        good = manifest["last_known_good"]
        keep_versions = {entry.version for entry in entries[-keep_last:]}
        if good is not None:
            keep_versions.add(good)
        kept = [entry for entry in entries
                if entry.version in keep_versions]
        if len(kept) != len(entries):
            manifest["versions"] = kept
            self._save_manifest(name, manifest, crash_after=crash_after)
        kept_files = {entry.filename for entry in kept}
        pruned = 0
        for file in sorted(self._dir(name).glob("v*.art")):
            if file.name not in kept_files:
                file.unlink()
                pruned += 1
        if pruned:
            self._count("store_pruned_versions", pruned)
        return pruned

    def render(self) -> str:
        """Human-readable registry listing (the runbook's inspect view)."""
        lines = [f"artifact store at {self.root}"]
        names = self.names()
        if not names:
            lines.append("  (empty)")
        for name in names:
            good = self.last_known_good(name)
            lines.append(f"  {name}")
            for entry in self.versions(name):
                ok = self.verify(name, entry.version)
                tags = []
                if entry.version == good:
                    tags.append("last-known-good")
                tags.append("ok" if ok else "CORRUPT")
                lines.append(
                    f"    v{entry.version:06d}  {entry.length:>10d} B  "
                    f"{entry.schema:16s} {entry.sha256[:12]}  "
                    f"[{', '.join(tags)}]")
        return "\n".join(lines)
