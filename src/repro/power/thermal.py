"""Lumped RC thermal model with leakage feedback (extension).

The paper treats temperature implicitly (leakage constants at a fixed
operating temperature).  This extension closes the loop the way
McPAT/HotSpot co-simulations do, at the coarsest useful granularity:
one thermal RC node per cluster plus one for the package.

* Temperature integrates ``C dT/dt = P - (T - T_amb) / R``.
* Leakage grows exponentially with temperature:
  ``P_leak(T) = P_leak(T0) * exp(k * (T - T0))``.

The feedback means sustained high-V/f operation heats the die, which
inflates leakage, which heats the die further — the runaway DVFS is
ultimately protecting against.  The `bench_ablation_thermal` benchmark
quantifies the peak-temperature reduction SSMDVFS buys on top of its
EDP savings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError

#: Default leakage-temperature sensitivity (1/K); ~2x per 25-30 K.
DEFAULT_LEAK_TEMP_COEFF = 0.025


@dataclass(frozen=True)
class ThermalConfig:
    """RC constants of the per-cluster thermal node.

    Defaults give a cluster-scale silicon+spreader node: a thermal time
    constant of a few milliseconds, so µs-scale power changes integrate
    smoothly (temperature is the *slow* state DVFS acts through).
    """

    ambient_c: float = 45.0
    reference_c: float = 60.0
    resistance_c_per_w: float = 4.0
    capacitance_j_per_c: float = 2.0e-3
    leak_temp_coeff: float = DEFAULT_LEAK_TEMP_COEFF
    max_temperature_c: float = 150.0

    def __post_init__(self) -> None:
        if self.resistance_c_per_w <= 0:
            raise ConfigError("thermal resistance must be positive")
        if self.capacitance_j_per_c <= 0:
            raise ConfigError("thermal capacitance must be positive")
        if self.leak_temp_coeff < 0:
            raise ConfigError("leakage coefficient cannot be negative")
        if self.max_temperature_c <= self.ambient_c:
            raise ConfigError("max temperature must exceed ambient")

    @property
    def time_constant_s(self) -> float:
        """RC time constant of the node."""
        return self.resistance_c_per_w * self.capacitance_j_per_c


class ThermalNode:
    """One first-order RC thermal node with exact exponential stepping."""

    def __init__(self, config: ThermalConfig | None = None,
                 initial_c: float | None = None) -> None:
        self.config = config or ThermalConfig()
        self.temperature_c = (self.config.ambient_c if initial_c is None
                              else float(initial_c))
        self.peak_c = self.temperature_c

    def steady_state_c(self, power_w: float) -> float:
        """Temperature the node settles at under constant ``power_w``."""
        if power_w < 0:
            raise ConfigError("power cannot be negative")
        return self.config.ambient_c + power_w * self.config.resistance_c_per_w

    def step(self, power_w: float, dt_s: float) -> float:
        """Advance ``dt_s`` seconds under constant power; returns T.

        Uses the exact solution of the linear RC ODE, so arbitrarily
        long epochs step stably.
        """
        if dt_s <= 0:
            raise ConfigError("time step must be positive")
        target = self.steady_state_c(power_w)
        alpha = math.exp(-dt_s / self.config.time_constant_s)
        self.temperature_c = target + (self.temperature_c - target) * alpha
        self.temperature_c = min(self.temperature_c,
                                 self.config.max_temperature_c)
        self.peak_c = max(self.peak_c, self.temperature_c)
        return self.temperature_c

    def leakage_multiplier(self) -> float:
        """Factor to apply to reference-temperature leakage power."""
        delta = self.temperature_c - self.config.reference_c
        return math.exp(self.config.leak_temp_coeff * delta)


class ThermalTracker:
    """Per-cluster thermal nodes driven by epoch power, with feedback.

    Usage: after each simulator epoch, feed the per-cluster powers; the
    tracker returns the leakage-adjusted *additional* energy and keeps
    temperature/peak statistics.
    """

    def __init__(self, num_clusters: int,
                 config: ThermalConfig | None = None) -> None:
        if num_clusters <= 0:
            raise ConfigError("num_clusters must be positive")
        self.config = config or ThermalConfig()
        self.nodes = [ThermalNode(self.config) for _ in range(num_clusters)]

    def step_epoch(self, cluster_powers_w: list[float],
                   static_powers_w: list[float], dt_s: float) -> float:
        """Advance all nodes one epoch; returns extra leakage energy (J).

        ``cluster_powers_w`` drives heating; ``static_powers_w`` is the
        reference-temperature leakage share that the temperature
        multiplier applies to.
        """
        if len(cluster_powers_w) != len(self.nodes):
            raise ConfigError("power list length mismatch")
        if len(static_powers_w) != len(self.nodes):
            raise ConfigError("static power list length mismatch")
        extra_energy = 0.0
        for node, power, static in zip(self.nodes, cluster_powers_w,
                                       static_powers_w):
            if power < 0 or static < 0:
                raise ConfigError("powers cannot be negative")
            node.step(power, dt_s)
            extra_energy += static * (node.leakage_multiplier() - 1.0) * dt_s
        return extra_energy

    @property
    def peak_temperature_c(self) -> float:
        """Hottest temperature any cluster has reached."""
        return max(node.peak_c for node in self.nodes)

    @property
    def mean_temperature_c(self) -> float:
        """Current mean cluster temperature."""
        return sum(n.temperature_c for n in self.nodes) / len(self.nodes)


def run_with_thermal(simulator, policy, config: ThermalConfig | None = None,
                     max_epochs: int = 100_000):
    """Run a policy with the thermal feedback loop engaged.

    Returns ``(run_result, tracker)`` where the run's energy account
    includes the temperature-driven extra leakage.  The policy sees the
    unmodified counters (temperature sensors are out of scope for the
    paper's feature set).
    """
    from ..power.energy import EnergyAccount
    from ..gpu.simulator import RunResult

    tracker = ThermalTracker(len(simulator.clusters), config)
    policy.reset(simulator)
    account = EnergyAccount()
    epochs = 0
    records = []
    while not simulator.finished:
        if epochs >= max_epochs:
            raise ConfigError("thermal run exceeded the epoch budget")
        record = simulator.step_epoch()
        epochs += 1
        powers = [c["power_per_core"] for c in record.cluster_counters]
        statics = [c["power_static"] for c in record.cluster_counters]
        extra = tracker.step_epoch(powers, statics, record.duration_s)
        if record.all_finished:
            time_s, energy_j = simulator.truncate_final_record(record)
            account.add(energy_j + extra, time_s)
        else:
            account.add(record.energy_j + extra, record.duration_s)
            simulator.apply_decision(policy.decide(record))
        records.append(record)
    return RunResult(policy_name=policy.name,
                     kernel_name=simulator.kernel.name,
                     account=account, epochs=epochs,
                     records=records), tracker
