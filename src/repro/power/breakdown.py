"""Energy breakdown accounting.

Answers "where did the savings come from?" by splitting a run's energy
into the components the power model computes: instruction (EPI) energy,
clock-tree energy, cluster leakage, uncore static, DRAM traffic and L2
traffic.  DVFS can only shrink the V- and f-dependent slices; the
breakdown makes that headroom explicit per workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..gpu.cluster import EpochActivity
from .model import REFERENCE_VOLTAGE, PowerModel


@dataclass
class EnergyBreakdown:
    """Joules per component, accumulated over a run."""

    instruction_j: float = 0.0
    clock_j: float = 0.0
    cluster_leakage_j: float = 0.0
    uncore_static_j: float = 0.0
    dram_j: float = 0.0
    l2_j: float = 0.0

    COMPONENTS = ("instruction", "clock", "cluster_leakage",
                  "uncore_static", "dram", "l2")

    @property
    def total_j(self) -> float:
        """Sum over every component."""
        return (self.instruction_j + self.clock_j + self.cluster_leakage_j
                + self.uncore_static_j + self.dram_j + self.l2_j)

    def fraction(self, component: str) -> float:
        """One component's share of the total."""
        if component not in self.COMPONENTS:
            raise ConfigError(f"unknown component {component!r}")
        total = self.total_j
        if total <= 0:
            return 0.0
        return getattr(self, f"{component}_j") / total

    @property
    def dvfs_scalable_fraction(self) -> float:
        """Share of energy that V/f scaling can actually shrink.

        Instruction and clock energy scale with V^2 (and f through
        time); leakage scales with voltage.  Uncore static and traffic
        energy are frequency-invariant — the floor under any DVFS gain.
        """
        total = self.total_j
        if total <= 0:
            return 0.0
        return (self.instruction_j + self.clock_j
                + self.cluster_leakage_j) / total

    def add(self, other: "EnergyBreakdown") -> None:
        """Accumulate another breakdown in place."""
        self.instruction_j += other.instruction_j
        self.clock_j += other.clock_j
        self.cluster_leakage_j += other.cluster_leakage_j
        self.uncore_static_j += other.uncore_static_j
        self.dram_j += other.dram_j
        self.l2_j += other.l2_j

    def render(self) -> str:
        """One-line percentage rendering."""
        parts = [f"{name}={self.fraction(name):5.1%}"
                 for name in self.COMPONENTS]
        return ("[" + " ".join(parts)
                + f"] total={self.total_j * 1e3:.2f} mJ "
                + f"(DVFS-scalable {self.dvfs_scalable_fraction:.1%})")


def breakdown_for_epoch(activities: list[EpochActivity],
                        power_model: PowerModel,
                        duration_s: float) -> EnergyBreakdown:
    """Component energies of one epoch across all clusters."""
    if duration_s <= 0:
        raise ConfigError("duration must be positive")
    cfg = power_model.config
    breakdown = EnergyBreakdown()
    for activity in activities:
        vratio = activity.voltage_v / REFERENCE_VOLTAGE
        v2 = vratio * vratio
        inst_energy = sum(
            count * cfg.epi_table.get(cls, 0.0)
            for cls, count in activity.inst_by_class.items()) * v2
        clock_energy = (activity.cycles * cfg.clock_energy_per_cycle_j * v2)
        leak_power = cfg.cluster_leakage_w * (
            vratio ** cfg.leakage_voltage_exponent)
        breakdown.instruction_j += inst_energy
        breakdown.clock_j += clock_energy
        breakdown.cluster_leakage_j += leak_power * activity.duration_s
    dram_bytes = sum(a.dram_bytes for a in activities)
    l2_accesses = sum(a.l2_access for a in activities)
    breakdown.dram_j = dram_bytes * cfg.dram_energy_per_byte_j
    breakdown.l2_j = l2_accesses * cfg.l2_energy_per_access_j
    breakdown.uncore_static_j = cfg.uncore_static_w * duration_s
    return breakdown


def run_with_breakdown(simulator, policy,
                       max_epochs: int = 100_000) -> tuple:
    """Run a policy while accumulating the energy breakdown.

    Returns ``(run_result, breakdown)``.  The breakdown's total closely
    tracks the run's accounted energy (final-epoch truncation excepted).
    """
    from ..gpu.simulator import RunResult
    from .energy import EnergyAccount

    policy.reset(simulator)
    account = EnergyAccount()
    breakdown = EnergyBreakdown()
    epochs = 0
    while not simulator.finished:
        if epochs >= max_epochs:
            raise ConfigError("run exceeded the epoch budget")
        # Capture activities by stepping the clusters through the
        # simulator's normal path and recomputing components.
        activities = [cluster.run_epoch(simulator.epoch_s)
                      for cluster in simulator.clusters]
        epoch_breakdown = breakdown_for_epoch(
            activities, simulator.power_model, simulator.epoch_s)
        breakdown.add(epoch_breakdown)
        account.add(epoch_breakdown.total_j, simulator.epoch_s)
        simulator.time_s += simulator.epoch_s
        simulator.epoch_index += 1
        epochs += 1
        if simulator.finished:
            break
        # Rebuild a record for the policy from the same activities.
        from ..gpu.cluster import build_counters
        from ..gpu.counters import CounterSet
        from ..gpu.simulator import EpochRecord
        cluster_counters = []
        for activity in activities:
            power = simulator.power_model.cluster_power(activity)
            counters = build_counters(activity, simulator.arch)
            counters["power_per_core"] = power.total_w
            counters["power_dynamic"] = power.dynamic_w
            counters["power_static"] = power.static_w
            counters["energy_epoch"] = power.energy_j
            cluster_counters.append(counters)
        record = EpochRecord(
            index=epochs - 1, start_time_s=simulator.time_s,
            duration_s=simulator.epoch_s,
            levels=[c.level for c in simulator.clusters],
            counters=CounterSet.average(cluster_counters),
            cluster_counters=cluster_counters,
            instructions=sum(a.instructions for a in activities),
            cluster_energy_j=epoch_breakdown.total_j,
            uncore_energy_j=0.0,
            all_finished=all(a.finished for a in activities),
            finish_time_s=max(a.busy_s for a in activities))
        simulator.apply_decision(policy.decide(record))
    result = RunResult(policy_name=policy.name,
                       kernel_name=simulator.workload_name,
                       account=account, epochs=epochs, records=[])
    return result, breakdown
