"""McPAT-surrogate power model.

Per-cluster power is decomposed the way McPAT exposes it to DVFS
studies:

* **Dynamic** energy scales with activity and ``V^2``: a per-cycle
  baseline (clock tree, scheduling) plus an energy-per-instruction
  (EPI) table by instruction class.
* **Static** (leakage) power scales super-linearly with voltage and is
  always on.
* **Uncore** power (L2, NoC, memory controllers, DRAM) belongs to the
  GPU, not to any cluster, and is driven by traffic.

Constants are calibrated so a fully loaded 24-cluster GTX Titan X at
the default operating point lands inside its 250 W TDP envelope, with
the usual ~60/40 core/uncore split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from ..gpu.cluster import (A_CYCLES, A_DRAM_BYTES, A_L2_ACCESS, _CLASS_SLICE,
                           EpochActivity)
from ..gpu.phases import INSTRUCTION_CLASSES

#: Reference voltage for the EPI table (volts).
REFERENCE_VOLTAGE = 1.0


def _default_epi_table() -> dict[str, float]:
    """Energy per warp-instruction (joules) at the reference voltage."""
    return {
        "fp32": 1.4e-9,
        "fp64": 4.0e-9,
        "int": 1.1e-9,
        "sfu": 2.5e-9,
        "load": 2.0e-9,
        "store": 2.0e-9,
        "shared": 1.5e-9,
        "branch": 0.9e-9,
        "sync": 0.6e-9,
    }


@dataclass(frozen=True)
class PowerModelConfig:
    """Tunable constants of the power model.

    Attributes
    ----------
    epi_table:
        Energy per warp-instruction by class at the reference voltage.
    clock_energy_per_cycle_j:
        Per-cluster baseline dynamic energy burned every core cycle
        (clock distribution, schedulers) at the reference voltage.
    cluster_leakage_w:
        Per-cluster leakage at the reference voltage.
    leakage_voltage_exponent:
        Leakage scales as ``(V / Vref) ** exponent`` (super-linear).
    uncore_static_w:
        GPU-level always-on power (L2 arrays, MCs, fans, board).
    dram_energy_per_byte_j:
        DRAM access energy per byte transferred.
    l2_energy_per_access_j:
        L2 access energy per line access.
    """

    epi_table: dict[str, float] = field(default_factory=_default_epi_table)
    clock_energy_per_cycle_j: float = 1.2e-9
    cluster_leakage_w: float = 0.55
    leakage_voltage_exponent: float = 3.0
    uncore_static_w: float = 28.0
    dram_energy_per_byte_j: float = 60e-12
    l2_energy_per_access_j: float = 8e-9

    def __post_init__(self) -> None:
        if any(v < 0 for v in self.epi_table.values()):
            raise ConfigError("EPI entries cannot be negative")
        for name in ("clock_energy_per_cycle_j", "cluster_leakage_w",
                     "uncore_static_w", "dram_energy_per_byte_j",
                     "l2_energy_per_access_j"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} cannot be negative")
        if self.leakage_voltage_exponent < 1.0:
            raise ConfigError("leakage exponent must be >= 1")


@dataclass(frozen=True)
class ClusterPower:
    """Power breakdown of one cluster over one epoch."""

    dynamic_w: float
    static_w: float
    energy_j: float

    @property
    def total_w(self) -> float:
        """Average total cluster power over the epoch."""
        return self.dynamic_w + self.static_w


@dataclass(frozen=True)
class UncorePower:
    """GPU-level (non-cluster) power over one epoch."""

    static_w: float
    dram_w: float
    l2_w: float
    energy_j: float

    @property
    def total_w(self) -> float:
        """Average uncore power over the epoch."""
        return self.static_w + self.dram_w + self.l2_w


class PowerModel:
    """Evaluates cluster and uncore power from epoch activity."""

    #: Cluster count the default uncore constant is sized for (Titan X).
    REFERENCE_CLUSTERS = 24

    def __init__(self, config: PowerModelConfig | None = None) -> None:
        self.config = config or PowerModelConfig()
        #: EPI table vectorised in :data:`INSTRUCTION_CLASSES` order,
        #: aligned with the activity vector's class slots.
        self._epi_vector = np.array(
            [self.config.epi_table.get(cls, 0.0)
             for cls in INSTRUCTION_CLASSES], dtype=np.float64)

    @classmethod
    def scaled_for(cls, num_clusters: int) -> "PowerModel":
        """Power model with uncore static power scaled to the GPU size.

        The default 28 W uncore belongs to a 24-cluster Titan X; a
        reduced test GPU gets a proportional share so per-cluster DVFS
        effects are not drowned by a full-size uncore floor.
        """
        if num_clusters <= 0:
            raise ConfigError("num_clusters must be positive")
        base = PowerModelConfig()
        scaled = PowerModelConfig(
            epi_table=base.epi_table,
            clock_energy_per_cycle_j=base.clock_energy_per_cycle_j,
            cluster_leakage_w=base.cluster_leakage_w,
            leakage_voltage_exponent=base.leakage_voltage_exponent,
            uncore_static_w=(base.uncore_static_w * num_clusters
                             / cls.REFERENCE_CLUSTERS),
            dram_energy_per_byte_j=base.dram_energy_per_byte_j,
            l2_energy_per_access_j=base.l2_energy_per_access_j,
        )
        return cls(scaled)

    def cluster_power(self, activity: EpochActivity) -> ClusterPower:
        """Power of one cluster for the epoch described by ``activity``."""
        cfg = self.config
        if activity.duration_s <= 0:
            raise ConfigError("activity duration must be positive")
        vratio = activity.voltage_v / REFERENCE_VOLTAGE
        v2 = vratio * vratio

        inst_energy = sum(
            count * cfg.epi_table.get(cls, 0.0)
            for cls, count in activity.inst_by_class.items()
        )
        clock_energy = activity.cycles * cfg.clock_energy_per_cycle_j
        dynamic_j = (inst_energy + clock_energy) * v2
        dynamic_w = dynamic_j / activity.duration_s

        static_w = cfg.cluster_leakage_w * (vratio ** cfg.leakage_voltage_exponent)
        static_j = static_w * activity.duration_s
        return ClusterPower(
            dynamic_w=dynamic_w,
            static_w=static_w,
            energy_j=dynamic_j + static_j,
        )

    def cluster_power_batch(self, activities: list[EpochActivity] | None,
                            matrix: np.ndarray | None = None,
                            durations: np.ndarray | None = None,
                            voltages: np.ndarray | None = None
                            ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised :meth:`cluster_power` over every cluster at once.

        Returns ``(dynamic_w, static_w, energy_j)`` arrays, one entry
        per cluster row.  ``matrix`` may pass the pre-stacked activity
        vectors so the caller's stack is reused; ``durations`` and
        ``voltages`` may pass the per-row epoch lengths and operating
        voltages directly, in which case ``activities`` is only read
        for whatever remains unset (the vectorised quantum engine
        passes all three and no activity objects at all).
        """
        cfg = self.config
        if matrix is None:
            matrix = np.stack([a.as_vector() for a in activities])
        if durations is None:
            durations = np.array([a.duration_s for a in activities])
        if np.any(durations <= 0):
            raise ConfigError("activity duration must be positive")
        if voltages is None:
            voltages = np.array([a.voltage_v for a in activities])
        vratio = voltages / REFERENCE_VOLTAGE
        v2 = vratio * vratio

        inst_energy = matrix[:, _CLASS_SLICE] @ self._epi_vector
        clock_energy = matrix[:, A_CYCLES] * cfg.clock_energy_per_cycle_j
        dynamic_j = (inst_energy + clock_energy) * v2
        dynamic_w = dynamic_j / durations

        static_w = cfg.cluster_leakage_w * (
            vratio ** cfg.leakage_voltage_exponent)
        static_j = static_w * durations
        return dynamic_w, static_w, dynamic_j + static_j

    def uncore_power(self, activities: list[EpochActivity] | None,
                     duration_s: float,
                     matrix: np.ndarray | None = None) -> UncorePower:
        """Uncore power for one epoch given every cluster's activity.

        ``activities`` may be ``None`` when ``matrix`` is given (the
        traffic totals are then read from the matrix columns).
        """
        cfg = self.config
        if duration_s <= 0:
            raise ConfigError("epoch duration must be positive")
        if matrix is not None:
            dram_bytes = float(matrix[:, A_DRAM_BYTES].sum())
            l2_accesses = float(matrix[:, A_L2_ACCESS].sum())
        else:
            dram_bytes = sum(a.dram_bytes for a in activities)
            l2_accesses = sum(a.l2_access for a in activities)
        dram_j = dram_bytes * cfg.dram_energy_per_byte_j
        l2_j = l2_accesses * cfg.l2_energy_per_access_j
        static_j = cfg.uncore_static_w * duration_s
        return UncorePower(
            static_w=cfg.uncore_static_w,
            dram_w=dram_j / duration_s,
            l2_w=l2_j / duration_s,
            energy_j=dram_j + l2_j + static_j,
        )
