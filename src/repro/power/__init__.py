"""McPAT-surrogate power model and energy/EDP accounting."""

from .breakdown import (EnergyBreakdown, breakdown_for_epoch,
                        run_with_breakdown)
from .energy import EnergyAccount, performance_loss
from .model import (REFERENCE_VOLTAGE, ClusterPower, PowerModel,
                    PowerModelConfig, UncorePower)
from .thermal import (ThermalConfig, ThermalNode, ThermalTracker,
                      run_with_thermal)

__all__ = [
    "EnergyBreakdown", "breakdown_for_epoch", "run_with_breakdown",
    "EnergyAccount", "performance_loss",
    "REFERENCE_VOLTAGE", "ClusterPower", "PowerModel", "PowerModelConfig",
    "UncorePower",
    "ThermalConfig", "ThermalNode", "ThermalTracker", "run_with_thermal",
]
