"""Energy accounting and EDP metrics.

The paper's primary metric is the Energy-Delay Product (EDP) of a
program run, normalised to the run at the default operating point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError


@dataclass
class EnergyAccount:
    """Accumulates energy and elapsed time over a simulated run."""

    energy_j: float = 0.0
    time_s: float = 0.0

    def add(self, energy_j: float, time_s: float) -> None:
        """Add one epoch's energy and duration."""
        if energy_j < 0 or time_s < 0:
            raise SimulationError("energy and time increments must be >= 0")
        self.energy_j += energy_j
        self.time_s += time_s

    @property
    def average_power_w(self) -> float:
        """Mean power over the accounted interval."""
        return self.energy_j / self.time_s if self.time_s > 0 else 0.0

    @property
    def edp(self) -> float:
        """Energy-delay product (J*s)."""
        return self.energy_j * self.time_s

    @property
    def ed2p(self) -> float:
        """Energy-delay-squared product (J*s^2)."""
        return self.energy_j * self.time_s * self.time_s

    def normalized_edp(self, baseline: "EnergyAccount") -> float:
        """EDP relative to a baseline run (1.0 = identical)."""
        if baseline.edp <= 0:
            raise SimulationError("baseline EDP must be positive")
        return self.edp / baseline.edp

    def normalized_latency(self, baseline: "EnergyAccount") -> float:
        """Delay relative to a baseline run (1.0 = identical)."""
        if baseline.time_s <= 0:
            raise SimulationError("baseline time must be positive")
        return self.time_s / baseline.time_s

    def normalized_energy(self, baseline: "EnergyAccount") -> float:
        """Energy relative to a baseline run (1.0 = identical)."""
        if baseline.energy_j <= 0:
            raise SimulationError("baseline energy must be positive")
        return self.energy_j / baseline.energy_j


def performance_loss(time_s: float, baseline_time_s: float) -> float:
    """The paper's performance-loss measure ``(T_f - T0) / T0``."""
    if baseline_time_s <= 0:
        raise SimulationError("baseline time must be positive")
    return (time_s - baseline_time_s) / baseline_time_s
