"""Deterministic random-number streams.

Every stochastic component of the reproduction (phase jitter, dataset
shuffling, weight init, RL exploration, ...) draws from a named stream
derived from one master seed.  Deriving streams by *name* rather than
by call order means adding a new consumer does not perturb existing
ones, which keeps regression numbers stable.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Default master seed used across the repository when none is given.
DEFAULT_SEED = 20250307


def _name_to_entropy(name: str) -> int:
    """Hash a stream name to a stable 64-bit integer."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def stream(name: str, seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Return an independent generator for ``name`` under ``seed``.

    The same ``(name, seed)`` pair always yields an identical stream,
    and distinct names yield statistically independent streams.
    """
    return np.random.default_rng([seed & 0xFFFFFFFF, _name_to_entropy(name)])


class StreamFactory:
    """Factory bound to one master seed, handing out named streams.

    Example
    -------
    >>> rngs = StreamFactory(seed=7)
    >>> a = rngs.get("phase-jitter")
    >>> b = rngs.get("phase-jitter")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        self.seed = int(seed)

    def get(self, name: str) -> np.random.Generator:
        """Return a fresh generator for stream ``name``."""
        return stream(name, self.seed)

    def child(self, suffix: str) -> "StreamFactory":
        """Return a factory whose streams are namespaced by ``suffix``."""
        return StreamFactory(seed=_name_to_entropy(f"{self.seed}:{suffix}") & 0x7FFFFFFF)
