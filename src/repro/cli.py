"""Command-line interface.

Exposes the offline pipeline and the evaluation harness as subcommands::

    repro-ssmdvfs suites                      # list modelled benchmarks
    repro-ssmdvfs datagen  --cache .cache     # generate/caches the dataset
    repro-ssmdvfs stats    --cache .cache     # dataset diagnostics
    repro-ssmdvfs train    --cache .cache --out artifacts
    repro-ssmdvfs evaluate --model artifacts/pruned --preset 0.10
    repro-ssmdvfs hardware --model artifacts/pruned
    repro-ssmdvfs faults   --mode all --rates 0 0.05 0.5
    repro-ssmdvfs soak     --small --store .cache/store
    repro-ssmdvfs store    --root .cache/store
    repro-ssmdvfs fleet    --nodes 128 --trace steady --policy pcstall

Every command is deterministic given ``--seed`` and runs fully offline.
Long campaigns take ``--checkpoint`` (resume after interruption),
``--retries`` and ``--task-timeout`` (resilient fan-out).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .datagen.cache import cached_dataset
from .datagen.protocol import ProtocolConfig
from .datagen.stats import analyze_dataset
from .gpu.arch import small_test_config, titan_x_config
from .nn.trainer import TrainConfig
from .core.combined import SSMDVFSModel
from .core.controller import SSMDVFSController
from .core.pipeline import PipelineConfig, build_from_dataset
from .evaluation.experiments import run_fig4, run_hardware, run_table1
from .evaluation.export import export_fig4_json
from .fleet import BUILTIN_TRACES, FLEET_POLICIES
from .parallel import CampaignStats
from .units import us
from .workloads.suites import (evaluation_suite, full_suite,
                               scale_kernel_to_duration, training_suite)

#: Table I feature set used when ``--features paper`` is selected.
PAPER_FEATURES = ("power_per_core", "ipc", "stall_mem_hazard",
                  "stall_mem_hazard_nonload", "l1_read_miss")


def _arch(args):
    return small_test_config() if getattr(args, "small", False) \
        else titan_x_config()


def _protocol(args) -> ProtocolConfig:
    return ProtocolConfig(max_breakpoints_per_kernel=args.breakpoints,
                          seed=args.seed)


def _dataset(args, stats: CampaignStats | None = None):
    return cached_dataset(args.cache, training_suite(), _arch(args),
                          _protocol(args),
                          workers=getattr(args, "workers", None),
                          stats=stats,
                          use_cache=not getattr(args, "no_cache", False),
                          checkpoint=getattr(args, "checkpoint", False),
                          retries=getattr(args, "retries", 2),
                          timeout_s=getattr(args, "task_timeout", None),
                          fused=getattr(args, "fused", False),
                          fuse_width=getattr(args, "fuse_width", 8))


def _print_stats(args, stats: CampaignStats) -> None:
    if getattr(args, "stats", False):
        print(stats.render())


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------

def cmd_experiments(args) -> int:
    """List every reproducible paper artefact and extension."""
    from .evaluation.registry import render_registry
    print(render_registry(extensions=not args.paper_only))
    return 0


def cmd_report(args) -> int:
    """Assemble the markdown report from benchmark results."""
    from .evaluation.report import write_report
    path = write_report(args.results, args.out)
    print(f"report written -> {path}")
    return 0


def cmd_suites(args) -> int:
    """List the modelled benchmarks and the train/eval split."""
    training = {k.name for k in training_suite()}
    print(f"{'kernel':26s} {'suite':10s} {'phases':>6s} {'iters':>5s} "
          f"{'insts/cluster':>13s}  role")
    for kernel in full_suite():
        role = "train" if kernel.name in training else "eval/unseen"
        print(f"{kernel.name:26s} {kernel.suite:10s} "
              f"{len(kernel.phases):6d} {kernel.iterations:5d} "
              f"{kernel.total_instructions:13d}  {role}")
    return 0


def cmd_datagen(args) -> int:
    """Generate (or load) the cached training dataset."""
    stats = CampaignStats()
    dataset = _dataset(args, stats)
    print(f"dataset ready: {dataset.num_groups} breakpoints, "
          f"{dataset.num_breakpoints} records, "
          f"{dataset.num_samples} samples (cache: {args.cache})")
    _print_stats(args, stats)
    return 0


def cmd_stats(args) -> int:
    """Print dataset diagnostics."""
    stats = CampaignStats()
    report = analyze_dataset(_dataset(args, stats), preset=args.preset)
    print(report.render())
    _print_stats(args, stats)
    return 0


def cmd_train(args) -> int:
    """Run the offline build and save model artefacts."""
    arch = _arch(args)
    stats = CampaignStats()
    dataset = _dataset(args, stats)
    if args.features == "rfe":
        table1 = run_table1(dataset, arch, seed=args.seed, stats=stats)
        print(table1.render())
        features = table1.rfe.all_features
    else:
        features = PAPER_FEATURES
    config = PipelineConfig(
        feature_names=features,
        train=TrainConfig(epochs=args.epochs, patience=max(5, args.epochs // 8),
                          learning_rate=2e-3, seed=args.seed),
        seed=args.seed,
    )
    pipeline = build_from_dataset(dataset, arch, config,
                                  workers=args.workers, stats=stats)
    out = Path(args.out)
    for variant, model in pipeline.models.items():
        model.save(out / variant)
        meta = model.metadata
        print(f"{variant:10s} acc={meta['accuracy_pct']:.1f}% "
              f"mape={meta['mape_pct']:.2f}% "
              f"flops={meta['flops_sparse']} -> {out / variant}")
    _print_stats(args, stats)
    return 0


def cmd_evaluate(args) -> int:
    """Run the Fig. 4 comparison with a saved model."""
    arch = _arch(args)
    model = SSMDVFSModel.load(args.model)
    kernels = [scale_kernel_to_duration(k, arch, args.duration_us * 1e-6)
               for k in evaluation_suite()[:args.kernels]]
    stats = CampaignStats()
    result = run_fig4({"base": model}, kernels, arch,
                      presets=tuple(args.preset), seed=args.seed,
                      workers=args.workers, stats=stats,
                      cache_dir=args.cache,
                      use_cache=not args.no_cache,
                      checkpoint=args.checkpoint, retries=args.retries,
                      timeout_s=args.task_timeout,
                      fused=args.fused, fuse_width=args.fuse_width)
    print(result.render())
    if args.export:
        export_fig4_json(result, args.export)
        print(f"exported -> {args.export}")
    _print_stats(args, stats)
    return 0


def cmd_hardware(args) -> int:
    """Print the §V-D ASIC cost report for a saved model."""
    model = SSMDVFSModel.load(args.model)
    result = run_hardware(model, epoch_s=us(10), gpu_tdp_w=250.0)
    print(result.render())
    return 0


def cmd_run(args) -> int:
    """Drive one kernel with a saved model and print the outcome."""
    from .gpu.simulator import GPUSimulator
    from .core.guarded import GuardedController
    from .core.policy import StaticPolicy
    from .workloads.serialization import load_kernels
    from .workloads.suites import kernel_by_name
    arch = _arch(args)
    model = SSMDVFSModel.load(args.model)
    if args.kernel_file:
        kernel = load_kernels(args.kernel_file)[0]
    else:
        kernel = kernel_by_name(args.kernel)
    kernel = scale_kernel_to_duration(kernel, arch,
                                      args.duration_us * 1e-6)
    base = GPUSimulator(arch, kernel, seed=args.seed).run(
        StaticPolicy(arch.vf_table.default_level), keep_records=False)
    controller = SSMDVFSController(model, preset=args.preset[0])
    if args.guarded:
        controller = GuardedController(controller)
    run = GPUSimulator(arch, kernel, seed=args.seed).run(
        controller, keep_records=False)
    print(f"kernel {kernel.name}: baseline {base.time_s * 1e6:.1f} us / "
          f"{base.energy_j * 1e3:.2f} mJ; ssmdvfs {run.time_s * 1e6:.1f} us "
          f"/ {run.energy_j * 1e3:.2f} mJ; normalized EDP "
          f"{run.edp / base.edp:.3f}, latency {run.time_s / base.time_s:.3f}")
    if args.guarded and getattr(args, "stats", False):
        counters = controller.observability_counters()
        for name in sorted(counters):
            print(f"  {name:30s} {counters[name]}")
    return 0


def cmd_faults(args) -> int:
    """Sweep injected fault rates and report preset-violation stats."""
    from functools import partial
    from .baselines.governor import UtilizationGovernor
    from .core.policy import ModelOraclePolicy
    from .faults import FAULT_MODES
    from .evaluation.robustness import fault_sweep
    arch = _arch(args)
    preset = args.preset[0]
    factories = {
        "governor": UtilizationGovernor,
        "oracle": partial(ModelOraclePolicy, preset),
    }
    if args.model:
        model = SSMDVFSModel.load(args.model)
        factories["ssmdvfs"] = partial(SSMDVFSController, model, preset)
    kernels = [scale_kernel_to_duration(k, arch, args.duration_us * 1e-6)
               for k in evaluation_suite()[:args.kernels]]
    modes = list(FAULT_MODES) if args.mode == "all" else [args.mode]
    stats = CampaignStats()
    result = fault_sweep(factories, kernels, arch, preset, modes,
                         args.rates, guard=not args.no_guard,
                         slack=args.slack, seed=args.seed,
                         workers=args.workers, stats=stats,
                         fused=args.fused, fuse_width=args.fuse_width)
    print(result.render())
    print(f"total preset violations: {result.total_violations()}; "
          f"guard trips: {result.guard_engagements()}")
    if args.export:
        import json
        payload = {"preset": result.preset, "slack": result.slack,
                   "cells": [{**vars(c)} for c in result.cells]}
        Path(args.export).write_text(json.dumps(payload, indent=2))
        print(f"exported -> {args.export}")
    _print_stats(args, stats)
    return 0


def _soak_selftrain(args, stats: CampaignStats):
    """Train a base pair for the soak when no ``--model`` was given.

    Uses duration-scaled training kernels and the shared dataset cache
    so ``soak-smoke`` stays self-contained *and* cheap on re-runs.
    """
    arch = _arch(args)
    kernels = [scale_kernel_to_duration(k, arch, args.duration_us * 1e-6)
               for k in training_suite()]
    dataset = cached_dataset(args.cache, kernels, arch, _protocol(args),
                             workers=args.workers, stats=stats,
                             use_cache=not args.no_cache)
    config = PipelineConfig(
        feature_names=PAPER_FEATURES,
        train=TrainConfig(epochs=60, patience=12, learning_rate=2e-3,
                          seed=args.seed),
        seed=args.seed,
    )
    pipeline = build_from_dataset(dataset, arch, config,
                                  variants=("base",),
                                  workers=args.workers, stats=stats)
    return pipeline.models["base"]


def cmd_soak(args) -> int:
    """Run the chaos soak; non-zero exit on any invariant violation."""
    from .evaluation.soak import SoakConfig, run_soak
    from .faults import FaultConfig
    arch = _arch(args)
    stats = CampaignStats()
    if args.model:
        model = SSMDVFSModel.load(args.model)
    else:
        model = _soak_selftrain(args, stats)
    # In-distribution kernels: the soak gauges the detect/heal loop,
    # not generalization, so a natural out-of-distribution drift must
    # not shadow the injected staleness episode.
    kernels = [scale_kernel_to_duration(k, arch, args.duration_us * 1e-6)
               for k in training_suite()[:args.kernels]]
    config = SoakConfig(
        preset=args.preset[0],
        seed=args.seed,
        faults=FaultConfig(counter_dropout=args.fault_rate,
                           counter_nan=args.fault_rate / 20,
                           counter_spike=args.fault_rate / 20),
        stale_sigma=args.stale_sigma,
        recovery_epochs=args.recovery_epochs,
        crash_write_trials=args.crash_trials,
    )
    result = run_soak(model, kernels, arch, args.store, config)
    print(result.render())
    if args.export:
        path = result.export_json(args.export)
        print(f"exported -> {path}")
    _print_stats(args, stats)
    return 0 if result.passed else 1


def cmd_fleet(args) -> int:
    """Replay an arrival trace over N simulated GPUs; report fleet SLOs."""
    from .fleet import (ClusterScheduler, ThermalConfig, TraceConfig,
                        build_trace, policy_factory)
    from .parallel import CampaignCheckpoint
    arch = _arch(args)
    stats = CampaignStats()
    model = SSMDVFSModel.load(args.model) if args.model else None
    factory = policy_factory(args.policy, preset=args.preset[0],
                             model=model, level=args.level)
    policy_name = (f"static-l{args.level}" if args.policy == "static"
                   else args.policy)
    trace_config = TraceConfig(
        trace=args.trace, jobs=args.jobs, nodes=args.nodes, load=args.load,
        latency_fraction=args.latency_fraction,
        latency_duration_s=args.latency_us * 1e-6,
        throughput_duration_s=args.throughput_us * 1e-6, seed=args.seed)
    jobs = build_trace(arch, trace_config)
    checkpoint = None
    if args.checkpoint:
        # Fused checkpoints store per-group results (serial ones store
        # per-job), so the two must never resume into each other.
        fused_tag = f"-fused{args.fuse_width}" if args.fused else ""
        key = (f"fleet-{args.trace}-{policy_name}-n{args.nodes}"
               f"-j{args.jobs}-s{args.seed}{fused_tag}")
        checkpoint = CampaignCheckpoint(Path(args.cache) / f"{key}.ckpt",
                                        key=key)
    scheduler = ClusterScheduler(
        arch, factory, num_nodes=args.nodes, policy_name=policy_name,
        seed=args.seed, thermal=ThermalConfig(), workers=args.workers,
        stats=stats, checkpoint=checkpoint, retries=args.retries,
        timeout_s=args.task_timeout, fused=args.fused,
        fuse_width=args.fuse_width)
    result = scheduler.run(jobs, trace_name=args.trace)
    print(result.render())
    if args.export:
        path = result.export_json(args.export)
        print(f"exported -> {path}")
    _print_stats(args, stats)
    if args.slo_gate is not None:
        rate = result.slo_violation_rate()
        if rate > args.slo_gate:
            print(f"SLO gate FAILED: violation rate {rate:.4f} > "
                  f"gate {args.slo_gate:.4f}")
            return 1
        print(f"SLO gate ok: violation rate {rate:.4f} <= "
              f"gate {args.slo_gate:.4f}")
    return 0


def cmd_fleet_chaos(args) -> int:
    """Batter the fleet replay with randomized node-fault trains.

    Exits non-zero when any fleet invariant breaks: a job lost or
    double-counted, a non-byte-stable export, a node wedged in
    quarantine, a latency job shed by admission control, or a torn
    read out of the crash-write torture."""
    from .evaluation.fleet_chaos import FleetChaosConfig, run_fleet_chaos
    from .faults import NodeFaultConfig
    from .fleet import AdmissionConfig, policy_factory
    arch = _arch(args)
    stats = CampaignStats()
    model = SSMDVFSModel.load(args.model) if args.model else None
    factory = policy_factory(args.policy, preset=args.preset[0],
                             model=model, level=args.level)
    policy_name = (f"static-l{args.level}" if args.policy == "static"
                   else args.policy)
    config = FleetChaosConfig(
        trace=args.trace, jobs=args.jobs, nodes=args.nodes,
        load=args.load, trials=args.trials, seed=args.seed,
        faults=NodeFaultConfig(
            crash_rate=args.crash_rate, hang_rate=args.hang_rate,
            thermal_rate=args.thermal_rate, storm_rate=args.storm_rate,
            seed=args.seed),
        admission=AdmissionConfig(enabled=not args.no_shedding,
                                  slack_s=args.shed_slack_us * 1e-6),
        crash_write_trials=args.crash_trials)
    result = run_fleet_chaos(arch, factory, config,
                             policy_name=policy_name,
                             workers=args.workers, store_root=args.store,
                             stats=stats)
    print(result.render())
    if args.export:
        path = result.export_json(args.export)
        print(f"exported -> {path}")
    _print_stats(args, stats)
    return 0 if result.passed else 1


def _serve_config(args):
    """Build a :class:`~repro.serve.ServeConfig` from parsed CLI args."""
    from .faults import ServeFaultConfig
    from .serve import ServeConfig
    faults = ServeFaultConfig(
        crash_rate=args.crash_rate, hang_rate=args.hang_rate,
        stall_rate=args.stall_rate, storm_rate=args.storm_rate,
        gap_rate=args.gap_rate, poison_rate=args.poison_rate,
        burst_rate=args.burst_rate, seed=args.seed)
    return ServeConfig(streams=args.streams, ticks=args.ticks,
                       num_workers=args.replicas,
                       queue_capacity=args.queue_capacity,
                       preset=args.preset[0],
                       online_enabled=not args.no_online,
                       faults=faults, seed=args.seed)


def cmd_serve(args) -> int:
    """Run one deterministic serving replay and report the accounting."""
    from .serve import ServingRuntime
    arch = _arch(args)
    stats = CampaignStats()
    model = SSMDVFSModel.load(args.model) if args.model else None
    runtime = ServingRuntime(arch, _serve_config(args), model=model,
                             store_root=args.store, workers=args.workers,
                             stats=stats)
    result = runtime.run()
    print(result.render())
    if args.export:
        path = result.export_json(args.export)
        print(f"exported -> {path}")
    _print_stats(args, stats)
    return 0 if result.conserved else 1


def cmd_serve_chaos(args) -> int:
    """Certify the serving runtime against seeded fault trains.

    Exits non-zero when any serving invariant breaks: an invalid
    decision served, a request lost or double-counted, a worker outage
    past the recovery budget, a non-byte-stable replay, a
    deadline-class request shed under capacity, or a torn read out of
    the crash-write torture."""
    from .evaluation.serve_chaos import ServeChaosConfig, run_serve_chaos
    arch = _arch(args)
    stats = CampaignStats()
    model = SSMDVFSModel.load(args.model) if args.model else None
    config = ServeChaosConfig(
        trials=args.trials, seed=args.seed, serve=_serve_config(args),
        recovery_budget_ticks=args.recovery_budget,
        crash_write_trials=args.crash_trials)
    result = run_serve_chaos(arch, config, model=model,
                             store_root=args.store, workers=args.workers,
                             stats=stats)
    print(result.render())
    if args.export:
        path = result.export_json(args.export)
        print(f"exported -> {path}")
    _print_stats(args, stats)
    return 0 if result.passed else 1


def cmd_store(args) -> int:
    """Inspect the artifact registry; optionally force a rollback."""
    from .errors import ArtifactCorrupt
    from .store import ArtifactStore
    store = ArtifactStore(args.root)
    if args.rollback:
        try:
            version = store.rollback(args.rollback)
        except ArtifactCorrupt as error:
            # Nothing trustworthy to roll back to is an operational
            # answer, not a crash: report and exit non-zero.
            print(f"rollback failed: {error}")
            return 1
        print(f"{args.rollback}: last_known_good -> v{version}")
    if args.verify:
        for name in (store.names() if args.verify == "all" else [args.verify]):
            for entry in store.versions(name):
                ok = store.verify(name, entry.version)
                print(f"{name} v{entry.version:06d} "
                      f"{'ok' if ok else 'CORRUPT'} ({entry.schema}, "
                      f"{entry.length} bytes)")
    print(store.render())
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-ssmdvfs",
        description="SSMDVFS (DATE 2025) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, cache=True):
        p.add_argument("--seed", type=int, default=3)
        p.add_argument("--small", action="store_true",
                       help="use the reduced 2-cluster test GPU")
        p.add_argument("--workers", type=int, default=1,
                       help="process-pool size for campaign fan-out "
                            "(1 = serial, 0 = all cores)")
        p.add_argument("--stats", action="store_true",
                       help="print campaign timings and cache counters "
                            "(dataset/comparison/sweep disk caches, the "
                            "interval-model solve_cache_hit/miss pair, and "
                            "the train_models/train_epochs totals)")
        p.add_argument("--no-cache", action="store_true",
                       help="ignore cached artefacts and regenerate "
                            "(the fresh result still refreshes the cache)")
        p.add_argument("--checkpoint", action="store_true",
                       help="checkpoint campaign progress next to the "
                            "cache file so interrupted runs resume")
        p.add_argument("--retries", type=int, default=2,
                       help="pooled re-attempts per campaign task before "
                            "quarantine (crash/hang recovery)")
        p.add_argument("--task-timeout", type=float, default=None,
                       help="stall watchdog in seconds: terminate workers "
                            "when no task completes for this long")
        p.add_argument("--fused", action="store_true",
                       help="co-simulate campaign tasks in lockstep "
                            "groups through the fused engine (bit-"
                            "identical results; shared solve caches, "
                            "batched inference, shared-memory weights)")
        p.add_argument("--fuse-width", type=int, default=8,
                       help="tasks co-simulated per fused group "
                            "(with --fused)")
        if cache:
            p.add_argument("--cache", default=".cache")
            p.add_argument("--breakpoints", type=int, default=10)

    p = sub.add_parser("suites", help="list modelled benchmarks")
    p.set_defaults(func=cmd_suites)

    p = sub.add_parser("experiments",
                       help="list reproducible paper artefacts")
    p.add_argument("--paper-only", action="store_true")
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser("report",
                       help="assemble REPORT.md from benchmark results")
    p.add_argument("--results", default="benchmarks/results")
    p.add_argument("--out", default="REPORT.md")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("datagen", help="generate/caches the dataset")
    common(p)
    p.set_defaults(func=cmd_datagen)

    p = sub.add_parser("stats", help="dataset diagnostics")
    common(p)
    p.add_argument("--preset", type=float, default=0.10)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("train", help="offline build; saves artefacts")
    common(p)
    p.add_argument("--out", default="artifacts")
    p.add_argument("--features", choices=("paper", "rfe"), default="paper")
    p.add_argument("--epochs", type=int, default=250)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("evaluate", help="Fig. 4 comparison")
    common(p, cache=False)
    p.add_argument("--cache", default=".cache",
                   help="evaluation-grid cache directory")
    p.add_argument("--model", required=True)
    p.add_argument("--kernels", type=int, default=14)
    p.add_argument("--preset", type=float, nargs="+", default=[0.10])
    p.add_argument("--duration-us", type=float, default=300.0)
    p.add_argument("--export", default=None,
                   help="write the result payload as JSON")
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("hardware", help="ASIC cost report (Section V-D)")
    common(p, cache=False)
    p.add_argument("--model", required=True)
    p.set_defaults(func=cmd_hardware)

    p = sub.add_parser("run", help="drive one kernel with a saved model")
    common(p, cache=False)
    p.add_argument("--model", required=True)
    p.add_argument("--kernel", default="rodinia.hotspot")
    p.add_argument("--kernel-file", default=None,
                   help="JSON kernel description (overrides --kernel)")
    p.add_argument("--preset", type=float, nargs="+", default=[0.10])
    p.add_argument("--duration-us", type=float, default=300.0)
    p.add_argument("--guarded", action="store_true",
                   help="wrap the controller in the runtime guard "
                        "(sanitized counters, safe fallback)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("faults",
                       help="fault-injection sweep (robustness campaign)")
    common(p, cache=False)
    p.add_argument("--model", default=None,
                   help="saved SSMDVFS model to include in the sweep "
                        "(governor and oracle always run)")
    p.add_argument("--mode", default="all",
                   choices=("all", "dropout", "stuck", "nan", "spike",
                            "actuation"))
    p.add_argument("--rates", type=float, nargs="+",
                   default=[0.0, 0.05, 0.5])
    p.add_argument("--no-guard", action="store_true",
                   help="run policies bare (no GuardedController)")
    p.add_argument("--slack", type=float, default=0.05,
                   help="latency slack over the preset before a run "
                        "counts as a violation")
    p.add_argument("--kernels", type=int, default=3)
    p.add_argument("--preset", type=float, nargs="+", default=[0.10])
    p.add_argument("--duration-us", type=float, default=150.0)
    p.add_argument("--export", default=None,
                   help="write the sweep cells as JSON")
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser("soak",
                       help="chaos soak: faults + stale model + crash "
                            "writes; exit 1 on invariant violation")
    common(p)
    p.add_argument("--model", default=None,
                   help="saved SSMDVFS model pair (omit to self-train a "
                        "small base pair through the dataset cache)")
    p.add_argument("--store", default=".cache/store",
                   help="artifact-registry root the soak seeds and "
                        "rolls back from")
    p.add_argument("--kernels", type=int, default=2)
    p.add_argument("--preset", type=float, nargs="+", default=[0.10])
    p.add_argument("--duration-us", type=float, default=1000.0)
    p.add_argument("--fault-rate", type=float, default=0.01,
                   help="sensor dropout probability (NaN and spike "
                        "rates scale down from it)")
    p.add_argument("--stale-sigma", type=float, default=3.0,
                   help="weight-perturbation scale of the mid-run "
                        "staleness injection")
    p.add_argument("--recovery-epochs", type=int, default=60,
                   help="epoch budget from staleness injection to "
                        "detection + rollback")
    p.add_argument("--crash-trials", type=int, default=32,
                   help="sampled kill offsets of the crash-write "
                        "torture phase")
    p.add_argument("--export", default=None,
                   help="write the soak result payload as JSON")
    p.set_defaults(func=cmd_soak)

    p = sub.add_parser("fleet",
                       help="replay a job-arrival trace over N simulated "
                            "GPUs under per-node DVFS controllers")
    common(p, cache=False)
    p.add_argument("--cache", default=".cache",
                   help="checkpoint directory for --checkpoint")
    p.add_argument("--nodes", type=int, default=16,
                   help="number of simulated GPUs in the fleet")
    p.add_argument("--jobs", type=int, default=64,
                   help="jobs in the arrival trace")
    p.add_argument("--trace", default="steady", choices=BUILTIN_TRACES,
                   help="builtin arrival pattern")
    p.add_argument("--load", type=float, default=0.7,
                   help="offered load as a fraction of fleet capacity "
                        "(>1 oversubscribes)")
    p.add_argument("--policy", default="governor", choices=FLEET_POLICIES,
                   help="per-node DVFS policy")
    p.add_argument("--model", default=None,
                   help="saved SSMDVFS model (required for ssmdvfs* "
                        "policies)")
    p.add_argument("--level", type=int, default=None,
                   help="VF level for --policy static")
    p.add_argument("--preset", type=float, nargs="+", default=[0.10])
    p.add_argument("--latency-fraction", type=float, default=0.6,
                   help="fraction of jobs in the latency-sensitive class")
    p.add_argument("--latency-us", type=float, default=100.0,
                   help="nominal duration of latency-class jobs")
    p.add_argument("--throughput-us", type=float, default=400.0,
                   help="nominal duration of throughput-class jobs")
    p.add_argument("--slo-gate", type=float, default=None,
                   help="exit 1 when the overall SLO-violation rate "
                        "exceeds this fraction")
    p.add_argument("--export", default=None,
                   help="write the fleet result payload as JSON "
                        "(atomic, byte-stable per seed)")
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser("fleet-chaos",
                       help="randomized node-fault trains over the fleet "
                            "replay; exit 1 on invariant violation")
    common(p, cache=False)
    p.add_argument("--nodes", type=int, default=4,
                   help="number of simulated GPUs in the fleet")
    p.add_argument("--jobs", type=int, default=24,
                   help="jobs per chaos trial")
    p.add_argument("--trace", default="burst", choices=BUILTIN_TRACES,
                   help="builtin arrival pattern")
    p.add_argument("--load", type=float, default=1.1,
                   help="offered load as a fraction of fleet capacity")
    p.add_argument("--trials", type=int, default=3,
                   help="randomized fault trains to replay")
    p.add_argument("--policy", default="governor", choices=FLEET_POLICIES,
                   help="per-node DVFS policy")
    p.add_argument("--model", default=None,
                   help="saved SSMDVFS model (required for ssmdvfs* "
                        "policies)")
    p.add_argument("--level", type=int, default=None,
                   help="VF level for --policy static")
    p.add_argument("--preset", type=float, nargs="+", default=[0.10])
    p.add_argument("--crash-rate", type=float, default=0.5,
                   help="expected node crashes per node per trial")
    p.add_argument("--hang-rate", type=float, default=0.3,
                   help="expected node hangs per node per trial")
    p.add_argument("--thermal-rate", type=float, default=0.4,
                   help="expected thermal-runaway events per node")
    p.add_argument("--storm-rate", type=float, default=0.4,
                   help="expected sensor-corruption storms per node")
    p.add_argument("--no-shedding", action="store_true",
                   help="disable admission control (every job is "
                        "eventually served or stranded)")
    p.add_argument("--shed-slack-us", type=float, default=0.0,
                   help="grace past the deadline before a throughput "
                        "job counts as unmeetable")
    p.add_argument("--store", default=".cache/chaos-store",
                   help="artifact-store root for the crash-write "
                        "torture phase")
    p.add_argument("--crash-trials", type=int, default=16,
                   help="sampled kill offsets of the crash-write "
                        "torture phase")
    p.add_argument("--export", default=None,
                   help="write the chaos result payload as JSON")
    p.set_defaults(func=cmd_fleet_chaos)

    def serve_knobs(p):
        """Knobs shared by ``serve`` and ``serve-chaos``."""
        p.add_argument("--streams", type=int, default=3,
                       help="simulated GPU telemetry streams")
        p.add_argument("--ticks", type=int, default=240,
                       help="serving horizon in scheduler ticks")
        p.add_argument("--replicas", type=int, default=2,
                       help="supervised controller workers (part of the "
                            "scenario, unlike the phase-1 --workers)")
        p.add_argument("--queue-capacity", type=int, default=12,
                       help="bounded request-queue occupancy")
        p.add_argument("--preset", type=float, nargs="+", default=[0.10])
        p.add_argument("--model", default=None,
                       help="saved SSMDVFS model pair (omit to serve "
                            "through the governor baseline)")
        p.add_argument("--no-online", action="store_true",
                       help="disable gated online Calibrator updates")
        p.add_argument("--crash-rate", type=float, default=1.5,
                       help="expected worker crashes per worker per run")
        p.add_argument("--hang-rate", type=float, default=1.0,
                       help="expected worker hangs per worker per run")
        p.add_argument("--stall-rate", type=float, default=1.0,
                       help="expected inference-stall episodes per run")
        p.add_argument("--storm-rate", type=float, default=1.0,
                       help="expected telemetry storms per stream per run")
        p.add_argument("--gap-rate", type=float, default=1.0,
                       help="expected telemetry gaps per stream per run")
        p.add_argument("--poison-rate", type=float, default=1.0,
                       help="expected poisoned online updates per run")
        p.add_argument("--burst-rate", type=float, default=1.0,
                       help="expected overload bursts per run")
        p.add_argument("--export", default=None,
                       help="write the result payload as JSON")

    p = sub.add_parser("serve",
                       help="one deterministic serving replay of the "
                            "always-on runtime")
    common(p, cache=False)
    serve_knobs(p)
    p.add_argument("--store", default=None,
                   help="artifact-store root for checkpointed restarts "
                        "and online-update versioning")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("serve-chaos",
                       help="seeded fault trains over the serving "
                            "runtime; exit 1 on invariant violation")
    common(p, cache=False)
    serve_knobs(p)
    p.add_argument("--trials", type=int, default=3,
                   help="randomized fault trains to replay")
    p.add_argument("--recovery-budget", type=int, default=48,
                   help="max ticks any worker outage may take to "
                        "recover (invariant 3)")
    p.add_argument("--store", default=".cache/serve-chaos-store",
                   help="root for per-trial stores and the crash-write "
                        "torture phase")
    p.add_argument("--crash-trials", type=int, default=16,
                   help="sampled kill offsets of the crash-write "
                        "torture phase")
    p.set_defaults(func=cmd_serve_chaos)

    p = sub.add_parser("store",
                       help="inspect the artifact registry "
                            "(operations runbook)")
    p.add_argument("--root", required=True,
                   help="registry root directory")
    p.add_argument("--rollback", default=None, metavar="NAME",
                   help="demote NAME's last_known_good pointer to the "
                        "previous verifying version")
    p.add_argument("--verify", default=None, metavar="NAME",
                   help="checksum-verify every version of NAME "
                        "('all' for the whole registry)")
    p.set_defaults(func=cmd_store)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
