"""Exception hierarchy for the SSMDVFS reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the library's failures without catching unrelated
bugs.  Sub-classes are grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An architecture, V/f, or model configuration is invalid."""


class SimulationError(ReproError):
    """The GPU simulator was driven into an invalid state."""


class SnapshotError(SimulationError):
    """A snapshot/restore pair was used incorrectly."""


class WorkloadError(ReproError):
    """A kernel or benchmark description is malformed."""


class ModelError(ReproError):
    """A neural-network model is structurally invalid."""


class TrainingError(ModelError):
    """Training could not proceed (bad shapes, empty dataset, ...)."""


class CompressionError(ModelError):
    """Layer-wise compression or pruning produced an invalid model."""


class ArtifactCorrupt(ModelError):
    """A stored artifact failed checksum, schema, or shape validation.

    Raised by the crash-consistent artifact store when an on-disk
    version's embedded SHA-256 or header does not verify, and by the
    model loaders when a payload is malformed (missing arrays,
    inconsistent shapes, non-numeric dtypes).  Derives from
    :class:`ModelError` because the artifacts the registry protects are
    predominantly trained model pairs, and callers historically catch
    ``ModelError`` around loads.
    """


class DriftDetected(ReproError):
    """The online drift monitor confirmed sustained model drift.

    Only raised when a guarded controller runs in strict mode; in the
    default self-healing mode drift triggers a rollback to the
    registry's last-known-good pair instead.
    """


class DatasetError(ReproError):
    """A dataset is empty, inconsistent, or incorrectly labelled."""


class ParallelError(ReproError):
    """The parallel campaign layer was configured inconsistently."""


class CampaignError(ParallelError):
    """A campaign task failed permanently (retries and rescue exhausted).

    Carries the index of the originating task so campaign drivers can
    report, quarantine, or re-dispatch around the poisoned task.  The
    underlying worker exception travels as ``__cause__``.
    """

    def __init__(self, message: str, task_id: int | None = None) -> None:
        super().__init__(message)
        self.task_id = task_id


class FaultInjectionError(ReproError):
    """The fault-injection harness was configured inconsistently."""


class FleetError(ReproError):
    """The fleet scheduler or its job stream was configured inconsistently.

    Raised for malformed arrival traces (non-positive job counts,
    unknown builtin trace shapes, invalid load factors), for popping an
    empty :class:`~repro.fleet.queue.PendingJobQueue`, and for
    scheduler-level inconsistencies (unknown policy names, node counts
    below one)."""


class FleetFaultError(FleetError):
    """A node-level fault plan or fleet-resilience knob is invalid.

    Raised for malformed :class:`~repro.faults.NodeFaultConfig` /
    :class:`~repro.faults.NodeFaultEvent` descriptions (unknown fault
    kinds, negative rates or durations, events aimed at nodes outside
    the fleet) and for inconsistent migration or admission-control
    configuration."""


class ServeError(ReproError):
    """The always-on serving runtime was configured inconsistently.

    Raised for malformed :class:`~repro.serve.runtime.ServeConfig` /
    :class:`~repro.serve.breaker.BreakerConfig` knobs (non-positive
    capacities, thresholds or tick budgets), for protocol misuse of the
    serving state machines (recording an outcome for a call the circuit
    breaker never admitted), and for dispatching onto a worker that is
    not ready."""


class ServeFaultError(ServeError):
    """A serving-layer fault plan or chaos knob is invalid.

    Raised for malformed :class:`~repro.faults.ServeFaultConfig` /
    :class:`~repro.faults.ServeFaultEvent` descriptions (unknown fault
    kinds, negative rates or tick spans, events aimed at workers or
    streams outside the runtime)."""


class GuardTripped(ReproError):
    """A runtime guard exceeded its trip budget with fallback disabled."""


class PolicyError(ReproError):
    """A DVFS policy produced an out-of-range or malformed decision."""


class HardwareModelError(ReproError):
    """The ASIC cost model was given an unsupported configuration."""
