"""Calibrator: the regression head of SSMDVFS (§II, §III).

Given the Decision-maker's inputs plus its chosen level, the Calibrator
predicts the instruction count of the *next* epoch.  At runtime the gap
between this prediction and the count actually observed drives the
working-preset adjustment that keeps end-to-end performance loss under
the user's preset.

The underlying regressor is trained on the *throughput ratio*
(next-window count / current-window count), a scale-free target; this
wrapper multiplies it back by the live instruction counter so callers
see the absolute prediction of the paper's workflow.
"""

from __future__ import annotations

import numpy as np

from ..datagen.features import FeatureExtractor, FeatureScaler
from ..errors import PolicyError
from ..gpu.counters import CounterSet
from ..nn.mlp import MLP


class Calibrator:
    """Runtime wrapper around the trained regressor."""

    def __init__(self, model: MLP, extractor: FeatureExtractor,
                 scaler: FeatureScaler) -> None:
        if model.output_size != 1:
            raise PolicyError("calibrator must have a single output")
        expected = extractor.width + 1  # features + chosen level
        if model.input_size != expected:
            raise PolicyError(
                f"calibrator expects width {model.input_size}, feature set "
                f"implies {expected}"
            )
        if not scaler.fitted:
            raise PolicyError("scaler must be fitted")
        self.model = model
        self.extractor = extractor
        self.scaler = scaler
        # Reusable (n, features + 1) input buffer for batched inference;
        # grown/replaced on demand when the batch size changes.
        self._raw_buffer: np.ndarray | None = None
        #: Non-finite raw model outputs seen so far.  A trained, healthy
        #: regressor never emits NaN/Inf on sanitized inputs, so this is
        #: a direct staleness/corruption symptom the drift layer reads.
        self.nonfinite_predictions = 0

    def predict_ratio(self, counters: CounterSet, level: int) -> float:
        """Predicted next-window / current-window throughput ratio."""
        features = self.extractor.extract(counters)
        raw = np.concatenate([features, [float(level)]])
        x = self.scaler.transform(raw)
        prediction = float(self.model.predict_scalar(x[None, :])[0])
        if not np.isfinite(prediction):
            self.nonfinite_predictions += 1
        return max(0.0, prediction)

    def predict_ratios(self, counter_sets: list[CounterSet],
                       levels: list[int]) -> np.ndarray:
        """Throughput ratios for a cluster batch in one forward pass."""
        if not counter_sets:
            raise PolicyError("no counters given")
        if len(counter_sets) != len(levels):
            raise PolicyError("counter/level batch size mismatch")
        n = len(counter_sets)
        width = self.extractor.width + 1
        buffer = self._raw_buffer
        if (buffer is None or buffer.shape[0] != n
                or not buffer.flags.writeable):
            buffer = self._raw_buffer = np.empty((n, width),
                                                 dtype=np.float64)
        self.extractor.extract_matrix(counter_sets, out=buffer[:, :-1])
        buffer[:, -1] = [float(level) for level in levels]
        x = self.scaler.transform(buffer)
        predictions = self.model.predict_scalar(x)
        bad = int((~np.isfinite(predictions)).sum())
        if bad:
            self.nonfinite_predictions += bad
        return np.maximum(0.0, predictions)

    def __getstate__(self) -> dict:
        # The scratch buffer is per-process state: dropping it keeps
        # pickles lean and stops shared-memory transports from turning
        # it into a read-only view.
        state = self.__dict__.copy()
        state["_raw_buffer"] = None
        return state

    def predict_instructions(self, counters: CounterSet,
                             level: int) -> float:
        """Predicted per-cluster instructions of the next epoch."""
        ratio = self.predict_ratio(counters, level)
        return ratio * counters["inst_total"]

    def predict_instructions_batch(self, counter_sets: list[CounterSet],
                                   levels: list[int]) -> list[float]:
        """Predicted next-epoch instructions for a cluster batch."""
        ratios = self.predict_ratios(counter_sets, levels)
        return [float(ratio) * counters["inst_total"]
                for ratio, counters in zip(ratios, counter_sets)]
