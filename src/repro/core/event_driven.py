"""Event-driven SSMDVFS (extension).

The paper runs one inference every 10 µs epoch.  Most epochs sit deep
inside a stationary phase where the previous decision is still optimal,
so those inferences are wasted energy (§V-D budgets 1.65 % of each
epoch for them).  This extension adds a lightweight phase-change
detector in front of the Decision-maker: inference runs only when the
observed counters drift from the phase the last decision was made for
(or a refresh interval expires), and otherwise the previous levels are
held.

The detector is a per-cluster relative-change test on the same
features the Decision-maker consumes — hardware-wise a handful of
comparators, orders of magnitude cheaper than the MLP.
"""

from __future__ import annotations

import numpy as np

from ..errors import PolicyError
from ..gpu.counters import CounterSet
from ..gpu.simulator import EpochRecord, GPUSimulator
from .combined import SSMDVFSModel
from .controller import SSMDVFSController


class PhaseChangeDetector:
    """Relative-drift detector over a feature vector."""

    def __init__(self, threshold: float = 0.35) -> None:
        if threshold <= 0:
            raise PolicyError("threshold must be positive")
        self.threshold = float(threshold)
        self._reference: np.ndarray | None = None

    def reset(self) -> None:
        """Forget the reference phase."""
        self._reference = None

    def rearm(self, features: np.ndarray) -> None:
        """Set the current features as the new reference phase."""
        self._reference = np.asarray(features, dtype=np.float64).copy()

    def changed(self, features: np.ndarray) -> bool:
        """True when features drifted beyond the threshold."""
        if self._reference is None:
            return True
        features = np.asarray(features, dtype=np.float64)
        scale = np.maximum(np.abs(self._reference), 1e-9)
        drift = float(np.max(np.abs(features - self._reference) / scale))
        return drift > self.threshold


class EventDrivenController(SSMDVFSController):
    """SSMDVFS that infers only on phase changes (plus a refresh)."""

    def __init__(self, model: SSMDVFSModel, preset: float,
                 threshold: float = 0.35, refresh_epochs: int = 8,
                 **kwargs) -> None:
        super().__init__(model, preset, **kwargs)
        if refresh_epochs < 1:
            raise PolicyError("refresh_epochs must be >= 1")
        self.threshold = float(threshold)
        self.refresh_epochs = int(refresh_epochs)
        self.name = f"ssmdvfs-event-p{int(round(preset * 100))}"
        self._detectors: list[PhaseChangeDetector] = []
        self._held_levels: list[int] | None = None
        self._since_refresh = 0
        self.inference_count = 0
        self.hold_count = 0

    def reset(self, simulator: GPUSimulator) -> None:
        """Reset detectors, hold state and inference statistics."""
        super().reset(simulator)
        self._detectors = [PhaseChangeDetector(self.threshold)
                           for _ in simulator.clusters]
        self._held_levels = None
        self._since_refresh = 0
        self.inference_count = 0
        self.hold_count = 0

    def _features(self, counters: CounterSet) -> np.ndarray:
        return self.model.decision_maker.extractor.extract(counters)

    def decide(self, record: EpochRecord):
        """Calibrate, then infer only for drifted (or refreshed) clusters."""
        if self.simulator is None:
            raise PolicyError("policy not bound to a simulator")
        # Calibration still runs every epoch (it is cheap bookkeeping on
        # the predictions made for inferred clusters).
        self._calibrate(record)
        self.preset_trace.append(self.working_preset)

        self._since_refresh += 1
        infer_all = (self._held_levels is None
                     or self._since_refresh >= self.refresh_epochs)
        decision_maker = self.model.decision_maker
        calibrator = self.model.calibrator

        levels: list[int] = []
        self._pending = []
        for index, (detector, counters) in enumerate(
                zip(self._detectors, record.cluster_counters)):
            if counters["inst_total"] <= 0:
                levels.append(self.simulator.arch.vf_table.min_level)
                continue
            features = self._features(counters)
            # Per-cluster gate: only this cluster's drift forces *its*
            # inference; the other 23 clusters keep holding.
            if infer_all or detector.changed(features):
                level = decision_maker.predict_level(counters,
                                                     self.working_preset)
                self._pending.append((index, calibrator.predict_instructions(
                    counters, level)))
                detector.rearm(features)
                self.inference_count += 1
            else:
                level = self._held_levels[index]
                self.hold_count += 1
            levels.append(level)
        if infer_all:
            self._since_refresh = 0
        self._held_levels = list(levels)
        return levels

    @property
    def inference_savings(self) -> float:
        """Fraction of cluster-epoch inferences skipped."""
        total = self.inference_count + self.hold_count
        return self.hold_count / total if total else 0.0
