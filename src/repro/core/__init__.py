"""The paper's contribution: SSMDVFS models, controller, and pipeline."""

from .calibrator import Calibrator
from .combined import SSMDVFSModel
from .controller import SSMDVFSController
from .decision_maker import DecisionMaker
from .drift import DriftConfig, DriftMonitor, RollbackManager
from .event_driven import EventDrivenController, PhaseChangeDetector
from .guarded import GuardedController
from .pipeline import (VARIANTS, PipelineConfig, PipelineResult,
                       build_from_dataset, build_ssmdvfs)
from .policy import (BasePolicy, ModelOraclePolicy, StaticPolicy,
                     validate_decision)

__all__ = [
    "Calibrator", "SSMDVFSModel", "SSMDVFSController", "DecisionMaker",
    "DriftConfig", "DriftMonitor", "RollbackManager",
    "EventDrivenController", "PhaseChangeDetector", "GuardedController",
    "VARIANTS", "PipelineConfig", "PipelineResult", "build_from_dataset",
    "build_ssmdvfs",
    "BasePolicy", "ModelOraclePolicy", "StaticPolicy", "validate_decision",
]
