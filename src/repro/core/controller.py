"""The SSMDVFS runtime controller (Fig. 1, §II).

Every 10 µs epoch:

1. **Calibrate** — compare the instruction count the Calibrator
   predicted for the epoch that just ended with the count actually
   observed.  The comparison is *cumulative* over the run: end-to-end
   performance loss is a property of total progress, so a persistent
   shortfall (prediction ahead of reality beyond a deadband) tightens
   the *working* preset — pushing the Decision-maker towards faster
   levels — while on-schedule progress relaxes it back toward the
   user's preset.  Single-epoch prediction noise washes out of the
   cumulative ratio instead of whipsawing the operating point.
2. **Decide** — feed the epoch's counters plus the working preset into
   the Decision-maker to get each cluster's next level.
3. **Predict** — feed the same counters, the *original* preset and the
   chosen level into the Calibrator to set up the next comparison.
"""

from __future__ import annotations

import math

from ..errors import PolicyError
from ..gpu.simulator import EpochRecord, GPUSimulator
from .combined import SSMDVFSModel
from .policy import BasePolicy


class SSMDVFSController(BasePolicy):
    """Self-calibrated supervised DVFS policy."""

    def __init__(self, model: SSMDVFSModel, preset: float,
                 use_calibrator: bool = True, gain: float = 1.0,
                 relax: float = 0.4, deadband: float = 0.06,
                 min_preset: float = 0.02,
                 per_cluster: bool = True) -> None:
        super().__init__()
        if preset < 0:
            raise PolicyError("preset cannot be negative")
        if gain < 0 or not 0.0 <= relax <= 1.0:
            raise PolicyError("gain must be >= 0 and relax in [0, 1]")
        if deadband < 0:
            raise PolicyError("deadband cannot be negative")
        if min_preset < 0:
            raise PolicyError("min_preset cannot be negative")
        self.model = model
        self.preset = float(preset)
        self.use_calibrator = use_calibrator
        self.gain = float(gain)
        self.relax = float(relax)
        self.deadband = float(deadband)
        # The working preset never drops below the training grid's
        # smallest preset: below that the Decision-maker would operate
        # out of distribution.
        self.min_preset = min(float(min_preset), float(preset))
        self.per_cluster = per_cluster
        tag = "" if use_calibrator else "-nocal"
        self.name = f"ssmdvfs{tag}-p{int(round(preset * 100))}"
        self.working_preset = self.preset
        self._pending: list[tuple[int, float]] = []
        self._fused_staged: tuple[int, list[int]] | None = None
        self._cumulative_predicted = 0.0
        self._cumulative_actual = 0.0
        self._log_bias = 0.0
        self.preset_trace: list[float] = []
        #: Non-finite Calibrator predictions / observations dropped by
        #: the calibration loop instead of poisoning the working preset.
        self.calibration_anomalies = 0
        #: Latest *raw* (pre-bias-correction) predicted-vs-actual gap,
        #: normalised to [-1, 1]; ``None`` until the first comparison.
        #: This is the drift monitor's primary signal — the bias
        #: tracker below deliberately absorbs systematic offsets from
        #: the preset loop, so drift detection must look upstream of it.
        self.last_gap: float | None = None
        #: True while the working preset is pinned at its floor — the
        #: controller is compensating as hard as it can, the runtime
        #: proxy for realised preset-violation pressure.
        self.last_violation = False

    #: Exponential decay of the cumulative comparison (a ~10-epoch
    #: sliding window of shortfall).
    CUMULATIVE_DECAY = 0.9
    #: Adaptation rate of the multiplicative prediction-bias tracker.
    BIAS_RATE = 0.25

    def reset(self, simulator: GPUSimulator) -> None:
        """Reset calibration state and start at the default point."""
        super().reset(simulator)
        self.working_preset = self.preset
        self._pending = []
        self._fused_staged = None
        self._cumulative_predicted = 0.0
        self._cumulative_actual = 0.0
        self._log_bias = 0.0
        self.preset_trace = []
        self.calibration_anomalies = 0
        self.last_gap = None
        self.last_violation = False
        simulator.set_all_levels(simulator.arch.vf_table.default_level)

    def observability_counters(self) -> dict[str, int]:
        """Controller-level anomaly counters (for campaign ``--stats``)."""
        return {"calibration_anomalies": self.calibration_anomalies}

    def drift_signal(self) -> tuple[float | None, bool]:
        """The (gap, violation-pressure) pair the drift monitor consumes.

        ``gap`` is the latest raw predicted-vs-actual instruction gap,
        ``(predicted - actual) / max(predicted, actual)`` in [-1, 1] —
        near zero for a healthy Calibrator, saturating toward ±1 when
        the deployed pair has gone stale.  ``violation`` is True while
        the working preset sits at its floor (the self-calibration loop
        out of headroom).
        """
        return self.last_gap, self.last_violation

    # ------------------------------------------------------------------
    def _calibrate(self, record: EpochRecord) -> None:
        if not self.use_calibrator or not self._pending:
            return
        # Compare each prediction against the *same cluster's* observed
        # count, skipping clusters that drained during the epoch — the
        # end-of-kernel ramp-down is not a performance shortfall.
        predicted_sum = 0.0
        actual_sum = 0.0
        for cluster_index, predicted in self._pending:
            if (self.simulator is not None
                    and self.simulator.clusters[cluster_index].finished):
                continue
            actual = record.cluster_counters[cluster_index]["inst_total"]
            # A NaN/Inf prediction (a poisoned Calibrator) or observation
            # (a corrupted counter) must not enter the cumulative ratio:
            # one non-finite term would stick the working preset at NaN
            # for the rest of the run.  Drop the pair and count it.
            if not (math.isfinite(predicted) and math.isfinite(actual)):
                self.calibration_anomalies += 1
                continue
            predicted_sum += predicted
            actual_sum += actual
        self._pending = []
        if actual_sum > 0.0:
            # Raw gap for online drift detection, taken *before* the
            # bias tracker: a stale Calibrator's systematic error gets
            # absorbed below, so this is the only place it stays
            # visible.  Symmetric normalisation bounds it in [-1, 1]
            # (an all-zero prediction reads as -1, full shortfall).
            self.last_gap = ((predicted_sum - actual_sum)
                             / max(predicted_sum, actual_sum))
        if predicted_sum <= 0 or actual_sum <= 0:
            return
        # Self-calibration of the Calibrator itself: a slow multiplicative
        # tracker absorbs its systematic prediction bias, so the preset
        # feedback reacts to genuine shortfalls, not to a constant offset.
        # A real slowdown still trips the deadband below before the bias
        # tracker can absorb it (the preset then recovers the loss).
        corrected = predicted_sum * math.exp(self._log_bias)
        self._log_bias += self.BIAS_RATE * (
            math.log(actual_sum / predicted_sum) - self._log_bias)
        # Spiked counters can drive the observed ratio to extremes; a
        # clamped bias keeps math.exp above in (finite) range forever.
        self._log_bias = min(30.0, max(-30.0, self._log_bias))
        self._cumulative_predicted *= self.CUMULATIVE_DECAY
        self._cumulative_actual *= self.CUMULATIVE_DECAY
        self._cumulative_predicted += corrected
        self._cumulative_actual += actual_sum
        error = ((self._cumulative_predicted - self._cumulative_actual)
                 / self._cumulative_predicted)
        if not math.isfinite(error):
            # Decayed-to-zero denominators under heavy fault injection;
            # hold the working preset rather than propagate the NaN.
            self.calibration_anomalies += 1
            self._cumulative_predicted = 0.0
            self._cumulative_actual = 0.0
            return
        if error > self.deadband:
            # Persistently slower than promised beyond the model's noise
            # floor: tighten the working preset.
            self.working_preset -= self.gain * error * self.preset
        else:
            # On/ahead of schedule: relax back toward the user preset.
            self.working_preset += self.relax * (self.preset
                                                 - self.working_preset)
        self.working_preset = min(self.preset,
                                  max(self.min_preset, self.working_preset))
        if not math.isfinite(self.working_preset):
            self.calibration_anomalies += 1
            self.working_preset = self.preset
        self.last_violation = (self.preset > self.min_preset
                               and self.working_preset
                               <= self.min_preset + 1e-12)

    # ------------------------------------------------------------------
    # Fused-engine hooks.  The fused campaign engine splits ``decide``
    # into three phases so the Decision-maker/Calibrator forward passes
    # of *several co-simulated tasks* can be stacked into one batched
    # call: ``fused_prepare`` runs calibration and stages this task's
    # active-cluster rows, the engine concatenates rows across tasks
    # (with each task's own working preset per row) and runs the model
    # once, then ``fused_commit`` folds this task's slice of the
    # predictions back into levels/pending state.  ``fused_fallback``
    # completes a prepared decision solo — the path taken when the task
    # cannot join a cross-task batch.  ``decide`` is exactly
    # prepare → (own forward pass) → commit, so serial and fused runs
    # share one code path and batching can never change semantics.
    # Stacking is bit-identical because every model stage is rowwise
    # (GEMMs, elementwise scaler/activations, per-row argmax) and each
    # task always contributes >= 2 rows to a shared batch (BLAS takes a
    # different single-row code path whose rounding differs by ~1 ULP).
    def fused_prepare(self, record: EpochRecord):
        """Calibrate and stage this epoch's batchable inference rows.

        Returns the active-cluster :class:`CounterSet` rows to batch, or
        ``None`` when the decision cannot join a cross-task batch (the
        scalar non-per-cluster mode, or fewer than two active clusters —
        single rows must run their own forward pass for bit-identity
        with the serial path).  Exactly one of :meth:`fused_commit` /
        :meth:`fused_fallback` must complete each prepared decision.
        """
        if self.simulator is None:
            raise PolicyError("policy not bound to a simulator")
        self._calibrate(record)
        self.preset_trace.append(self.working_preset)
        if not self.per_cluster:
            return None
        min_level = self.simulator.arch.vf_table.min_level
        active_indices = [index for index, counters
                          in enumerate(record.cluster_counters)
                          if counters["inst_total"] > 0]
        self._fused_staged = (min_level, active_indices)
        if len(active_indices) < 2:
            return None
        return [record.cluster_counters[index] for index in active_indices]

    def fused_commit(self, record: EpochRecord, predicted_levels,
                     predicted_insts):
        """Fold this task's slice of a batched prediction into levels."""
        min_level, active_indices = self._fused_staged
        self._fused_staged = None
        levels = [min_level] * len(record.cluster_counters)
        self._pending = []
        for index, level, predicted in zip(
                active_indices, predicted_levels, predicted_insts):
            levels[index] = int(level)
            self._pending.append((index, predicted))
        return levels

    def fused_fallback(self, record: EpochRecord):
        """Complete a prepared decision without cross-task batching."""
        decision_maker = self.model.decision_maker
        calibrator = self.model.calibrator
        if not self.per_cluster:
            level = decision_maker.predict_level(record.counters,
                                                 self.working_preset)
            self._pending = [(0, calibrator.predict_instructions(
                record.counters, level))]
            return level
        min_level, active_indices = self._fused_staged
        self._fused_staged = None
        levels = [min_level] * len(record.cluster_counters)
        self._pending = []
        if active_indices:
            active_counters = [record.cluster_counters[index]
                               for index in active_indices]
            predicted_levels = decision_maker.predict_levels(
                active_counters, self.working_preset)
            predicted_insts = calibrator.predict_instructions_batch(
                active_counters, predicted_levels)
            for index, level, predicted in zip(
                    active_indices, predicted_levels, predicted_insts):
                levels[index] = level
                self._pending.append((index, predicted))
        return levels

    def decide(self, record: EpochRecord):
        """Calibrate, then pick each cluster's next operating point."""
        rows = self.fused_prepare(record)
        if rows is None:
            return self.fused_fallback(record)
        predicted_levels = self.model.decision_maker.predict_levels(
            rows, self.working_preset)
        predicted_insts = self.model.calibrator.predict_instructions_batch(
            rows, predicted_levels)
        return self.fused_commit(record, predicted_levels, predicted_insts)
