"""Decision-maker: the classification head of SSMDVFS (§II, §III).

Given one epoch's performance counters and a performance-loss preset,
it outputs the minimum V/f level expected to keep the loss within the
preset.  The wrapper owns everything inference needs at runtime: the
feature extractor (counter subset + normalisation), the fitted scaler,
and the trained MLP.
"""

from __future__ import annotations

import numpy as np

from ..datagen.features import FeatureExtractor, FeatureScaler
from ..errors import PolicyError
from ..gpu.counters import CounterSet
from ..nn.mlp import MLP


class DecisionMaker:
    """Runtime wrapper around the trained classifier."""

    def __init__(self, model: MLP, extractor: FeatureExtractor,
                 scaler: FeatureScaler, num_levels: int) -> None:
        if model.output_size != num_levels:
            raise PolicyError(
                f"classifier has {model.output_size} outputs, expected "
                f"{num_levels} levels"
            )
        expected = extractor.width + 1  # features + loss preset
        if model.input_size != expected:
            raise PolicyError(
                f"classifier expects width {model.input_size}, feature set "
                f"implies {expected}"
            )
        if not scaler.fitted:
            raise PolicyError("scaler must be fitted")
        self.model = model
        self.extractor = extractor
        self.scaler = scaler
        self.num_levels = num_levels
        # Reusable (n, features + 1) input buffer for batched inference;
        # grown/replaced on demand when the batch size changes.
        self._raw_buffer: np.ndarray | None = None

    def _input_vector(self, counters: CounterSet, preset: float) -> np.ndarray:
        features = self.extractor.extract(counters)
        raw = np.concatenate([features, [preset]])
        return self.scaler.transform(raw)

    def _input_matrix(self, counter_sets: list[CounterSet],
                      preset) -> np.ndarray:
        """Scaled (n, features + 1) input rows for a cluster batch.

        ``preset`` is either one scalar broadcast to every row (the
        per-cluster path within one simulation) or an ``(n,)`` array of
        per-row presets (the fused engine batching clusters across
        tasks, each task carrying its own working preset).
        """
        n = len(counter_sets)
        width = self.extractor.width + 1
        buffer = self._raw_buffer
        if (buffer is None or buffer.shape[0] != n
                or not buffer.flags.writeable):
            buffer = self._raw_buffer = np.empty((n, width),
                                                 dtype=np.float64)
        self.extractor.extract_matrix(counter_sets, out=buffer[:, :-1])
        buffer[:, -1] = preset
        return self.scaler.transform(buffer)

    def __getstate__(self) -> dict:
        # The scratch buffer is per-process state: dropping it keeps
        # pickles lean and stops shared-memory transports from turning
        # it into a read-only view.
        state = self.__dict__.copy()
        state["_raw_buffer"] = None
        return state

    def predict_level(self, counters: CounterSet, preset: float) -> int:
        """The V/f level for the next epoch."""
        if preset < 0:
            raise PolicyError("preset cannot be negative")
        x = self._input_vector(counters, preset)
        return int(self.model.predict_class(x[None, :])[0])

    def predict_levels(self, counter_sets: list[CounterSet],
                       preset) -> list[int]:
        """Per-cluster prediction as one (n, features) forward pass.

        ``preset`` may be a scalar (broadcast) or per-row array — see
        :meth:`_input_matrix`.
        """
        if not counter_sets:
            raise PolicyError("no counters given")
        if np.any(np.asarray(preset) < 0):
            raise PolicyError("preset cannot be negative")
        rows = self._input_matrix(counter_sets, preset)
        return [int(v) for v in self.model.predict_class(rows)]

    def level_probabilities(self, counters: CounterSet,
                            preset: float) -> np.ndarray:
        """Softmax distribution over levels (diagnostics)."""
        from ..nn.losses import softmax
        x = self._input_vector(counters, preset)
        return softmax(self.model.forward(x[None, :]))[0]
