"""Guarded runtime controller: sanitize, validate, degrade gracefully.

A closed-loop DVFS controller trusts two inputs it does not control:
the performance counters it observes and the outputs of its learned
models.  :class:`GuardedController` wraps any policy with three layers
of protection:

1. **Counter sanitization** — NaN/Inf values are zeroed, negatives
   clamped, implausibly large values capped, and a physically
   impossible all-zero window (real epochs always report static power)
   is flagged as sensor dropout.  The wrapped policy only ever sees
   finite, range-checked counters.
2. **Decision validation** — whatever the policy returns is checked
   with :func:`repro.core.policy.validate_decision`; exceptions from
   the policy itself are contained.  An invalid decision never reaches
   the V/f actuator.
3. **Graceful degradation** — repeated anomalies trip the guard into a
   safe static-frequency fallback (the default operating point by
   default: the baseline every metric is normalised against, so the
   preset cannot be violated from there).  After a cooldown the guard
   enters a probation window where the policy is consulted again; a
   clean probation restores normal operation, any anomaly sends it
   back to fallback.

State machine::

    ACTIVE --(anomaly streak >= trip_threshold)--> FALLBACK
    FALLBACK --(fallback_epochs elapsed)--------> PROBATION
    PROBATION --(probation_epochs clean)--------> ACTIVE
    PROBATION --(any anomaly)-------------------> FALLBACK

A fourth, *model-lifecycle* layer rides on the same machine: when a
:class:`~repro.core.drift.DriftMonitor` is attached, every consulted
epoch feeds the wrapped controller's calibration-gap signal into it.
A confirmed drift alarm hot-swaps the wrapped policy for one rebuilt
from the artifact registry's last-known-good pair (via a
:class:`~repro.core.drift.RollbackManager`) and re-enters PROBATION to
validate it; when nothing in the registry verifies, the guard pins
itself in FALLBACK — the static default operating point cannot violate
the preset — for the rest of the run.  Hot-swaps carry a cooldown
(``swap_cooldown_epochs``): a re-alarm before it elapses is counted as
``drift_swap_suppressed`` and ridden out in plain FALLBACK instead of
swapping again, which prevents two half-bad registry pairs from
oscillating A -> B -> A forever.  In strict mode a drift alarm raises
:class:`~repro.errors.DriftDetected` instead.

Per-guard trip counters are exposed through
:meth:`observability_counters` (``guard_*``, plus ``drift_*`` /
``rollback_*`` when the drift layer is attached) and folded into
campaign ``--stats`` by the evaluation runner.
"""

from __future__ import annotations

import numpy as np

from ..errors import DriftDetected, GuardTripped, PolicyError
from ..gpu.counters import CounterSet
from ..gpu.simulator import EpochRecord, GPUSimulator
from .policy import BasePolicy, validate_decision

#: Guard states (strings so traces and reprs read naturally).
ACTIVE = "active"
FALLBACK = "fallback"
PROBATION = "probation"


class GuardedController(BasePolicy):
    """Wrap a policy with input sanitization and a safe-fallback guard."""

    def __init__(self, inner, fallback_level: int | None = None,
                 trip_threshold: int = 3, fallback_epochs: int = 20,
                 probation_epochs: int = 10,
                 max_counter_value: float = 1e15,
                 strict: bool = False,
                 drift_monitor=None, rollback=None,
                 swap_cooldown_epochs: int = 50) -> None:
        super().__init__()
        if trip_threshold < 1:
            raise PolicyError("trip_threshold must be >= 1")
        if fallback_epochs < 1 or probation_epochs < 1:
            raise PolicyError("fallback/probation windows must be >= 1 epoch")
        if max_counter_value <= 0:
            raise PolicyError("max_counter_value must be positive")
        if swap_cooldown_epochs < 0:
            raise PolicyError("swap_cooldown_epochs cannot be negative")
        self.inner = inner
        self.name = f"{inner.name}+guard"
        self.fallback_level = fallback_level
        self.trip_threshold = int(trip_threshold)
        self.fallback_epochs = int(fallback_epochs)
        self.probation_epochs = int(probation_epochs)
        self.max_counter_value = float(max_counter_value)
        self.strict = strict
        #: Optional :class:`~repro.core.drift.DriftMonitor`; fed from
        #: the wrapped policy's ``drift_signal()`` on consulted epochs.
        self.drift_monitor = drift_monitor
        #: Optional :class:`~repro.core.drift.RollbackManager` used to
        #: hot-swap the wrapped policy on a confirmed drift alarm.
        self.rollback = rollback
        #: Minimum epochs between drift hot-swaps.  A freshly swapped
        #: pair that re-alarms inside this window cannot trigger
        #: another swap (which would oscillate through the registry);
        #: the guard rides out the alarm in plain FALLBACK instead.
        self.swap_cooldown_epochs = int(swap_cooldown_epochs)
        self.state = ACTIVE
        self.state_trace: list[str] = []
        self.guard_counters: dict[str, int] = {}
        self._streak = 0
        self._state_epochs = 0
        self._fallback_level = 0
        self._pinned_fallback = False
        #: Epochs since the last drift hot-swap (None before any swap).
        self._since_swap: int | None = None

    # ------------------------------------------------------------------
    def reset(self, simulator: GPUSimulator) -> None:
        """Reset guard state and the wrapped policy."""
        super().reset(simulator)
        table = simulator.arch.vf_table
        level = (table.default_level if self.fallback_level is None
                 else int(self.fallback_level))
        if not 0 <= level < table.num_levels:
            raise PolicyError(f"fallback level {level} out of range")
        self._fallback_level = level
        self.state = ACTIVE
        self.state_trace = []
        self.guard_counters = {}
        self._streak = 0
        self._state_epochs = 0
        self._pinned_fallback = False
        self._since_swap = None
        if self.drift_monitor is not None:
            self.drift_monitor.reset()
        self.inner.reset(simulator)

    def _count(self, name: str, amount: int = 1) -> None:
        self.guard_counters[name] = self.guard_counters.get(name, 0) + amount

    def observability_counters(self) -> dict[str, int]:
        """Guard trip counters, merged with the wrapped policy's.

        When the drift layer is attached its ``drift_*`` / ``rollback_*``
        counters are folded in too.
        """
        merged = dict(self.guard_counters)
        sources = [getattr(self.inner, "observability_counters", None)]
        if self.drift_monitor is not None:
            sources.append(self.drift_monitor.observability_counters)
        if self.rollback is not None:
            sources.append(self.rollback.observability_counters)
        for source in sources:
            if callable(source):
                for name, amount in source().items():
                    merged[name] = merged.get(name, 0) + amount
        return merged

    # ------------------------------------------------------------------
    def _sanitize_counters(self, counters: CounterSet,
                           finished: bool) -> tuple[CounterSet, int]:
        """A finite, range-clamped copy plus the anomaly count."""
        vector = counters.as_vector()
        anomalies = 0
        nonfinite = ~np.isfinite(vector)
        bad = int(nonfinite.sum())
        if bad:
            vector[nonfinite] = 0.0
            self._count("guard_counter_nonfinite", bad)
            anomalies += bad
        negative = vector < 0.0
        bad = int(negative.sum())
        if bad:
            vector[negative] = 0.0
            self._count("guard_counter_negative", bad)
            anomalies += bad
        huge = vector > self.max_counter_value
        bad = int(huge.sum())
        if bad:
            vector[huge] = self.max_counter_value
            self._count("guard_counter_clamped", bad)
            anomalies += bad
        # Every real epoch reports nonzero static power; an all-zero
        # window from a still-running cluster is a dropped sensor sample.
        if not finished and not np.any(vector):
            self._count("guard_counter_dropout")
            anomalies += 1
        return CounterSet.from_vector(vector), anomalies

    def _sanitize_record(self, record: EpochRecord
                         ) -> tuple[EpochRecord, int]:
        anomalies = 0
        cluster_counters = []
        assert self.simulator is not None
        for index, counters in enumerate(record.cluster_counters):
            finished = self.simulator.clusters[index].finished
            clean, bad = self._sanitize_counters(counters, finished)
            cluster_counters.append(clean)
            anomalies += bad
        if anomalies == 0:
            return record, 0
        sanitized = EpochRecord(
            index=record.index,
            start_time_s=record.start_time_s,
            duration_s=record.duration_s,
            levels=record.levels,
            counters=CounterSet.average(cluster_counters),
            cluster_counters=cluster_counters,
            instructions=record.instructions,
            cluster_energy_j=record.cluster_energy_j,
            uncore_energy_j=record.uncore_energy_j,
            all_finished=record.all_finished,
            finish_time_s=record.finish_time_s,
        )
        return sanitized, anomalies

    # ------------------------------------------------------------------
    def _fallback_decision(self) -> list[int]:
        assert self.simulator is not None
        return [self._fallback_level] * len(self.simulator.clusters)

    def _consult(self, record: EpochRecord) -> tuple[list[int] | None, int]:
        """The inner policy's validated decision, or None plus anomalies."""
        assert self.simulator is not None
        try:
            decision = self.inner.decide(record)
        except Exception as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self._count("guard_policy_error")
            return None, 1
        try:
            levels = validate_decision(decision,
                                       self.simulator.arch.vf_table.num_levels,
                                       len(self.simulator.clusters))
        except PolicyError:
            self._count("guard_decision_invalid")
            return None, 1
        return levels, 0

    def decide(self, record: EpochRecord):
        """Sanitize, consult (unless in fallback), update the guard FSM."""
        if self.simulator is None:
            raise PolicyError("policy not bound to a simulator")
        if self._since_swap is not None:
            self._since_swap += 1
        record, anomalies = self._sanitize_record(record)

        decision: list[int] | None = None
        consulted = False
        if self.state == FALLBACK:
            self._count("guard_fallback_epochs")
            self._state_epochs += 1
            if (not self._pinned_fallback
                    and self._state_epochs >= self.fallback_epochs):
                self._enter(PROBATION)
                # A stateful policy (e.g. the Calibrator loop) has been
                # blind during fallback; restart it cleanly for probation.
                self.inner.reset(self.simulator)
        else:
            consulted = True
            decision, consult_anomalies = self._consult(record)
            anomalies += consult_anomalies

        if anomalies:
            self._streak += 1
            if self.state == PROBATION:
                self._count("guard_probation_failures")
                self._enter(FALLBACK)
                decision = None
            elif self.state == ACTIVE and self._streak >= self.trip_threshold:
                self._count("guard_trips")
                if self.strict:
                    raise GuardTripped(
                        f"guard tripped after {self._streak} anomalous "
                        f"epochs (counters: {self.guard_counters})")
                self._enter(FALLBACK)
                decision = None
        else:
            self._streak = 0
            if self.state == PROBATION:
                self._state_epochs += 1
                if self._state_epochs >= self.probation_epochs:
                    self._count("guard_recoveries")
                    self._enter(ACTIVE)

        # Model-lifecycle layer: on every epoch where the wrapped policy
        # actually ran (and the FSM still trusts it), fold its
        # calibration gap into the drift monitor and react to alarms.
        if (consulted and self.drift_monitor is not None
                and self.state in (ACTIVE, PROBATION)):
            signal = getattr(self.inner, "drift_signal", None)
            gap, violation = (signal() if callable(signal)
                              else (None, False))
            if self.drift_monitor.update(gap, violation):
                decision = self._handle_drift()

        self.state_trace.append(self.state)
        if self.state == FALLBACK or decision is None:
            return self._fallback_decision()
        return decision

    def _handle_drift(self) -> None:
        """React to a confirmed drift alarm: hot-swap or pin fallback."""
        assert self.simulator is not None
        self._count("drift_trips")
        if self.strict:
            raise DriftDetected(
                f"sustained model drift confirmed after "
                f"{self.drift_monitor.updates} monitored epochs "
                f"(counters: {self.observability_counters()})")
        if (self._since_swap is not None
                and self._since_swap < self.swap_cooldown_epochs):
            # Hot-swap hysteresis: the pair serving now was itself
            # swapped in fewer than ``swap_cooldown_epochs`` ago.  A
            # re-alarm this early means swapping is not converging
            # (classic rollback oscillation: A alarms -> swap to B,
            # B alarms -> swap back to A, ...), so suppress the swap
            # and ride the alarm out in plain FALLBACK — probation
            # and the next alarm outside the window stay available.
            self._count("drift_swap_suppressed")
            self.drift_monitor.reset()
            self._enter(FALLBACK)
            return None
        replacement = (self.rollback.recover()
                       if self.rollback is not None else None)
        if replacement is not None:
            # Hot-swap to the registry's last-known-good pair and let
            # PROBATION validate it; this epoch still actuates the safe
            # fallback level.
            self.inner = replacement
            self.inner.reset(self.simulator)
            self.drift_monitor.reset()
            self._count("rollback_hot_swaps")
            self._since_swap = 0
            self._enter(PROBATION)
        else:
            # Nothing in the registry verifies: the model pair cannot
            # be trusted again this run, so hold the static fallback
            # (the baseline operating point cannot violate the preset).
            self.drift_monitor.reset()
            self._pinned_fallback = True
            self._count("rollback_pinned_fallback")
            self._enter(FALLBACK)
        return None

    def _enter(self, state: str) -> None:
        self.state = state
        self._state_epochs = 0
        self._streak = 0
