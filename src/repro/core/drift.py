"""Online drift detection and self-healing model rollback.

The Calibrator exists because offline models go stale at runtime; this
module closes the remaining loop by treating the predicted-vs-actual
instruction gap as a *trust* signal, not just a preset nudge.  Three
pieces:

* :class:`DriftConfig` / :class:`DriftMonitor` — an EWMA + one-sided
  CUSUM monitor over the controller's raw calibration gap and its
  realised preset-violation pressure.  Single-epoch noise washes out;
  a sustained shift accumulates in the CUSUM statistic and raises a
  drift alarm after a handful of epochs.
* :class:`RollbackManager` — given an :class:`~repro.store.ArtifactStore`
  and an artifact name, rebuilds a replacement controller from the
  registry's ``last_known_good`` Decision-maker/Calibrator pair (or
  any older version that still verifies), validating checksums *and*
  weight finiteness before trusting it.
* :class:`repro.core.guarded.GuardedController` consumes both: on a
  confirmed alarm it hot-swaps its wrapped policy to the recovered
  pair and re-enters probation, or degrades to the static-frequency
  fallback when nothing in the registry verifies.  ``drift_*`` and
  ``rollback_*`` counters surface the whole episode in ``--stats``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..errors import ArtifactCorrupt, PolicyError
from ..store import ArtifactStore


@dataclass(frozen=True)
class DriftConfig:
    """Thresholds of the EWMA/CUSUM drift monitor.

    ``cusum_slack`` is the per-update magnitude a healthy Calibrator is
    allowed "for free" (its honest noise floor); only the excess
    ``|gap| - cusum_slack`` accumulates.  An alarm fires when the
    accumulated excess crosses ``cusum_limit`` — e.g. the default
    limit/slack pair confirms drift after ~4 consecutive epochs of a
    fully-saturated gap, or ~10 epochs of a moderate one — or when the
    EWMA of the violation-pressure flag stays above
    ``violation_threshold``.  ``warmup_updates`` suppresses alarms
    while the first comparisons trickle in.
    """

    ewma_alpha: float = 0.15
    cusum_slack: float = 0.15
    cusum_limit: float = 3.0
    violation_alpha: float = 0.05
    violation_threshold: float = 0.6
    warmup_updates: int = 8
    #: Non-finite gaps (a poisoned model) count as this magnitude.
    nonfinite_gap: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise PolicyError("ewma_alpha must be in (0, 1]")
        if not 0.0 < self.violation_alpha <= 1.0:
            raise PolicyError("violation_alpha must be in (0, 1]")
        if self.cusum_slack < 0 or self.cusum_limit <= 0:
            raise PolicyError("cusum_slack >= 0 and cusum_limit > 0 required")
        if not 0.0 < self.violation_threshold <= 1.0:
            raise PolicyError("violation_threshold must be in (0, 1]")
        if self.warmup_updates < 0:
            raise PolicyError("warmup_updates cannot be negative")


class DriftMonitor:
    """EWMA + CUSUM over the calibration gap and violation pressure.

    ``update`` consumes one epoch's signals and returns True when the
    accumulated evidence crosses a threshold — the *alarm*.  The
    monitor stays latched (``drifted``) until :meth:`reset`, which the
    guard calls after a rollback so the restored pair starts from a
    clean slate.
    """

    def __init__(self, config: DriftConfig | None = None) -> None:
        self.config = config or DriftConfig()
        self.counters: dict[str, int] = {}
        self.reset()

    def reset(self) -> None:
        """Clear all accumulated state (post-rollback clean slate)."""
        self.ewma_gap = 0.0
        self.cusum = 0.0
        self.violation_pressure = 0.0
        self.updates = 0
        self.drifted = False

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def update(self, gap: float | None, violation: bool = False) -> bool:
        """Fold one epoch's signals in; True when this update alarms.

        ``gap`` is the controller's raw normalised calibration gap
        (None when no comparison happened this epoch — e.g. all
        clusters drained — which skips the gap statistics but still
        tracks violation pressure).
        """
        config = self.config
        self.updates += 1
        self._count("drift_updates")
        if gap is not None:
            if not math.isfinite(gap):
                self._count("drift_nonfinite_gaps")
                magnitude = config.nonfinite_gap
            else:
                magnitude = min(abs(gap), 1.0)
            self.ewma_gap += config.ewma_alpha * (magnitude - self.ewma_gap)
            self.cusum = max(0.0, self.cusum
                             + magnitude - config.cusum_slack)
        self.violation_pressure += config.violation_alpha * (
            float(bool(violation)) - self.violation_pressure)
        if self.updates <= config.warmup_updates or self.drifted:
            return False
        if (self.cusum > config.cusum_limit
                or self.violation_pressure > config.violation_threshold):
            self.drifted = True
            self._count("drift_alarms")
            return True
        return False

    def observability_counters(self) -> dict[str, int]:
        """Monitor counters (``drift_*``), for ``--stats`` fold-in."""
        return dict(self.counters)


class RollbackManager:
    """Recover a trustworthy controller from the artifact registry.

    ``build`` maps a restored :class:`~repro.core.combined.SSMDVFSModel`
    to a fresh policy instance (typically
    ``lambda model: SSMDVFSController(model, preset)``).  Recovery
    walks the registry starting at ``last_known_good`` and then down
    through older versions, skipping anything whose checksum or weight
    finiteness fails; it returns None when nothing verifies, which the
    guard translates into a permanent static-frequency fallback.
    """

    def __init__(self, store: ArtifactStore, name: str,
                 build: Callable[["object"], "object"]) -> None:
        self.store = store
        self.name = name
        self.build = build
        self.counters: dict[str, int] = {}

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def _candidate_versions(self) -> list[int]:
        versions = [entry.version for entry in self.store.versions(self.name)]
        good = self.store.last_known_good(self.name)
        ordered: list[int] = []
        if good in versions:
            ordered.append(good)
        for version in sorted(versions, reverse=True):
            if version not in ordered:
                ordered.append(version)
        return ordered

    def recover(self):
        """A fresh policy built from the best verifying pair, or None."""
        from .combined import SSMDVFSModel
        self._count("rollback_attempts")
        for version in self._candidate_versions():
            try:
                blob = self.store.get(self.name, version, fallback=False)
                model = SSMDVFSModel.from_bytes(blob)
            except ArtifactCorrupt:
                self._count("rollback_corrupt_versions")
                continue
            if not model.verify():
                self._count("rollback_unverified_versions")
                continue
            self._count("rollback_successes")
            self.counters["rollback_restored_version"] = version
            return self.build(model)
        self._count("rollback_exhausted")
        return None

    def observability_counters(self) -> dict[str, int]:
        """Rollback counters (``rollback_*``), for ``--stats`` fold-in."""
        return dict(self.counters)
