"""End-to-end SSMDVFS build-up (paper Fig. 2).

``build_ssmdvfs`` chains every offline stage:

1. data generation over the training suite (§III-A),
2. feature selection — RFE down to three indirect features plus the
   direct power feature (§IV-A), or a user-fixed feature set,
3. training the base 5+4x20 Decision-maker/Calibrator pair (§III-D),
4. layer-wise-compressed 3+2x12 pair (§IV-B),
5. two-stage pruning with fine-tuning (§IV-C),

and packages each stage's pair as a deployable
:class:`~repro.core.combined.SSMDVFSModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

from ..datagen.dataset import DVFSDataset, PreparedData
from ..datagen.protocol import ProtocolConfig, generate_for_suite
from ..datagen.rfe import RFEResult, RFESelector
from ..errors import ModelError
from ..gpu.arch import GPUArchConfig
from ..gpu.kernels import KernelProfile
from ..nn.compress import (PAPER_BASE_SPEC, PAPER_COMPRESSED_SPEC,
                           PAPER_PRUNE_PARAMS, ArchitectureSpec, TrainedPair,
                           prune_and_finetune, train_pair)
from ..nn.trainer import TrainConfig
from ..parallel import CampaignStats, parallel_map
from .combined import SSMDVFSModel

#: Model variants the pipeline can produce.
VARIANTS = ("base", "compressed", "pruned")


@dataclass(frozen=True)
class PipelineConfig:
    """Configuration of the full offline build."""

    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)
    feature_names: tuple[str, ...] | None = None  # None -> run RFE
    base_spec: ArchitectureSpec = PAPER_BASE_SPEC
    compressed_spec: ArchitectureSpec = PAPER_COMPRESSED_SPEC
    prune_params: tuple[float, float] = PAPER_PRUNE_PARAMS
    train: TrainConfig = field(default_factory=lambda: TrainConfig(
        epochs=120, patience=15, learning_rate=2e-3))
    finetune: TrainConfig = field(default_factory=lambda: TrainConfig(
        epochs=40, patience=8, learning_rate=5e-4))
    rfe_target: int = 3
    test_fraction: float = 0.25
    seed: int = 0


@dataclass
class PipelineResult:
    """Everything the offline build produced."""

    dataset: DVFSDataset
    prepared: PreparedData
    feature_names: tuple[str, ...]
    rfe: RFEResult | None
    pairs: dict[str, TrainedPair]
    models: dict[str, SSMDVFSModel]

    def model(self, variant: str = "pruned") -> SSMDVFSModel:
        """Fetch a deployable model by variant name."""
        if variant not in self.models:
            raise ModelError(
                f"variant {variant!r} not built; have {sorted(self.models)}"
            )
        return self.models[variant]


def _package(pair: TrainedPair, prepared: PreparedData, arch: GPUArchConfig,
             variant: str) -> SSMDVFSModel:
    return SSMDVFSModel(
        decision_model=pair.decision,
        calibrator_model=pair.calibrator,
        feature_names=prepared.feature_names,
        issue_width=arch.issue_width,
        num_levels=prepared.num_levels,
        decision_scaler=prepared.decision_scaler,
        calibrator_scaler=prepared.calibrator_scaler,
        metadata={
            "variant": variant,
            "accuracy_pct": pair.accuracy_pct,
            "mape_pct": pair.mape_pct,
            "flops_dense": pair.flops_dense,
            "flops_sparse": pair.flops_sparse,
        },
    )


def _train_variant_task(decision_data, calibrator_data, num_levels: int,
                        task: tuple) -> tuple[str, TrainedPair]:
    """Train one pipeline variant's pair (module-level for fan-out)."""
    variant, spec, train_config, seed = task
    pair = train_pair(spec, decision_data, calibrator_data, num_levels,
                      train_config, seed=seed)
    return variant, pair


def build_from_dataset(dataset: DVFSDataset, arch: GPUArchConfig,
                       config: PipelineConfig | None = None,
                       variants: tuple[str, ...] = VARIANTS, *,
                       workers: int | None = None,
                       stats: CampaignStats | None = None
                       ) -> PipelineResult:
    """Run stages 2-5 on an existing dataset (datagen is expensive).

    ``workers`` fans the independent base/compressed trainings out
    through the campaign layer (the pruned variant depends on the
    compressed pair, so it fine-tunes afterwards); ``stats`` collects
    the stage timings plus the ``train_models`` / ``train_epochs``
    counters alongside RFE's own counters.
    """
    config = config or PipelineConfig()
    stats = stats if stats is not None else CampaignStats()
    unknown = set(variants) - set(VARIANTS)
    if unknown:
        raise ModelError(f"unknown variants: {sorted(unknown)}")
    if "pruned" in variants and "compressed" not in variants:
        raise ModelError("the pruned variant builds on the compressed one")

    rfe_result = None
    if config.feature_names is None:
        selector = RFESelector(dataset, arch.issue_width,
                               target_count=config.rfe_target,
                               seed=config.seed, stats=stats)
        rfe_result = selector.run()
        feature_names = rfe_result.all_features
    else:
        feature_names = tuple(config.feature_names)

    prepared = dataset.prepare(feature_names, arch.issue_width,
                               test_fraction=config.test_fraction,
                               seed=config.seed)

    pairs: dict[str, TrainedPair] = {}
    models: dict[str, SSMDVFSModel] = {}
    tasks = []
    if "base" in variants:
        tasks.append(("base", config.base_spec, config.train, config.seed))
    if "compressed" in variants:
        tasks.append(("compressed", config.compressed_spec, config.train,
                      config.seed + 1))
    if tasks:
        outputs = parallel_map(
            partial(_train_variant_task, prepared.decision,
                    prepared.calibrator, prepared.num_levels),
            tasks, workers=workers, stats=stats, stage="train_variants")
        for variant, pair in outputs:
            pairs[variant] = pair
            stats.count("train_models", 2)
            stats.count("train_epochs", pair.epochs_run)
    if "pruned" in variants:
        x1, x2 = config.prune_params
        with stats.stage("prune_finetune", tasks=1):
            pairs["pruned"] = prune_and_finetune(
                pairs["compressed"], x1, x2, prepared.decision,
                prepared.calibrator, config.finetune)
        stats.count("train_models", 2)
        stats.count("train_epochs", pairs["pruned"].epochs_run)
    for variant, pair in pairs.items():
        models[variant] = _package(pair, prepared, arch, variant)

    return PipelineResult(
        dataset=dataset,
        prepared=prepared,
        feature_names=feature_names,
        rfe=rfe_result,
        pairs=pairs,
        models=models,
    )


def build_ssmdvfs(arch: GPUArchConfig, kernels: list[KernelProfile],
                  config: PipelineConfig | None = None,
                  variants: tuple[str, ...] = VARIANTS, *,
                  workers: int | None = None,
                  stats: CampaignStats | None = None) -> PipelineResult:
    """The full offline build: data generation through pruned model."""
    config = config or PipelineConfig()
    breakpoints = generate_for_suite(kernels, arch, config=config.protocol)
    dataset = DVFSDataset.from_breakpoints(breakpoints)
    return build_from_dataset(dataset, arch, config, variants,
                              workers=workers, stats=stats)
