"""The deployable SSMDVFS model artefact.

Bundles the Decision-maker and Calibrator networks with the feature
definition and the fitted scalers — everything the runtime controller
(or the ASIC cost model) needs — plus quality metadata, and round-trips
through a directory of ``.npz``/JSON files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..datagen.features import FeatureExtractor, FeatureScaler
from ..errors import ModelError
from ..nn.flops import model_flops
from ..nn.mlp import MLP
from ..nn.serialize import load_model, save_model
from .calibrator import Calibrator
from .decision_maker import DecisionMaker


@dataclass
class SSMDVFSModel:
    """A trained Decision-maker / Calibrator pair ready for deployment."""

    decision_model: MLP
    calibrator_model: MLP
    feature_names: tuple[str, ...]
    issue_width: float
    num_levels: int
    decision_scaler: FeatureScaler
    calibrator_scaler: FeatureScaler
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Constructing the wrappers validates every shape contract.
        extractor = FeatureExtractor(self.feature_names, self.issue_width)
        self._decision = DecisionMaker(self.decision_model, extractor,
                                       self.decision_scaler, self.num_levels)
        self._calibrator = Calibrator(self.calibrator_model, extractor,
                                      self.calibrator_scaler)

    @property
    def decision_maker(self) -> DecisionMaker:
        """Classification head wrapper."""
        return self._decision

    @property
    def calibrator(self) -> Calibrator:
        """Regression head wrapper."""
        return self._calibrator

    @property
    def flops_dense(self) -> int:
        """Dense FLOPs per decision epoch."""
        return (model_flops(self.decision_model)
                + model_flops(self.calibrator_model))

    @property
    def flops_sparse(self) -> int:
        """Sparse (post-pruning) FLOPs per decision epoch."""
        return (model_flops(self.decision_model, sparse=True)
                + model_flops(self.calibrator_model, sparse=True))

    def quantized(self, total_bits: int = 16) -> "SSMDVFSModel":
        """Fixed-point-quantized copy of this artefact.

        The paper's ASIC computes in FP32 (§V-D); this produces the
        fixed-point variant for the precision ablation.  Scalers and
        feature definitions are shared (they are runtime-side).
        """
        from ..nn.quant import quantize_model
        decision, decision_report = quantize_model(self.decision_model,
                                                   total_bits)
        calibrator, calib_report = quantize_model(self.calibrator_model,
                                                  total_bits)
        metadata = dict(self.metadata)
        metadata.update({
            "quantized_bits": total_bits,
            "max_weight_error": max(decision_report.max_weight_error,
                                    calib_report.max_weight_error),
        })
        return SSMDVFSModel(
            decision_model=decision,
            calibrator_model=calibrator,
            feature_names=self.feature_names,
            issue_width=self.issue_width,
            num_levels=self.num_levels,
            decision_scaler=self.decision_scaler,
            calibrator_scaler=self.calibrator_scaler,
            metadata=metadata,
        )

    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> None:
        """Persist the full artefact into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        save_model(self.decision_model, directory / "decision.npz")
        save_model(self.calibrator_model, directory / "calibrator.npz")
        np.savez(directory / "scalers.npz",
                 d_mean=self.decision_scaler.mean_,
                 d_std=self.decision_scaler.std_,
                 c_mean=self.calibrator_scaler.mean_,
                 c_std=self.calibrator_scaler.std_)
        meta = {
            "feature_names": list(self.feature_names),
            "issue_width": self.issue_width,
            "num_levels": self.num_levels,
            "metadata": self.metadata,
        }
        (directory / "meta.json").write_text(json.dumps(meta, indent=2))

    @classmethod
    def load(cls, directory: str | Path) -> "SSMDVFSModel":
        """Load an artefact saved with :meth:`save`."""
        directory = Path(directory)
        meta_path = directory / "meta.json"
        if not meta_path.exists():
            raise ModelError(f"no SSMDVFS model at {directory}")
        meta = json.loads(meta_path.read_text())
        with np.load(directory / "scalers.npz") as data:
            decision_scaler = FeatureScaler.from_arrays(
                {"mean": data["d_mean"], "std": data["d_std"]})
            calibrator_scaler = FeatureScaler.from_arrays(
                {"mean": data["c_mean"], "std": data["c_std"]})
        return cls(
            decision_model=load_model(directory / "decision.npz"),
            calibrator_model=load_model(directory / "calibrator.npz"),
            feature_names=tuple(meta["feature_names"]),
            issue_width=float(meta["issue_width"]),
            num_levels=int(meta["num_levels"]),
            decision_scaler=decision_scaler,
            calibrator_scaler=calibrator_scaler,
            metadata=meta.get("metadata", {}),
        )
