"""The deployable SSMDVFS model artefact.

Bundles the Decision-maker and Calibrator networks with the feature
definition and the fitted scalers — everything the runtime controller
(or the ASIC cost model) needs — plus quality metadata, and round-trips
through a directory of ``.npz``/JSON files.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..datagen.features import FeatureExtractor, FeatureScaler
from ..errors import ArtifactCorrupt, ModelError, PolicyError
from ..nn.flops import model_flops
from ..nn.mlp import MLP
from ..nn.serialize import (load_model, model_from_arrays, model_to_arrays,
                            save_model)
from ..store import atomic_write_bytes, atomic_write_text
from .calibrator import Calibrator
from .decision_maker import DecisionMaker

#: Schema tag for single-blob pair payloads in the artifact store.
PAIR_SCHEMA = "ssmdvfs-pair/v1"


@dataclass
class SSMDVFSModel:
    """A trained Decision-maker / Calibrator pair ready for deployment."""

    decision_model: MLP
    calibrator_model: MLP
    feature_names: tuple[str, ...]
    issue_width: float
    num_levels: int
    decision_scaler: FeatureScaler
    calibrator_scaler: FeatureScaler
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Constructing the wrappers validates every shape contract.
        extractor = FeatureExtractor(self.feature_names, self.issue_width)
        self._decision = DecisionMaker(self.decision_model, extractor,
                                       self.decision_scaler, self.num_levels)
        self._calibrator = Calibrator(self.calibrator_model, extractor,
                                      self.calibrator_scaler)

    @property
    def decision_maker(self) -> DecisionMaker:
        """Classification head wrapper."""
        return self._decision

    @property
    def calibrator(self) -> Calibrator:
        """Regression head wrapper."""
        return self._calibrator

    @property
    def flops_dense(self) -> int:
        """Dense FLOPs per decision epoch."""
        return (model_flops(self.decision_model)
                + model_flops(self.calibrator_model))

    @property
    def flops_sparse(self) -> int:
        """Sparse (post-pruning) FLOPs per decision epoch."""
        return (model_flops(self.decision_model, sparse=True)
                + model_flops(self.calibrator_model, sparse=True))

    def quantized(self, total_bits: int = 16) -> "SSMDVFSModel":
        """Fixed-point-quantized copy of this artefact.

        The paper's ASIC computes in FP32 (§V-D); this produces the
        fixed-point variant for the precision ablation.  Scalers and
        feature definitions are shared (they are runtime-side).
        """
        from ..nn.quant import quantize_model
        decision, decision_report = quantize_model(self.decision_model,
                                                   total_bits)
        calibrator, calib_report = quantize_model(self.calibrator_model,
                                                  total_bits)
        metadata = dict(self.metadata)
        metadata.update({
            "quantized_bits": total_bits,
            "max_weight_error": max(decision_report.max_weight_error,
                                    calib_report.max_weight_error),
        })
        return SSMDVFSModel(
            decision_model=decision,
            calibrator_model=calibrator,
            feature_names=self.feature_names,
            issue_width=self.issue_width,
            num_levels=self.num_levels,
            decision_scaler=self.decision_scaler,
            calibrator_scaler=self.calibrator_scaler,
            metadata=metadata,
        )

    def verify(self) -> bool:
        """True when every weight, bias and scaler value is finite.

        The drift-rollback machinery calls this before trusting a pair
        restored from the artifact store: a pair that deserializes but
        carries NaN/Inf weights would poison every prediction.
        """
        for model in (self.decision_model, self.calibrator_model):
            for layer in model.layers:
                if not (np.all(np.isfinite(layer.weights))
                        and np.all(np.isfinite(layer.bias))
                        and np.all(np.isfinite(layer.mask))):
                    return False
        for scaler in (self.decision_scaler, self.calibrator_scaler):
            if not (np.all(np.isfinite(scaler.mean_))
                    and np.all(np.isfinite(scaler.std_))):
                return False
        return True

    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> None:
        """Persist the full artefact into ``directory``.

        Every file goes through the atomic write helper, so a crash
        mid-save can tear at most the *set* of files (detected at load
        by the shape contracts), never an individual file.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        save_model(self.decision_model, directory / "decision.npz")
        save_model(self.calibrator_model, directory / "calibrator.npz")
        buffer = io.BytesIO()
        np.savez(buffer,
                 d_mean=self.decision_scaler.mean_,
                 d_std=self.decision_scaler.std_,
                 c_mean=self.calibrator_scaler.mean_,
                 c_std=self.calibrator_scaler.std_)
        atomic_write_bytes(directory / "scalers.npz", buffer.getvalue())
        meta = {
            "feature_names": list(self.feature_names),
            "issue_width": self.issue_width,
            "num_levels": self.num_levels,
            "metadata": self.metadata,
        }
        atomic_write_text(directory / "meta.json", json.dumps(meta, indent=2))

    @classmethod
    def load(cls, directory: str | Path) -> "SSMDVFSModel":
        """Load an artefact saved with :meth:`save`."""
        directory = Path(directory)
        meta_path = directory / "meta.json"
        if not meta_path.exists():
            raise ModelError(f"no SSMDVFS model at {directory}")
        try:
            meta = json.loads(meta_path.read_text())
            with np.load(directory / "scalers.npz") as data:
                decision_scaler = FeatureScaler.from_arrays(
                    {"mean": data["d_mean"], "std": data["d_std"]})
                calibrator_scaler = FeatureScaler.from_arrays(
                    {"mean": data["c_mean"], "std": data["c_std"]})
        except (ModelError, OSError):
            raise
        except Exception as exc:
            raise ArtifactCorrupt(
                f"corrupt SSMDVFS artefact at {directory}: {exc}") from exc
        return cls(
            decision_model=load_model(directory / "decision.npz"),
            calibrator_model=load_model(directory / "calibrator.npz"),
            feature_names=tuple(meta["feature_names"]),
            issue_width=float(meta["issue_width"]),
            num_levels=int(meta["num_levels"]),
            decision_scaler=decision_scaler,
            calibrator_scaler=calibrator_scaler,
            metadata=meta.get("metadata", {}),
        )

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """The whole pair as one ``.npz`` payload for the artifact store.

        Both networks, both scalers and the JSON metadata travel in a
        single blob, so the store's embedded SHA-256 covers the *pair*
        — a half-updated Decision-maker/Calibrator combination cannot
        verify.
        """
        arrays: dict[str, np.ndarray] = {}
        for prefix, model in (("dm", self.decision_model),
                              ("cal", self.calibrator_model)):
            for key, value in model_to_arrays(model).items():
                arrays[f"{prefix}_{key}"] = value
        arrays["d_mean"] = self.decision_scaler.mean_
        arrays["d_std"] = self.decision_scaler.std_
        arrays["c_mean"] = self.calibrator_scaler.mean_
        arrays["c_std"] = self.calibrator_scaler.std_
        meta = {
            "feature_names": list(self.feature_names),
            "issue_width": self.issue_width,
            "num_levels": self.num_levels,
            "metadata": self.metadata,
        }
        arrays["meta_json"] = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8)
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        return buffer.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SSMDVFSModel":
        """Inverse of :meth:`to_bytes`.

        Raises :class:`~repro.errors.ArtifactCorrupt` on any malformed
        payload — including structurally valid arrays that fail the
        wrapper shape contracts — so the rollback machinery can walk
        back to an older version instead of crashing.
        """
        try:
            with np.load(io.BytesIO(blob), allow_pickle=False) as data:
                arrays = {key: data[key] for key in data.files}
        except Exception as exc:
            raise ArtifactCorrupt(
                f"unreadable SSMDVFS pair payload: {exc}") from exc
        try:
            meta = json.loads(bytes(arrays.pop("meta_json")).decode("utf-8"))
            decision_scaler = FeatureScaler.from_arrays(
                {"mean": arrays.pop("d_mean"), "std": arrays.pop("d_std")})
            calibrator_scaler = FeatureScaler.from_arrays(
                {"mean": arrays.pop("c_mean"), "std": arrays.pop("c_std")})
            decision = model_from_arrays(
                {key[3:]: value for key, value in arrays.items()
                 if key.startswith("dm_")})
            calibrator = model_from_arrays(
                {key[4:]: value for key, value in arrays.items()
                 if key.startswith("cal_")})
            return cls(
                decision_model=decision,
                calibrator_model=calibrator,
                feature_names=tuple(meta["feature_names"]),
                issue_width=float(meta["issue_width"]),
                num_levels=int(meta["num_levels"]),
                decision_scaler=decision_scaler,
                calibrator_scaler=calibrator_scaler,
                metadata=meta.get("metadata", {}),
            )
        except ArtifactCorrupt:
            raise
        except (PolicyError, ModelError, KeyError, TypeError,
                ValueError) as exc:
            raise ArtifactCorrupt(
                f"malformed SSMDVFS pair payload: {exc}") from exc
