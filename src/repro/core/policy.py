"""DVFS policy interface and reference policies.

A policy observes the epoch record the simulator produces and returns
the operating-point level(s) for the next epoch.  ``StaticPolicy`` is
the paper's normalisation baseline (always the default point);
``ModelOraclePolicy`` peeks at simulator internals to compute the
per-phase optimal level — an upper bound no deployable policy can see.
"""

from __future__ import annotations

import math
import numbers

import numpy as np

from ..errors import PolicyError
from ..gpu.interval_model import solve_throughput
from ..gpu.simulator import EpochRecord, GPUSimulator


def validate_decision(decision, num_levels: int,
                      num_clusters: int) -> list[int]:
    """Normalise a policy decision to a checked per-cluster level list.

    Accepts the same shapes :meth:`GPUSimulator.apply_decision` does —
    a scalar broadcast or a per-cluster sequence — but *validates*
    instead of trusting: every level must be finite, integral and in
    ``[0, num_levels)``.  Raises :class:`PolicyError` on anything else,
    which is what lets :class:`repro.core.guarded.GuardedController`
    treat a malformed decision as a guard anomaly rather than letting
    it reach the hardware model.
    """
    if isinstance(decision, numbers.Real) or np.ndim(decision) == 0:
        levels = [decision] * num_clusters
    else:
        levels = list(decision)
        if len(levels) != num_clusters:
            raise PolicyError(
                f"decision has {len(levels)} levels, expected {num_clusters}")
    checked: list[int] = []
    for level in levels:
        if not isinstance(level, numbers.Real):
            raise PolicyError(f"non-numeric level {level!r}")
        value = float(level)
        if not math.isfinite(value) or value != int(value):
            raise PolicyError(f"non-integral level {level!r}")
        index = int(value)
        if not 0 <= index < num_levels:
            raise PolicyError(
                f"level {index} out of range [0, {num_levels})")
        checked.append(index)
    return checked


class BasePolicy:
    """Common plumbing for policies (name + simulator binding)."""

    name = "base"

    def __init__(self) -> None:
        self.simulator: GPUSimulator | None = None

    def reset(self, simulator: GPUSimulator) -> None:
        """Bind to a simulator at the start of a run."""
        self.simulator = simulator

    def decide(self, record: EpochRecord):
        """Return the level(s) for the next epoch."""
        raise NotImplementedError


class StaticPolicy(BasePolicy):
    """Pin every cluster at one operating point.

    ``StaticPolicy(default_level)`` is the baseline every Fig. 4 metric
    is normalised against.
    """

    def __init__(self, level: int) -> None:
        super().__init__()
        self.level = int(level)
        self.name = f"static-l{self.level}"

    def reset(self, simulator: GPUSimulator) -> None:
        """Validate the level and pin every cluster to it."""
        super().reset(simulator)
        if not 0 <= self.level < simulator.arch.vf_table.num_levels:
            raise PolicyError(f"static level {self.level} out of range")
        simulator.set_all_levels(self.level)

    def decide(self, record: EpochRecord) -> int:
        """Always the pinned level."""
        return self.level


class ModelOraclePolicy(BasePolicy):
    """Phase-peeking oracle: min level whose *sustained* slowdown fits.

    For each cluster it reads the current phase straight from the
    simulator (which no real controller could) and evaluates the
    noiseless interval model at every operating point, choosing the
    slowest level whose slowdown relative to the default point stays
    within the preset.  Useful as an upper bound and for sanity-checking
    learned policies.
    """

    def __init__(self, preset: float) -> None:
        super().__init__()
        if preset < 0:
            raise PolicyError("preset cannot be negative")
        self.preset = float(preset)
        self.name = f"oracle-p{int(round(preset * 100))}"

    def decide(self, record: EpochRecord) -> list[int]:
        """Per cluster: slowest level within the preset (phase-peeking)."""
        if self.simulator is None:
            raise PolicyError("policy not bound to a simulator")
        arch = self.simulator.arch
        table = arch.vf_table
        default_freq = table[table.default_level].frequency_hz
        levels = []
        for cluster in self.simulator.clusters:
            if cluster.finished:
                levels.append(table.min_level)
                continue
            phase = cluster.cursor.current_phase
            base = solve_throughput(arch, phase, default_freq)
            base_time = base.time_for_instructions(1000.0)
            chosen = table.default_level
            for level in range(table.num_levels):
                solution = solve_throughput(arch, phase,
                                            table[level].frequency_hz)
                slowdown = (solution.time_for_instructions(1000.0)
                            / base_time) - 1.0
                if slowdown <= self.preset:
                    chosen = level
                    break
            levels.append(chosen)
        return levels
