"""SSMDVFS reproduction.

A full Python reproduction of *SSMDVFS: Microsecond-Scale DVFS on
GPGPUs with Supervised and Self-Calibrated ML* (DATE 2025), including
the GPU/power simulation substrate, the supervised data-generation
pipeline, the Decision-maker / Calibrator models, model compression and
pruning, the PCSTALL and F-LEMMA comparators, the ASIC cost model, and
the full evaluation harness.

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
paper-vs-measured results.
"""

__version__ = "1.0.0"

from . import (baselines, core, datagen, evaluation, fleet, gpu,  # noqa: F401
               hardware, nn, parallel, power, workloads)

__all__ = [
    "baselines", "core", "datagen", "evaluation", "fleet", "gpu",
    "hardware", "nn", "parallel", "power", "workloads", "__version__",
]
