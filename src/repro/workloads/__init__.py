"""Benchmark-suite surrogate (Rodinia / Parboil / PolyBench style)."""

from .generator import random_kernel, random_phase, random_suite
from .serialization import (kernel_from_dict, kernel_to_dict, load_kernels,
                            phase_from_dict, phase_to_dict, save_kernels)
from .suites import (EVALUATION_KERNEL_NAMES, TRAINING_KERNEL_NAMES,
                     estimate_default_duration, evaluation_suite, full_suite,
                     kernel_by_name, scale_kernel_to_duration, training_suite,
                     unseen_fraction)

__all__ = [
    "random_kernel", "random_phase", "random_suite",
    "kernel_from_dict", "kernel_to_dict", "load_kernels",
    "phase_from_dict", "phase_to_dict", "save_kernels",
    "EVALUATION_KERNEL_NAMES", "TRAINING_KERNEL_NAMES",
    "estimate_default_duration", "evaluation_suite", "full_suite",
    "kernel_by_name", "scale_kernel_to_duration", "training_suite",
    "unseen_fraction",
]
