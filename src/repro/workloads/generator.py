"""Randomized kernel generation.

Property-based tests and robustness studies need arbitrary-but-valid
kernels; this module samples them deterministically from an RNG, with
parameter ranges matching the hand-built suites.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..gpu.kernels import KernelProfile
from ..gpu.phases import Phase, make_mix


def random_phase(rng: np.random.Generator, name: str = "rand",
                 min_instructions: int = 10_000,
                 max_instructions: int = 400_000) -> Phase:
    """Sample one valid phase."""
    if min_instructions <= 0 or max_instructions < min_instructions:
        raise WorkloadError("invalid instruction bounds")
    # Sample a memory intensity then build a consistent mix around it.
    load = float(rng.uniform(0.03, 0.32))
    store = float(rng.uniform(0.01, 0.12))
    branch = float(rng.uniform(0.03, 0.22))
    fp32 = float(rng.uniform(0.05, max(0.06, 0.9 - load - store - branch - 0.2)))
    mix = make_mix(fp32=fp32, load=load, store=store, branch=branch,
                   shared=0.05, sync=0.02)
    return Phase(
        name=name,
        instructions=int(rng.integers(min_instructions, max_instructions)),
        mix=mix,
        cpi_exec=float(rng.uniform(1.2, 4.0)),
        mlp=float(rng.uniform(1.0, 6.0)),
        l1_miss_rate=float(rng.uniform(0.05, 0.9)),
        l2_miss_rate=float(rng.uniform(0.1, 0.9)),
        active_warps=float(rng.uniform(8.0, 56.0)),
        divergence=float(rng.uniform(0.0, 0.6)),
    )


def random_kernel(rng: np.random.Generator, name: str = "synthetic.rand",
                  max_phases: int = 4, max_iterations: int = 8,
                  min_instructions: int = 10_000,
                  max_instructions: int = 400_000) -> KernelProfile:
    """Sample one valid kernel profile."""
    if max_phases < 1 or max_iterations < 1:
        raise WorkloadError("invalid kernel bounds")
    num_phases = int(rng.integers(1, max_phases + 1))
    phases = [random_phase(rng, name=f"p{i}",
                           min_instructions=min_instructions,
                           max_instructions=max_instructions)
              for i in range(num_phases)]
    return KernelProfile(
        name=name,
        phases=phases,
        iterations=int(rng.integers(1, max_iterations + 1)),
        suite="synthetic",
        jitter=float(rng.uniform(0.0, 0.15)),
    )


def random_suite(seed: int, count: int = 8) -> list[KernelProfile]:
    """A deterministic list of random kernels."""
    if count < 1:
        raise WorkloadError("count must be positive")
    rng = np.random.default_rng(seed)
    return [random_kernel(rng, name=f"synthetic.rand{i}")
            for i in range(count)]
