"""Kernel (de)serialization.

Users bring their own workloads as JSON kernel descriptions — the same
fields :class:`~repro.gpu.phases.Phase` and
:class:`~repro.gpu.kernels.KernelProfile` validate — so new benchmarks
can be added without touching the library.

Example file::

    {
      "name": "custom.mykernel",
      "suite": "custom",
      "iterations": 4,
      "jitter": 0.06,
      "phases": [
        {"name": "sweep", "instructions": 200000,
         "mix": {"fp32": 0.4, "load": 0.2, "store": 0.05, "branch": 0.1},
         "cpi_exec": 1.8, "mlp": 3.0,
         "l1_miss_rate": 0.4, "l2_miss_rate": 0.5,
         "active_warps": 40, "divergence": 0.1}
      ]
    }

Unspecified mix classes are filled via
:func:`~repro.gpu.phases.make_mix` (remainder to ``int``).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import WorkloadError
from ..gpu.kernels import KernelProfile
from ..gpu.phases import Phase, make_mix

_PHASE_FIELDS = ("cpi_exec", "mlp", "l1_miss_rate", "l2_miss_rate",
                 "active_warps", "divergence")


def phase_to_dict(phase: Phase) -> dict:
    """Serialise one phase."""
    payload = {"name": phase.name, "instructions": phase.instructions,
               "mix": {k: v for k, v in phase.mix.items() if v > 0}}
    for field in _PHASE_FIELDS:
        payload[field] = getattr(phase, field)
    return payload


def phase_from_dict(payload: dict) -> Phase:
    """Rebuild one phase; raises :class:`WorkloadError` on bad input."""
    if not isinstance(payload, dict):
        raise WorkloadError("phase entry must be an object")
    try:
        name = str(payload["name"])
        instructions = int(payload["instructions"])
    except KeyError as exc:
        raise WorkloadError(f"phase missing field: {exc}") from exc
    mix_spec = payload.get("mix", {})
    if not isinstance(mix_spec, dict):
        raise WorkloadError("phase mix must be an object")
    mix = make_mix(**{k: float(v) for k, v in mix_spec.items()})
    kwargs = {field: float(payload[field])
              for field in _PHASE_FIELDS if field in payload}
    return Phase(name=name, instructions=instructions, mix=mix, **kwargs)


def kernel_to_dict(kernel: KernelProfile) -> dict:
    """Serialise one kernel profile."""
    return {
        "name": kernel.name,
        "suite": kernel.suite,
        "iterations": kernel.iterations,
        "jitter": kernel.jitter,
        "phases": [phase_to_dict(p) for p in kernel.phases],
    }


def kernel_from_dict(payload: dict) -> KernelProfile:
    """Rebuild one kernel profile."""
    if not isinstance(payload, dict):
        raise WorkloadError("kernel payload must be an object")
    phases_spec = payload.get("phases")
    if not isinstance(phases_spec, list) or not phases_spec:
        raise WorkloadError("kernel needs a non-empty phases list")
    return KernelProfile(
        name=str(payload.get("name", "custom.kernel")),
        phases=[phase_from_dict(p) for p in phases_spec],
        iterations=int(payload.get("iterations", 1)),
        suite=str(payload.get("suite", "custom")),
        jitter=float(payload.get("jitter", 0.08)),
    )


def save_kernels(kernels: list[KernelProfile], path: str | Path) -> None:
    """Write kernels to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps([kernel_to_dict(k) for k in kernels],
                               indent=2))


def load_kernels(path: str | Path) -> list[KernelProfile]:
    """Load kernels from a JSON file (single object or list)."""
    path = Path(path)
    if not path.exists():
        raise WorkloadError(f"kernel file not found: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise WorkloadError(f"invalid kernel JSON: {exc}") from exc
    if isinstance(payload, dict):
        payload = [payload]
    if not isinstance(payload, list):
        raise WorkloadError("kernel file must hold an object or a list")
    return [kernel_from_dict(entry) for entry in payload]
