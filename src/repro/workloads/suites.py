"""Benchmark-suite surrogate.

The paper draws "over 20 benchmarks" from Rodinia, Parboil and
PolyBench (§III-A).  Real CUDA binaries cannot run here, so each
benchmark is modelled as a :class:`~repro.gpu.kernels.KernelProfile`
whose phase structure mimics the published characterisation of the
kernel it is named after (compute-bound GEMMs, memory-bound SpMV /
streaming kernels, divergent graph traversals, iterative stencils, ...).

The training / evaluation split follows §V.A: more than half of the
evaluation programs are **not** in the training set, which is what the
generalisation claim is tested against.
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..gpu.arch import GPUArchConfig
from ..gpu.interval_model import solve_throughput
from ..gpu.kernels import KernelProfile
from ..gpu.phases import (Phase, balanced_phase, compute_phase,
                          divergent_phase, make_mix, memory_phase)

# Phase instruction counts are per cluster per phase pass.  At the
# default operating point a cluster retires roughly 20-70k
# warp-instructions per 10 us epoch.  The multiplier is tuned so phases
# span several epochs — real GPGPU kernels are near-stationary at 10 us
# granularity, and sub-epoch phases would make the next-window
# prediction problem artificially noisy compared to the paper's setup.
_K = 4000


def _kernel(name: str, suite: str, phases: list[Phase], iterations: int,
            jitter: float = 0.08) -> KernelProfile:
    return KernelProfile(name=f"{suite}.{name}", phases=phases,
                         iterations=iterations, suite=suite, jitter=jitter)


def _rodinia() -> list[KernelProfile]:
    return [
        _kernel("bfs", "rodinia", [
            divergent_phase("frontier-expand", 24 * _K, warps=20, divergence=0.55),
            memory_phase("visit-update", 18 * _K, warps=28, l1_miss=0.7),
        ], iterations=8, jitter=0.12),
        _kernel("hotspot", "rodinia", [
            balanced_phase("stencil-sweep", 56 * _K, warps=44),
            compute_phase("temp-update", 22 * _K, warps=44, cpi=1.8),
        ], iterations=6, jitter=0.06),
        _kernel("kmeans", "rodinia", [
            memory_phase("point-load", 30 * _K, warps=40, l1_miss=0.6),
            compute_phase("distance", 48 * _K, warps=40, cpi=1.6),
            divergent_phase("assign", 10 * _K, warps=32, divergence=0.35),
        ], iterations=5, jitter=0.08),
        _kernel("lud", "rodinia", [
            compute_phase("diagonal", 14 * _K, warps=12, cpi=2.2),
            compute_phase("perimeter", 30 * _K, warps=28, cpi=1.8),
            compute_phase("internal", 64 * _K, warps=52, cpi=1.5),
        ], iterations=4, jitter=0.07),
        _kernel("nw", "rodinia", [
            balanced_phase("wavefront", 26 * _K, warps=18, divergence=0.2),
        ], iterations=14, jitter=0.09),
        _kernel("srad", "rodinia", [
            memory_phase("gradient-load", 22 * _K, warps=40, l1_miss=0.55),
            balanced_phase("diffusion", 40 * _K, warps=40),
        ], iterations=7, jitter=0.06),
        _kernel("backprop", "rodinia", [
            compute_phase("forward", 46 * _K, warps=48, cpi=1.7),
            memory_phase("weight-update", 28 * _K, warps=40, l1_miss=0.5),
        ], iterations=5, jitter=0.07),
        _kernel("gaussian", "rodinia", [
            compute_phase("eliminate", 36 * _K, warps=40, cpi=1.7),
            compute_phase("back-substitute", 14 * _K, warps=16, cpi=2.4),
        ], iterations=6, jitter=0.08),
        _kernel("pathfinder", "rodinia", [
            memory_phase("row-stream", 44 * _K, warps=48, l1_miss=0.72,
                         l2_miss=0.7),
        ], iterations=9, jitter=0.05),
        _kernel("streamcluster", "rodinia", [
            memory_phase("point-stream", 34 * _K, warps=36, l1_miss=0.68),
            divergent_phase("center-select", 14 * _K, warps=24, divergence=0.4),
        ], iterations=7, jitter=0.11),
    ]


def _parboil() -> list[KernelProfile]:
    sfu_heavy = Phase(
        name="qr-trig",
        instructions=52 * _K,
        mix=make_mix(fp32=0.42, sfu=0.18, load=0.06, store=0.02,
                     shared=0.1, branch=0.05, sync=0.02),
        cpi_exec=2.1, mlp=3.0, l1_miss_rate=0.1, l2_miss_rate=0.2,
        active_warps=48.0, divergence=0.04,
    )
    return [
        _kernel("sgemm", "parboil", [
            compute_phase("tile-mac", 90 * _K, warps=56, cpi=1.4,
                          divergence=0.02),
        ], iterations=4, jitter=0.04),
        _kernel("spmv", "parboil", [
            divergent_phase("row-gather", 26 * _K, warps=30, divergence=0.45),
            memory_phase("accumulate", 16 * _K, warps=30, l1_miss=0.75,
                         l2_miss=0.72),
        ], iterations=8, jitter=0.12),
        _kernel("stencil", "parboil", [
            memory_phase("halo-load", 20 * _K, warps=44, l1_miss=0.5),
            balanced_phase("kernel", 38 * _K, warps=44),
        ], iterations=7, jitter=0.06),
        _kernel("histo", "parboil", [
            memory_phase("bin-scatter", 30 * _K, warps=32, l1_miss=0.6,
                         divergence=0.3),
            divergent_phase("merge", 10 * _K, warps=20, divergence=0.4),
        ], iterations=8, jitter=0.1),
        _kernel("mriq", "parboil", [sfu_heavy], iterations=5, jitter=0.04),
        _kernel("cutcp", "parboil", [
            compute_phase("lattice", 70 * _K, warps=52, cpi=1.5),
            balanced_phase("bin-walk", 20 * _K, warps=40),
        ], iterations=4, jitter=0.06),
        _kernel("lbm", "parboil", [
            memory_phase("collide-stream", 58 * _K, warps=48, l1_miss=0.78,
                         l2_miss=0.75),
        ], iterations=6, jitter=0.05),
        _kernel("sad", "parboil", [
            balanced_phase("block-search", 42 * _K, warps=44, divergence=0.15),
            compute_phase("reduce", 12 * _K, warps=36, cpi=1.9),
        ], iterations=6, jitter=0.07),
    ]


def _polybench() -> list[KernelProfile]:
    return [
        _kernel("2mm", "polybench", [
            compute_phase("mm1", 58 * _K, warps=52, cpi=1.5),
            compute_phase("mm2", 58 * _K, warps=52, cpi=1.5),
        ], iterations=3, jitter=0.04),
        _kernel("3mm", "polybench", [
            compute_phase("mm1", 44 * _K, warps=52, cpi=1.5),
            compute_phase("mm2", 44 * _K, warps=52, cpi=1.5),
            compute_phase("mm3", 44 * _K, warps=52, cpi=1.5),
        ], iterations=3, jitter=0.04),
        _kernel("atax", "polybench", [
            memory_phase("ax", 26 * _K, warps=40, l1_miss=0.66),
            memory_phase("aty", 26 * _K, warps=40, l1_miss=0.66),
        ], iterations=6, jitter=0.06),
        _kernel("bicg", "polybench", [
            memory_phase("q-update", 24 * _K, warps=40, l1_miss=0.64),
            memory_phase("s-update", 24 * _K, warps=40, l1_miss=0.64),
        ], iterations=6, jitter=0.06),
        _kernel("mvt", "polybench", [
            memory_phase("x1", 30 * _K, warps=44, l1_miss=0.6),
            memory_phase("x2", 30 * _K, warps=44, l1_miss=0.6),
        ], iterations=5, jitter=0.05),
        _kernel("gemm", "polybench", [
            compute_phase("mac", 96 * _K, warps=56, cpi=1.4, divergence=0.02),
        ], iterations=4, jitter=0.03),
        _kernel("gesummv", "polybench", [
            memory_phase("summv", 42 * _K, warps=44, l1_miss=0.7, l2_miss=0.68),
        ], iterations=7, jitter=0.05),
        _kernel("correlation", "polybench", [
            memory_phase("mean-load", 18 * _K, warps=40, l1_miss=0.55),
            compute_phase("corr", 40 * _K, warps=44, cpi=1.7),
            balanced_phase("normalize", 16 * _K, warps=40),
        ], iterations=5, jitter=0.07),
        _kernel("syrk", "polybench", [
            compute_phase("rank-update", 72 * _K, warps=52, cpi=1.5),
        ], iterations=4, jitter=0.04),
        _kernel("fdtd2d", "polybench", [
            memory_phase("ey-update", 22 * _K, warps=44, l1_miss=0.58),
            memory_phase("ex-update", 22 * _K, warps=44, l1_miss=0.58),
            balanced_phase("hz-update", 24 * _K, warps=44),
        ], iterations=5, jitter=0.06),
    ]


def full_suite() -> list[KernelProfile]:
    """All modelled benchmarks (28 kernels across the three suites)."""
    return _rodinia() + _parboil() + _polybench()


#: Kernels used to build the training dataset (§III-A: "over 20
#: benchmarks").  The remaining kernels are reserved for evaluation.
TRAINING_KERNEL_NAMES: tuple[str, ...] = (
    "rodinia.hotspot", "rodinia.kmeans", "rodinia.lud", "rodinia.srad",
    "rodinia.backprop", "rodinia.pathfinder", "rodinia.streamcluster",
    "parboil.sgemm", "parboil.stencil", "parboil.histo", "parboil.lbm",
    "parboil.sad",
    "polybench.2mm", "polybench.atax", "polybench.mvt", "polybench.gemm",
    "polybench.correlation", "polybench.fdtd2d",
)

#: Kernels used for full-system evaluation (§V.A).  10 of 14 are unseen
#: during training, satisfying the "> 50 % not in the training set" rule.
EVALUATION_KERNEL_NAMES: tuple[str, ...] = (
    # unseen during training (10):
    "rodinia.bfs", "rodinia.nw", "rodinia.gaussian",
    "parboil.spmv", "parboil.mriq", "parboil.cutcp",
    "polybench.3mm", "polybench.bicg", "polybench.gesummv",
    "polybench.syrk",
    # seen during training (4):
    "rodinia.hotspot", "parboil.sgemm", "polybench.atax",
    "polybench.correlation",
)


def kernel_by_name(name: str) -> KernelProfile:
    """Look up a kernel profile by its full ``suite.name``."""
    for kernel in full_suite():
        if kernel.name == name:
            return kernel
    raise WorkloadError(f"unknown kernel {name!r}")


def training_suite() -> list[KernelProfile]:
    """Kernels the dataset is generated from."""
    return [kernel_by_name(name) for name in TRAINING_KERNEL_NAMES]


def evaluation_suite() -> list[KernelProfile]:
    """Kernels the full-system comparison runs on."""
    return [kernel_by_name(name) for name in EVALUATION_KERNEL_NAMES]


def unseen_fraction() -> float:
    """Fraction of evaluation kernels absent from the training set."""
    seen = set(TRAINING_KERNEL_NAMES)
    unseen = [n for n in EVALUATION_KERNEL_NAMES if n not in seen]
    return len(unseen) / len(EVALUATION_KERNEL_NAMES)


def estimate_default_duration(kernel: KernelProfile,
                              arch: GPUArchConfig) -> float:
    """Noiseless estimate of the kernel's runtime at the default V/f."""
    frequency = arch.default_frequency_hz
    total = 0.0
    for phase in kernel.phases:
        solution = solve_throughput(arch, phase, frequency)
        total += solution.time_for_instructions(phase.instructions)
    return total * kernel.iterations


def scale_kernel_to_duration(kernel: KernelProfile, arch: GPUArchConfig,
                             duration_s: float) -> KernelProfile:
    """Rescale a kernel's iteration count toward a target duration.

    Used to build the ~0.0003 s evaluation programs of §V.A ("we limit
    the execution time of programs to approximately 0.0003 s").
    """
    if duration_s <= 0:
        raise WorkloadError("target duration must be positive")
    one_iteration = estimate_default_duration(kernel.with_iterations(1), arch)
    iterations = max(1, round(duration_s / one_iteration))
    return kernel.with_iterations(iterations)
