"""Supervised data-generation pipeline (§III-A) and feature selection."""

from .cache import (cached_dataset, content_key, dataset_cache_key,
                    kernel_suite_fingerprint)
from .dataset import DEFAULT_PRESET_GRID, DVFSDataset, PreparedData
from .stats import DatasetReport, KernelLossStats, analyze_dataset
from .features import FeatureExtractor, FeatureScaler, epoch_cycles
from .protocol import (BreakpointSamples, ProtocolConfig, collect_breakpoint,
                       generate_chunks_for_suite, generate_for_kernel,
                       generate_for_suite)
from .rfe import (DEFAULT_ALWAYS_KEEP, RFEResult, RFERound, RFESelector)

__all__ = [
    "cached_dataset", "content_key", "dataset_cache_key",
    "kernel_suite_fingerprint",
    "DEFAULT_PRESET_GRID", "DVFSDataset", "PreparedData",
    "DatasetReport", "KernelLossStats", "analyze_dataset",
    "FeatureExtractor", "FeatureScaler", "epoch_cycles",
    "BreakpointSamples", "ProtocolConfig", "collect_breakpoint",
    "generate_chunks_for_suite", "generate_for_kernel", "generate_for_suite",
    "DEFAULT_ALWAYS_KEEP", "RFEResult", "RFERound", "RFESelector",
]
