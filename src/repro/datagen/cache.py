"""Content-addressed on-disk caching for campaign artefacts.

Data generation is the expensive offline stage (it simulates every
training kernel seven times per breakpoint), so examples, tests and
benchmarks share generated datasets through an on-disk cache keyed by
the generation parameters.  The key scheme is content-addressed: a
SHA-256 over the canonical JSON of everything that determines the
artefact — the :class:`ProtocolConfig` knobs, the architecture, the
kernel-suite fingerprint and the seed — so repeat invocations from the
CLI, ``examples/full_pipeline.py`` and the benchmarks hit disk instead
of re-simulating, while any parameter change lands on a fresh key.

The same helpers back the evaluation-grid cache in
:mod:`repro.evaluation.cache`.

Cache files are written through :func:`repro.store.atomic_write_bytes`
(temp + fsync + rename): a crash mid-save leaves the previous artefact
or the new one, never a truncated archive.  A corrupt file is still
tolerated on read — counted and regenerated — because the cache
predates the atomic writer and disks rot.
"""

from __future__ import annotations

import hashlib
import json
import logging
from pathlib import Path

from ..gpu.arch import GPUArchConfig
from ..gpu.kernels import KernelProfile
from ..parallel import CampaignCheckpoint, CampaignStats
from ..power.model import PowerModel
from .dataset import DVFSDataset
from .protocol import ProtocolConfig, generate_chunks_for_suite

logger = logging.getLogger(__name__)


def content_key(payload: dict) -> str:
    """SHA-256 fingerprint of a canonical-JSON payload (16 hex chars)."""
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def kernel_suite_fingerprint(kernels: list[KernelProfile]) -> dict:
    """The parts of a kernel suite that determine simulation output."""
    return {
        "kernels": sorted(k.name for k in kernels),
        "iterations": {k.name: k.iterations for k in kernels},
        "instructions": {k.name: k.total_instructions for k in kernels},
    }


def dataset_cache_key(kernels: list[KernelProfile], arch: GPUArchConfig,
                      config: ProtocolConfig) -> str:
    """Stable fingerprint of a generation request."""
    return content_key({
        **kernel_suite_fingerprint(kernels),
        "arch": arch.name,
        "clusters": arch.num_clusters,
        "epoch_s": config.epoch_s,
        "segment_epochs": config.segment_epochs,
        "max_breakpoints": config.max_breakpoints_per_kernel,
        "augment": config.augment_feature_levels,
        "seed": config.seed,
    })


def cached_dataset(cache_dir: str | Path, kernels: list[KernelProfile],
                   arch: GPUArchConfig,
                   config: ProtocolConfig | None = None,
                   power_model: PowerModel | None = None, *,
                   workers: int | None = None,
                   stats: CampaignStats | None = None,
                   use_cache: bool = True, checkpoint: bool = False,
                   retries: int = 2,
                   timeout_s: float | None = None,
                   fused: bool = False,
                   fuse_width: int = 8) -> DVFSDataset:
    """Load the dataset from cache, generating (and caching) on miss.

    ``workers`` fans generation and assembly out over a process pool;
    ``stats`` records stage timings and the ``dataset_cache_hit`` /
    ``dataset_cache_miss`` counters.  With ``use_cache=False`` any
    cached artefact is ignored and regenerated (the fresh result still
    refreshes the cache file).  A corrupt or truncated cache file is a
    cache *miss* (counted in ``dataset_cache_corrupt``), never a crash.
    ``checkpoint=True`` persists per-kernel progress next to the cache
    file (``dvfs-<key>.ckpt``) so an interrupted generation campaign
    resumes; ``retries``/``timeout_s`` tune the resilient fan-out.

    ``fused``/``fuse_width`` run generation through the fused grouping
    path (bit-identical output, shared solve caches — see
    :func:`repro.datagen.protocol.generate_chunks_for_suite`).  The
    dataset artefact is shared between fused and serial runs; the
    checkpoint is namespaced per fused configuration because fused
    checkpoints store per-group, not per-kernel, results.
    """
    config = config or ProtocolConfig()
    stats = stats if stats is not None else CampaignStats()
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    key = dataset_cache_key(kernels, arch, config)
    path = cache_dir / f"dvfs-{key}.npz"
    if use_cache and path.exists():
        try:
            with stats.stage("dataset_load", tasks=1):
                dataset = DVFSDataset.load(path)
        except Exception:
            # A truncated write or bit-rot must cost a regeneration,
            # not the campaign; the fresh save below overwrites it.
            logger.warning("corrupt dataset cache %s; regenerating",
                           path, exc_info=True)
            stats.count("dataset_cache_corrupt")
        else:
            stats.count("dataset_cache_hit")
            return dataset
    stats.count("dataset_cache_miss")
    ckpt_suffix = f".fused{fuse_width}" if fused else ""
    ckpt = (CampaignCheckpoint(cache_dir / f"dvfs-{key}{ckpt_suffix}.ckpt",
                               key=f"{key}{ckpt_suffix}")
            if checkpoint else None)
    chunks = generate_chunks_for_suite(kernels, arch, power_model, config,
                                       workers=workers, stats=stats,
                                       checkpoint=ckpt, retries=retries,
                                       timeout_s=timeout_s, fused=fused,
                                       fuse_width=fuse_width)
    dataset = DVFSDataset.from_breakpoint_chunks(chunks, workers=workers,
                                                 stats=stats)
    with stats.stage("dataset_save", tasks=1):
        dataset.save(path)
    return dataset
