"""Content-addressed on-disk caching for campaign artefacts.

Data generation is the expensive offline stage (it simulates every
training kernel seven times per breakpoint), so examples, tests and
benchmarks share generated datasets through an on-disk cache keyed by
the generation parameters.  The key scheme is content-addressed: a
SHA-256 over the canonical JSON of everything that determines the
artefact — the :class:`ProtocolConfig` knobs, the architecture, the
kernel-suite fingerprint and the seed — so repeat invocations from the
CLI, ``examples/full_pipeline.py`` and the benchmarks hit disk instead
of re-simulating, while any parameter change lands on a fresh key.

The same helpers back the evaluation-grid cache in
:mod:`repro.evaluation.cache`.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from ..gpu.arch import GPUArchConfig
from ..gpu.kernels import KernelProfile
from ..parallel import CampaignStats
from ..power.model import PowerModel
from .dataset import DVFSDataset
from .protocol import ProtocolConfig, generate_chunks_for_suite


def content_key(payload: dict) -> str:
    """SHA-256 fingerprint of a canonical-JSON payload (16 hex chars)."""
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def kernel_suite_fingerprint(kernels: list[KernelProfile]) -> dict:
    """The parts of a kernel suite that determine simulation output."""
    return {
        "kernels": sorted(k.name for k in kernels),
        "iterations": {k.name: k.iterations for k in kernels},
        "instructions": {k.name: k.total_instructions for k in kernels},
    }


def dataset_cache_key(kernels: list[KernelProfile], arch: GPUArchConfig,
                      config: ProtocolConfig) -> str:
    """Stable fingerprint of a generation request."""
    return content_key({
        **kernel_suite_fingerprint(kernels),
        "arch": arch.name,
        "clusters": arch.num_clusters,
        "epoch_s": config.epoch_s,
        "segment_epochs": config.segment_epochs,
        "max_breakpoints": config.max_breakpoints_per_kernel,
        "augment": config.augment_feature_levels,
        "seed": config.seed,
    })


def cached_dataset(cache_dir: str | Path, kernels: list[KernelProfile],
                   arch: GPUArchConfig,
                   config: ProtocolConfig | None = None,
                   power_model: PowerModel | None = None, *,
                   workers: int | None = None,
                   stats: CampaignStats | None = None,
                   use_cache: bool = True) -> DVFSDataset:
    """Load the dataset from cache, generating (and caching) on miss.

    ``workers`` fans generation and assembly out over a process pool;
    ``stats`` records stage timings and the ``dataset_cache_hit`` /
    ``dataset_cache_miss`` counters.  With ``use_cache=False`` any
    cached artefact is ignored and regenerated (the fresh result still
    refreshes the cache file).
    """
    config = config or ProtocolConfig()
    stats = stats if stats is not None else CampaignStats()
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / f"dvfs-{dataset_cache_key(kernels, arch, config)}.npz"
    if use_cache and path.exists():
        stats.count("dataset_cache_hit")
        with stats.stage("dataset_load", tasks=1):
            return DVFSDataset.load(path)
    stats.count("dataset_cache_miss")
    chunks = generate_chunks_for_suite(kernels, arch, power_model, config,
                                       workers=workers, stats=stats)
    dataset = DVFSDataset.from_breakpoint_chunks(chunks, workers=workers,
                                                 stats=stats)
    with stats.stage("dataset_save", tasks=1):
        dataset.save(path)
    return dataset
