"""Dataset caching.

Data generation is the expensive offline stage (it simulates every
training kernel seven times per breakpoint), so examples, tests and
benchmarks share generated datasets through an on-disk cache keyed by
the generation parameters.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from ..gpu.arch import GPUArchConfig
from ..gpu.kernels import KernelProfile
from ..power.model import PowerModel
from .dataset import DVFSDataset
from .protocol import ProtocolConfig, generate_for_suite


def dataset_cache_key(kernels: list[KernelProfile], arch: GPUArchConfig,
                      config: ProtocolConfig) -> str:
    """Stable fingerprint of a generation request."""
    payload = json.dumps({
        "kernels": sorted(k.name for k in kernels),
        "iterations": {k.name: k.iterations for k in kernels},
        "instructions": {k.name: k.total_instructions for k in kernels},
        "arch": arch.name,
        "clusters": arch.num_clusters,
        "epoch_s": config.epoch_s,
        "segment_epochs": config.segment_epochs,
        "max_breakpoints": config.max_breakpoints_per_kernel,
        "augment": config.augment_feature_levels,
        "seed": config.seed,
    }, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def cached_dataset(cache_dir: str | Path, kernels: list[KernelProfile],
                   arch: GPUArchConfig,
                   config: ProtocolConfig | None = None,
                   power_model: PowerModel | None = None) -> DVFSDataset:
    """Load the dataset from cache, generating (and caching) on miss."""
    config = config or ProtocolConfig()
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / f"dvfs-{dataset_cache_key(kernels, arch, config)}.npz"
    if path.exists():
        return DVFSDataset.load(path)
    breakpoints = generate_for_suite(kernels, arch, power_model, config)
    dataset = DVFSDataset.from_breakpoints(breakpoints)
    dataset.save(path)
    return dataset
