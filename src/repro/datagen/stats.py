"""Dataset statistics and diagnostics.

Summaries the offline pipeline (and its operator) actually looks at:
per-kernel loss spreads, the oracle level distribution per preset, and
counter/label correlations — the "is this dataset learnable?" report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..gpu.counters import COUNTER_NAMES
from .dataset import DEFAULT_PRESET_GRID, DVFSDataset


@dataclass(frozen=True)
class KernelLossStats:
    """Loss-label statistics for one kernel."""

    kernel: str
    num_records: int
    min_level_loss_mean: float
    min_level_loss_max: float
    oracle_levels_at_10pct: dict[int, int]

    @property
    def frequency_sensitive(self) -> bool:
        """True when the slowest point costs real time on this kernel."""
        return self.min_level_loss_mean > 0.05


@dataclass
class DatasetReport:
    """Full dataset diagnostic."""

    num_groups: int
    num_records: int
    num_samples: int
    loss_min: float
    loss_max: float
    per_kernel: list[KernelLossStats]
    label_entropy_bits: float
    counter_label_correlation: dict[str, float]

    def render(self) -> str:
        """Human-readable report."""
        from ..evaluation.reporting import format_table
        rows = [[s.kernel, s.num_records,
                 round(s.min_level_loss_mean, 3),
                 round(s.min_level_loss_max, 3),
                 "yes" if s.frequency_sensitive else "no"]
                for s in self.per_kernel]
        table = format_table(
            ["Kernel", "records", "mean loss@min-V/f", "max loss@min-V/f",
             "freq-sensitive"],
            rows, title="Dataset diagnostics")
        top = sorted(self.counter_label_correlation.items(),
                     key=lambda kv: -abs(kv[1]))[:8]
        corr = ", ".join(f"{name}={value:+.2f}" for name, value in top)
        return (f"{table}\n"
                f"groups={self.num_groups} records={self.num_records} "
                f"samples={self.num_samples} "
                f"loss range=[{self.loss_min:.3f}, {self.loss_max:.3f}] "
                f"label entropy={self.label_entropy_bits:.2f} bits\n"
                f"top |corr(counter, min-level loss)|: {corr}")


def _label_entropy_bits(labels: np.ndarray) -> float:
    values, counts = np.unique(labels, return_counts=True)
    probabilities = counts / counts.sum()
    return float(-(probabilities * np.log2(probabilities)).sum())


def analyze_dataset(dataset: DVFSDataset,
                    preset: float = 0.10) -> DatasetReport:
    """Compute the full diagnostic report for a dataset."""
    if not 0.0 <= preset <= 1.0:
        raise DatasetError("preset must be in [0, 1]")
    min_level_losses: dict[str, list[float]] = {}
    oracle_hist: dict[str, dict[int, int]] = {}
    record_counts: dict[str, int] = {}
    for record in range(dataset.num_breakpoints):
        kernel = dataset.kernel_names[record]
        record_counts[kernel] = record_counts.get(kernel, 0) + 1
        mask = dataset.sample_breakpoint == record
        levels = dataset.sample_level[mask]
        losses = dataset.sample_loss[mask]
        if levels.size == 0:
            continue
        min_level_losses.setdefault(kernel, []).append(
            float(losses[np.argmin(levels)]))
        oracle = dataset.minimal_level_for_record(record, preset)
        oracle_hist.setdefault(kernel, {})
        oracle_hist[kernel][oracle] = oracle_hist[kernel].get(oracle, 0) + 1

    per_kernel = []
    for kernel in sorted(record_counts):
        losses = min_level_losses.get(kernel, [0.0])
        per_kernel.append(KernelLossStats(
            kernel=kernel,
            num_records=record_counts[kernel],
            min_level_loss_mean=float(np.mean(losses)),
            min_level_loss_max=float(np.max(losses)),
            oracle_levels_at_10pct=oracle_hist.get(kernel, {}),
        ))

    # Oracle labels over the default preset grid -> entropy (how much
    # there is to learn) and per-counter correlation with the min-level
    # loss (which counters carry the signal).
    oracle_labels = np.array([
        dataset.minimal_level_for_record(record, p)
        for record in range(dataset.num_breakpoints)
        for p in DEFAULT_PRESET_GRID
    ])
    min_loss_per_record = np.zeros(dataset.num_breakpoints)
    for record in range(dataset.num_breakpoints):
        mask = dataset.sample_breakpoint == record
        levels = dataset.sample_level[mask]
        min_loss_per_record[record] = dataset.sample_loss[mask][
            np.argmin(levels)]
    correlations = {}
    for index, name in enumerate(COUNTER_NAMES):
        column = dataset.counters[:, index]
        if np.std(column) < 1e-12 or np.std(min_loss_per_record) < 1e-12:
            correlations[name] = 0.0
        else:
            correlations[name] = float(np.corrcoef(
                column, min_loss_per_record)[0, 1])

    return DatasetReport(
        num_groups=dataset.num_groups,
        num_records=dataset.num_breakpoints,
        num_samples=dataset.num_samples,
        loss_min=float(dataset.sample_loss.min()),
        loss_max=float(dataset.sample_loss.max()),
        per_kernel=per_kernel,
        label_entropy_bits=_label_entropy_bits(oracle_labels),
        counter_label_correlation=correlations,
    )
