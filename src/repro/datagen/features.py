"""Feature extraction from raw performance counters.

Raw counters are per-epoch magnitudes whose scale depends on how long
the epoch ran in cycles.  For learning we normalise count-like counters
to *per-kilocycle* rates, leaving rates/fractions, latencies and power
untouched — the same normalisation a hardware implementation would do
with a shift, since epochs have a fixed cycle budget per frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..errors import DatasetError
from ..gpu.counters import COUNTER_INDEX, COUNTER_SCHEMA, CounterSet

#: Counters that are raw counts (normalised per kilocycle).
_COUNT_COUNTERS = frozenset({
    "inst_total", "inst_fp32", "inst_fp64", "inst_int", "inst_sfu",
    "inst_load", "inst_store", "inst_shared", "inst_branch", "inst_sync",
    "issue_slots", "stall_total", "stall_mem_hazard",
    "stall_mem_hazard_load", "stall_mem_hazard_nonload", "stall_control",
    "stall_sync", "stall_data", "stall_idle", "l1_read_access",
    "l1_read_hit", "l1_read_miss", "l1_write_access", "l1_write_miss",
    "l2_access", "l2_miss",
})

#: Counters measured in bytes (normalised per kilocycle as well).
_BYTE_COUNTERS = frozenset({"dram_bytes"})

#: Counters that are already rates / ratios / physical quantities.
_PASSTHROUGH_COUNTERS = frozenset(COUNTER_SCHEMA) - _COUNT_COUNTERS - _BYTE_COUNTERS


def epoch_cycles(counters: CounterSet, issue_width: float) -> float:
    """Recover the epoch's core-cycle count from the issue-slot counter."""
    if issue_width <= 0:
        raise DatasetError("issue_width must be positive")
    return counters["issue_slots"] / issue_width


_ISSUE_SLOT_INDEX = COUNTER_INDEX["issue_slots"]


@lru_cache(maxsize=64)
def _extraction_plan(names: tuple[str, ...]) -> tuple[np.ndarray, np.ndarray]:
    """(counter-vector column indices, per-kilocycle mask) for ``names``.

    Memoised per name tuple so repeated extraction — one call per epoch
    per cluster at runtime — gathers columns instead of looping names.
    """
    indices = np.array([COUNTER_INDEX[name] for name in names])
    normalise = np.array([name in _COUNT_COUNTERS or name in _BYTE_COUNTERS
                          for name in names])
    return indices, normalise


@dataclass(frozen=True)
class FeatureExtractor:
    """Maps a :class:`CounterSet` onto a normalised feature vector.

    Parameters
    ----------
    names:
        Counter names, in feature order.
    issue_width:
        The architecture's issue width (needed to recover cycles).
    """

    names: tuple[str, ...]
    issue_width: float = 4.0

    def __post_init__(self) -> None:
        if not self.names:
            raise DatasetError("feature extractor needs at least one counter")
        unknown = set(self.names) - set(COUNTER_SCHEMA)
        if unknown:
            raise DatasetError(f"unknown counters: {sorted(unknown)}")
        if self.issue_width <= 0:
            raise DatasetError("issue_width must be positive")

    @property
    def width(self) -> int:
        """Feature-vector width."""
        return len(self.names)

    def extract(self, counters: CounterSet) -> np.ndarray:
        """Normalised feature vector for one epoch's counters."""
        indices, normalise = _extraction_plan(self.names)
        raw = counters.as_vector()
        cycles = max(1.0, raw[_ISSUE_SLOT_INDEX] / self.issue_width)
        kilocycles = cycles / 1000.0
        values = raw[indices]
        values[normalise] /= kilocycles
        return values

    def extract_matrix(self, counter_sets: list[CounterSet],
                       out: np.ndarray | None = None) -> np.ndarray:
        """Feature vectors for many epochs as one (n, width) matrix.

        One gather + one masked column division over the stacked
        counter vectors; ``out`` (when given) receives the result in
        place so callers can reuse a preallocated buffer.
        """
        if not counter_sets:
            raise DatasetError("no counter sets to extract")
        indices, normalise = _extraction_plan(self.names)
        matrix = CounterSet.stack(counter_sets)
        cycles = np.maximum(1.0, matrix[:, _ISSUE_SLOT_INDEX]
                            / self.issue_width)
        kilocycles = cycles / 1000.0
        values = matrix[:, indices]
        values[:, normalise] /= kilocycles[:, None]
        if out is not None:
            out[:] = values
            return out
        return values


class FeatureScaler:
    """Z-score standardisation fitted on training data.

    The runtime controller applies the same transform to live counters,
    so the scaler is part of the deployed model artefact.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self.mean_ is not None

    def fit(self, matrix: np.ndarray) -> "FeatureScaler":
        """Fit means and stds column-wise; returns self."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise DatasetError("scaler needs a non-empty 2-D matrix")
        self.mean_ = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        # Constant columns carry no signal; avoid division blow-ups.
        self.std_ = np.where(std < 1e-12, 1.0, std)
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Standardise a matrix or a single row vector."""
        if not self.fitted:
            raise DatasetError("scaler used before fit")
        matrix = np.asarray(matrix, dtype=np.float64)
        single = matrix.ndim == 1
        if single:
            matrix = matrix[None, :]
        if matrix.shape[1] != self.mean_.shape[0]:
            raise DatasetError(
                f"scaler fitted on width {self.mean_.shape[0]}, "
                f"got {matrix.shape[1]}"
            )
        out = (matrix - self.mean_) / self.std_
        return out[0] if single else out

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(matrix).transform(matrix)

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Serialise for checkpointing."""
        if not self.fitted:
            raise DatasetError("cannot serialise an unfitted scaler")
        return {"mean": self.mean_, "std": self.std_}

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "FeatureScaler":
        """Rebuild a scaler serialised with :meth:`to_arrays`."""
        scaler = cls()
        try:
            scaler.mean_ = np.asarray(arrays["mean"], dtype=np.float64)
            scaler.std_ = np.asarray(arrays["std"], dtype=np.float64)
        except KeyError as exc:
            raise DatasetError(f"missing scaler array: {exc}") from exc
        return scaler
