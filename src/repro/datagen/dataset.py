"""Dataset container for the supervised DVFS task.

Each breakpoint contributes one raw 47-counter record (from its feature
collection window) and six labelled samples — one per operating point —
carrying the measured performance loss and the scaling-window
instruction count (§III-C):

* **Decision-maker** sample — two labelings are supported:

  - ``minimal`` (default): ``x = [features..., preset]`` for presets
    drawn from a grid, ``y = minimum level whose measured loss stays
    within the preset``.  This operationalises the paper's stated
    classification criterion ("select the minimum frequency that
    satisfies a given performance loss preset", §II) and stays
    well-defined on frequency-insensitive phases where every level
    satisfies any preset.
  - ``applied``: ``x = [features..., measured_loss]``, ``y = level``
    applied in the scaling window — the literal §III-C description.
    On insensitive phases this gives identical inputs with six
    different labels, capping achievable accuracy.
* **Calibrator** sample: ``x = [features..., level]``,
  ``y = throughput ratio`` — scaling-window instructions divided by the
  feature window's instruction count.  Predicting the *ratio* rather
  than the absolute count makes the target scale-free across kernels;
  the runtime multiplies the predicted ratio by the instruction count
  it just measured to recover the absolute prediction the paper's
  calibration step compares against.

  The paper additionally feeds the Decision-maker's loss input to the
  Calibrator (§III-C), trained with the *measured* loss but run with
  the *preset*.  That train/serve mismatch is out-of-distribution
  whenever a phase's real loss sits far from the preset (every
  memory-bound phase under a 10-20 % preset) and corrupts the
  prediction, so this reproduction drops the redundant input —
  (features, level) already determine the throughput ratio.

Splits are grouped **by breakpoint**: the six samples of a breakpoint
share the same feature vector, so splitting sample-wise would leak test
features into training.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import DatasetError
from ..gpu.counters import COUNTER_NAMES, CounterSet
from ..nn.compress import SplitData
from ..parallel import CampaignStats, parallel_map
from ..store import atomic_write_bytes
from .features import FeatureExtractor, FeatureScaler
from .protocol import BreakpointSamples

#: Index of the raw ``inst_total`` counter in the canonical vector order.
_INST_TOTAL_INDEX = COUNTER_NAMES.index("inst_total")

#: Preset grid used to synthesise decision samples under the
#: ``minimal`` labeling (fractions of allowed performance loss).
DEFAULT_PRESET_GRID = (0.02, 0.05, 0.08, 0.12, 0.16, 0.20, 0.25, 0.30)


def _assemble_chunk(chunk: list[BreakpointSamples]) -> "DVFSDataset":
    """Process-pool unit of dataset assembly (module-level: picklable)."""
    return DVFSDataset.from_breakpoints(chunk)


@dataclass
class PreparedData:
    """Standardised train/test splits plus the deployment artefacts."""

    decision: SplitData
    calibrator: SplitData
    decision_scaler: FeatureScaler
    calibrator_scaler: FeatureScaler
    feature_names: tuple[str, ...]
    num_levels: int


class DVFSDataset:
    """Flat arrays over all breakpoints of a generation run."""

    def __init__(self, counters: np.ndarray, kernel_names: list[str],
                 sample_breakpoint: np.ndarray, sample_level: np.ndarray,
                 sample_loss: np.ndarray,
                 sample_instructions: np.ndarray,
                 record_group: np.ndarray | None = None) -> None:
        counters = np.asarray(counters, dtype=np.float64)
        if counters.ndim != 2 or counters.shape[1] != len(COUNTER_NAMES):
            raise DatasetError(
                f"counters must be (n, {len(COUNTER_NAMES)}), got {counters.shape}"
            )
        if counters.shape[0] != len(kernel_names):
            raise DatasetError("kernel-name count mismatch")
        n_samples = sample_breakpoint.shape[0]
        for name, array in (("level", sample_level), ("loss", sample_loss),
                            ("instructions", sample_instructions)):
            if array.shape[0] != n_samples:
                raise DatasetError(f"sample_{name} length mismatch")
        if n_samples == 0:
            raise DatasetError("dataset has no samples")
        if sample_breakpoint.max() >= counters.shape[0]:
            raise DatasetError("sample references missing breakpoint")
        self.counters = counters
        self.kernel_names = list(kernel_names)
        self.sample_breakpoint = np.asarray(sample_breakpoint, dtype=np.int64)
        self.sample_level = np.asarray(sample_level, dtype=np.int64)
        self.sample_loss = np.asarray(sample_loss, dtype=np.float64)
        self.sample_instructions = np.asarray(sample_instructions,
                                              dtype=np.float64)
        # Feature-level augmentation makes several counter records share
        # one *physical* breakpoint (and its labels); splits must group
        # by physical breakpoint or test labels leak into training.
        if record_group is None:
            record_group = np.arange(counters.shape[0])
        record_group = np.asarray(record_group, dtype=np.int64)
        if record_group.shape[0] != counters.shape[0]:
            raise DatasetError("record_group length mismatch")
        self.record_group = record_group

    # ------------------------------------------------------------------
    @classmethod
    def from_breakpoints(cls, breakpoints: list[BreakpointSamples]
                         ) -> "DVFSDataset":
        """Flatten protocol output into a dataset.

        Assembly is a two-pass stream: a counting pass sizes the final
        arrays, then rows are written straight into the preallocated
        buffers.  Large generation campaigns used to build Python lists
        of per-row vectors and ``np.stack`` them at the end — peak
        memory of roughly twice the dataset plus one object header per
        row; streaming keeps exactly one copy.  Values and dtypes are
        identical to the list-based assembly (float64 counter rows,
        int64 indices), so cached artefacts and merge offsets are
        unaffected.
        """
        if not breakpoints:
            raise DatasetError("no breakpoints supplied")
        num_rows = 0
        num_samples = 0
        for bp in breakpoints:
            variants = len(bp.feature_variants) or 1
            num_rows += variants
            num_samples += variants * len(bp.levels)
        counters = np.empty((num_rows, len(COUNTER_NAMES)), dtype=np.float64)
        groups = np.empty(num_rows, dtype=np.int64)
        kernel_names: list[str] = []
        sample_bp = np.empty(num_samples, dtype=np.int64)
        levels = np.empty(num_samples, dtype=np.int64)
        losses = np.empty(num_samples, dtype=np.float64)
        instrs = np.empty(num_samples, dtype=np.float64)
        row = sample = 0
        for group, bp in enumerate(breakpoints):
            bp_variants = bp.feature_variants or [
                (max(bp.levels), bp.feature_counters)]
            n = len(bp.levels)
            for _, counter_set in bp_variants:
                counters[row] = counter_set.as_vector()
                kernel_names.append(bp.kernel_name)
                groups[row] = group
                sample_bp[sample:sample + n] = row
                levels[sample:sample + n] = bp.levels
                losses[sample:sample + n] = bp.losses
                instrs[sample:sample + n] = bp.window_instructions
                sample += n
                row += 1
        return cls(counters, kernel_names, sample_bp, levels, losses, instrs,
                   record_group=groups)

    @classmethod
    def merge(cls, datasets: list["DVFSDataset"]) -> "DVFSDataset":
        """Concatenate per-chunk datasets into one.

        Record indices and split groups are offset per chunk, so merging
        the per-kernel datasets of a parallel campaign reproduces the
        arrays :meth:`from_breakpoints` builds over the flattened
        breakpoint list bit for bit.
        """
        if not datasets:
            raise DatasetError("no datasets to merge")
        if len(datasets) == 1:
            return datasets[0]
        counters, names = [], []
        sample_bp, levels, losses, instrs, groups = [], [], [], [], []
        row_offset = group_offset = 0
        for dataset in datasets:
            counters.append(dataset.counters)
            names.extend(dataset.kernel_names)
            sample_bp.append(dataset.sample_breakpoint + row_offset)
            levels.append(dataset.sample_level)
            losses.append(dataset.sample_loss)
            instrs.append(dataset.sample_instructions)
            groups.append(dataset.record_group + group_offset)
            row_offset += dataset.counters.shape[0]
            group_offset += int(dataset.record_group.max()) + 1
        return cls(np.concatenate(counters), names,
                   np.concatenate(sample_bp), np.concatenate(levels),
                   np.concatenate(losses), np.concatenate(instrs),
                   record_group=np.concatenate(groups))

    @classmethod
    def from_breakpoint_chunks(cls, chunks: list[list[BreakpointSamples]],
                               workers: int | None = None,
                               stats: CampaignStats | None = None
                               ) -> "DVFSDataset":
        """Assemble per-kernel breakpoint chunks into one dataset.

        Each non-empty chunk is flattened independently (fanned out over
        ``workers``) and the partial datasets merged, which equals
        :meth:`from_breakpoints` over the concatenated chunks.
        """
        chunks = [list(chunk) for chunk in chunks if chunk]
        if not chunks:
            raise DatasetError("no breakpoints supplied")
        datasets = parallel_map(_assemble_chunk, chunks, workers=workers,
                                stats=stats, stage="assemble")
        return cls.merge(datasets)

    @property
    def num_breakpoints(self) -> int:
        """Number of feature records (one per breakpoint x window level)."""
        return self.counters.shape[0]

    @property
    def num_groups(self) -> int:
        """Number of physical breakpoints (split groups)."""
        return int(np.unique(self.record_group).size)

    @property
    def num_samples(self) -> int:
        """Number of labelled (level, loss) samples."""
        return self.sample_breakpoint.shape[0]

    @property
    def num_levels(self) -> int:
        """Number of distinct V/f levels present."""
        return int(self.sample_level.max()) + 1

    def counter_set(self, breakpoint_index: int) -> CounterSet:
        """Rebuild the CounterSet of one breakpoint."""
        if not 0 <= breakpoint_index < self.num_breakpoints:
            raise DatasetError("breakpoint index out of range")
        row = self.counters[breakpoint_index]
        return CounterSet.from_vector(np.array(row, dtype=np.float64))

    def throughput_ratios(self) -> np.ndarray:
        """Calibrator targets: next-window over feature-window counts."""
        current = self.counters[self.sample_breakpoint, _INST_TOTAL_INDEX]
        return self.sample_instructions / np.maximum(current, 1.0)

    def oracle_level(self, breakpoint_index: int, preset: float) -> int:
        """Slowest level whose measured loss is within ``preset``."""
        mask = self.sample_breakpoint == breakpoint_index
        levels = self.sample_level[mask]
        losses = self.sample_loss[mask]
        if levels.size == 0:
            raise DatasetError("breakpoint has no samples")
        ok = losses <= preset
        if not ok.any():
            return int(levels.max())
        return int(levels[ok].min())

    # ------------------------------------------------------------------
    def _breakpoint_feature_matrix(self, extractor: FeatureExtractor
                                   ) -> np.ndarray:
        sets = [self.counter_set(i) for i in range(self.num_breakpoints)]
        return extractor.extract_matrix(sets)

    def minimal_level_for_record(self, record_index: int,
                                 preset: float) -> int:
        """Min level whose loss fits ``preset`` among a record's samples."""
        mask = self.sample_breakpoint == record_index
        levels = self.sample_level[mask]
        losses = self.sample_loss[mask]
        if levels.size == 0:
            raise DatasetError("record has no samples")
        ok = losses <= preset
        if not ok.any():
            return int(levels.max())
        return int(levels[ok].min())

    def _decision_arrays(self, feats_per_record: np.ndarray, labeling: str,
                         preset_grid: tuple[float, ...]
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Decision inputs/labels plus each row's split group."""
        if labeling == "applied":
            feats = feats_per_record[self.sample_breakpoint]
            x = np.column_stack([feats, self.sample_loss])
            y = self.sample_level
            group = self.record_group[self.sample_breakpoint]
            return x, y, group
        if labeling != "minimal":
            raise DatasetError(f"unknown labeling {labeling!r}")
        if not preset_grid:
            raise DatasetError("minimal labeling needs a preset grid")
        rows, labels, groups = [], [], []
        for record in range(self.num_breakpoints):
            for preset in preset_grid:
                rows.append(np.concatenate(
                    [feats_per_record[record], [preset]]))
                labels.append(self.minimal_level_for_record(record, preset))
                groups.append(self.record_group[record])
        return np.stack(rows), np.array(labels), np.array(groups)

    def prepare(self, feature_names: tuple[str, ...], issue_width: float,
                test_fraction: float = 0.25, seed: int = 0,
                labeling: str = "minimal",
                preset_grid: tuple[float, ...] = DEFAULT_PRESET_GRID
                ) -> PreparedData:
        """Build standardised decision/calibrator splits.

        Splits are grouped by physical breakpoint.  Scalers are fitted
        on the training rows only and returned for runtime deployment.
        """
        if not 0.0 < test_fraction < 1.0:
            raise DatasetError("test_fraction must be in (0, 1)")
        extractor = FeatureExtractor(tuple(feature_names), issue_width)
        bp_features = self._breakpoint_feature_matrix(extractor)

        rng = np.random.default_rng(seed)
        groups = np.unique(self.record_group)
        order = rng.permutation(groups)
        n_test = max(1, int(groups.size * test_fraction))
        if n_test >= groups.size:
            raise DatasetError("not enough breakpoints for the split")
        test_groups = set(order[:n_test].tolist())

        decision_x, decision_y, decision_group = self._decision_arrays(
            bp_features, labeling, preset_grid)
        decision_in_test = np.array(
            [g in test_groups for g in decision_group])

        sample_group = self.record_group[self.sample_breakpoint]
        in_test = np.array([g in test_groups for g in sample_group])
        feats = bp_features[self.sample_breakpoint]
        calib_x = np.column_stack([feats,
                                   self.sample_level.astype(np.float64)])
        calib_y = self.throughput_ratios()

        decision_scaler = FeatureScaler().fit(decision_x[~decision_in_test])
        calib_scaler = FeatureScaler().fit(calib_x[~in_test])
        decision = SplitData(
            x_train=decision_scaler.transform(decision_x[~decision_in_test]),
            y_train=decision_y[~decision_in_test],
            x_test=decision_scaler.transform(decision_x[decision_in_test]),
            y_test=decision_y[decision_in_test],
        )
        calibrator = SplitData(
            x_train=calib_scaler.transform(calib_x[~in_test]),
            y_train=calib_y[~in_test],
            x_test=calib_scaler.transform(calib_x[in_test]),
            y_test=calib_y[in_test],
        )
        return PreparedData(
            decision=decision,
            calibrator=calibrator,
            decision_scaler=decision_scaler,
            calibrator_scaler=calib_scaler,
            feature_names=tuple(feature_names),
            num_levels=self.num_levels,
        )

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist to ``.npz`` (datasets are expensive to regenerate).

        The write is atomic (temp + fsync + rename): a kill mid-save
        leaves either the previous dataset or the new one on disk,
        never a truncated archive the cache layer would have to count
        as corrupt and regenerate.
        """
        path = Path(path)
        if path.suffix != ".npz":  # np.savez's historical behaviour
            path = path.with_name(path.name + ".npz")
        buffer = io.BytesIO()
        np.savez(
            buffer,
            counters=self.counters,
            kernel_names=np.array(self.kernel_names),
            sample_breakpoint=self.sample_breakpoint,
            sample_level=self.sample_level,
            sample_loss=self.sample_loss,
            sample_instructions=self.sample_instructions,
            record_group=self.record_group,
        )
        atomic_write_bytes(path, buffer.getvalue())

    @classmethod
    def load(cls, path: str | Path) -> "DVFSDataset":
        """Load a dataset saved with :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise DatasetError(f"dataset file not found: {path}")
        with np.load(path, allow_pickle=False) as data:
            group = (data["record_group"] if "record_group" in data.files
                     else None)
            return cls(
                counters=data["counters"],
                kernel_names=[str(n) for n in data["kernel_names"]],
                sample_breakpoint=data["sample_breakpoint"],
                sample_level=data["sample_level"],
                sample_loss=data["sample_loss"],
                sample_instructions=data["sample_instructions"],
                record_group=group,
            )
