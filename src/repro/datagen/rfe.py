"""Recursive Feature Elimination (paper §IV-A, Table I).

The paper refines the 47 counters down to three indirect features (plus
the always-kept direct power feature) with RFE, scoring features by the
accuracy drop when their values are shuffled — i.e. permutation
importance inside a recursive elimination loop.  We reproduce exactly
that: each round trains a Decision-maker on the surviving features,
permutes one candidate column of the test split at a time, and
eliminates the least important quarter.

Scoring is batched by default: the ``columns × repeats`` permuted
copies of the test split are stacked into one ``(P, rows, features)``
tensor and pushed through the Decision-maker with one ``np.matmul`` per
layer (the shared weight matrix broadcasts across the stack), instead
of ``columns × repeats`` separate ``predict_class`` calls.  The batched
path consumes the *same* random stream in the same order as the serial
loop — ``rng.permutation(n)`` draws exactly what ``rng.shuffle`` on a
length-``n`` column would — so importances, eliminations and the final
selected set are identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DatasetError
from ..gpu.counters import INDIRECT_FEATURE_NAMES
from ..nn.metrics import accuracy
from ..nn.mlp import MLP
from ..nn.trainer import TrainConfig, train_classifier
from ..parallel import CampaignStats
from .dataset import DVFSDataset

#: The direct (power) feature the paper always keeps: PPC.
DEFAULT_ALWAYS_KEEP = ("power_per_core",)

#: Cap on ``stack_members × rows`` per batched forward chunk, keeping
#: the activation stack inside cache-friendly territory on small hosts.
_ROW_BUDGET = 8192


@dataclass
class RFERound:
    """One elimination round's record."""

    features: tuple[str, ...]
    test_accuracy: float
    importances: dict[str, float]
    eliminated: tuple[str, ...]


@dataclass
class RFEResult:
    """Outcome of a full RFE run."""

    selected: tuple[str, ...]
    always_keep: tuple[str, ...]
    rounds: list[RFERound] = field(default_factory=list)
    full_accuracy: float = 0.0
    selected_accuracy: float = 0.0

    @property
    def all_features(self) -> tuple[str, ...]:
        """Deployment feature set: always-keep + selected indirect."""
        return self.always_keep + self.selected

    @property
    def accuracy_drop_pct(self) -> float:
        """Accuracy lost by the refinement, in percentage points."""
        return (self.full_accuracy - self.selected_accuracy) * 100.0


def _permutation_importance(model: MLP, x_test: np.ndarray,
                            y_test: np.ndarray, column: int,
                            rng: np.random.Generator,
                            repeats: int = 3,
                            base: float | None = None) -> float:
    """Mean accuracy drop when ``column`` of the test set is shuffled.

    ``base`` is the unpermuted test accuracy; it depends only on the
    model and the split, so round-level callers compute it once and
    pass it in rather than re-running the clean forward per column.
    """
    if base is None:
        base = accuracy(model.predict_class(x_test), y_test)
    drops = []
    for _ in range(repeats):
        shuffled = x_test.copy()
        rng.shuffle(shuffled[:, column])
        drops.append(base - accuracy(model.predict_class(shuffled), y_test))
    return float(np.mean(drops))


class ImportanceWorkspace:
    """Reusable scratch arrays for repeated batched scoring calls.

    The stacked test copies and per-layer activation buffers dominate
    the batched path's fixed cost; a caller that scores repeatedly
    (the RFE round loop, benchmarks) passes one workspace so those
    allocations are paid once per shape instead of once per call.
    """

    def __init__(self) -> None:
        self._arrays: dict[object, np.ndarray] = {}

    def array(self, key: object, shape: tuple[int, ...],
              dtype: type = np.float64) -> np.ndarray:
        """An uninitialised array of ``shape``/``dtype``, reused by key."""
        array = self._arrays.get(key)
        if array is None or array.shape != shape or array.dtype != dtype:
            array = self._arrays[key] = np.empty(shape, dtype=dtype)
        return array


def permutation_importances(model: MLP, x_test: np.ndarray,
                            y_test: np.ndarray, columns: list[int],
                            rng: np.random.Generator, repeats: int = 3,
                            base: float | None = None,
                            row_budget: int = _ROW_BUDGET,
                            workspace: ImportanceWorkspace | None = None
                            ) -> np.ndarray:
    """Batched permutation importance for every column at once.

    Builds a ``(len(columns) × repeats, rows, features)`` stack in which
    each slice is the test split with one candidate column permuted,
    then scores the whole stack with one broadcast matmul per model
    layer.  Draws from ``rng`` in the exact order of the serial loop
    (columns outer, repeats inner), so the returned per-column mean
    drops equal :func:`_permutation_importance` called column by column
    with the same generator state.
    """
    x_test = np.asarray(x_test, dtype=np.float64)
    if x_test.ndim != 2:
        raise DatasetError("x_test must be 2-D (rows, features)")
    rows, width = x_test.shape
    if rows == 0 or not columns:
        raise DatasetError("nothing to score")
    if any(not 0 <= c < width for c in columns):
        raise DatasetError("permutation column out of range")
    if base is None:
        base = accuracy(model.predict_class(x_test), y_test)
    workspace = workspace or ImportanceWorkspace()

    members = len(columns) * repeats
    stack = workspace.array("stack", (members, rows, width))
    stack[:] = x_test
    # Same stream as the serial shuffles: shuffling a fresh arange is
    # exactly Generator.permutation(n), so member i draws what the
    # serial loop's i-th rng.shuffle would, and column[idx] is the very
    # column that in-place shuffle would have produced.  The arange and
    # index buffers are reused across members, and each candidate
    # column is gathered once into contiguous memory up front.
    arange = workspace.array("arange", (rows,), dtype=np.intp)
    arange[:] = np.arange(rows)
    idx = workspace.array("idx", (rows,), dtype=np.intp)
    for index, column in enumerate(columns):
        contiguous = np.ascontiguousarray(x_test[:, column])
        for repeat in range(repeats):
            idx[:] = arange
            rng.shuffle(idx)
            stack[index * repeats + repeat, :, column] = contiguous[idx]

    weights = [layer._masked_weights() for layer in model.layers]
    biases = [layer.bias for layer in model.layers]
    chunk = max(1, min(members, row_budget // max(1, rows)))
    # Each chunk is scored as ONE flattened (chunk*rows, width) GEMM per
    # layer: at chunked sizes the activations stay cache-resident, and
    # a single large dgemm beats `chunk` tiny per-slice calls.  Row
    # values are unchanged by the flatten, so predictions are the same.
    buffers = [workspace.array(("layer", index), (chunk * rows, w.shape[1]))
               for index, w in enumerate(weights)]
    accuracies = workspace.array("accuracies", (members,))
    y_test = np.asarray(y_test)
    for start in range(0, members, chunk):
        stop = min(start + chunk, members)
        size = stop - start
        x = stack[start:stop].reshape(size * rows, width)
        for layer, w, b, buffer in zip(model.layers, weights, biases,
                                       buffers):
            out = buffer[:size * rows]
            np.matmul(x, w, out=out)
            out += b
            if layer.activation == "relu":
                np.maximum(out, 0.0, out=out)
            x = out
        predictions = np.argmax(x.reshape(size, rows, -1), axis=2)
        accuracies[start:stop] = (predictions == y_test).mean(axis=1)

    drops = base - accuracies
    return drops.reshape(len(columns), repeats).mean(axis=1)


class RFESelector:
    """Recursive feature elimination over the indirect counters."""

    def __init__(self, dataset: DVFSDataset, issue_width: float,
                 candidates: tuple[str, ...] = INDIRECT_FEATURE_NAMES,
                 always_keep: tuple[str, ...] = DEFAULT_ALWAYS_KEEP,
                 target_count: int = 3, drop_fraction: float = 0.25,
                 hidden: tuple[int, ...] = (20, 20),
                 train_config: TrainConfig | None = None,
                 seed: int = 0, batched: bool = True,
                 stats: CampaignStats | None = None) -> None:
        if target_count < 1:
            raise DatasetError("must select at least one feature")
        if not 0.0 < drop_fraction < 1.0:
            raise DatasetError("drop_fraction must be in (0, 1)")
        overlap = set(candidates) & set(always_keep)
        if overlap:
            raise DatasetError(f"features both candidate and kept: {overlap}")
        if len(candidates) < target_count:
            raise DatasetError("fewer candidates than target count")
        self.dataset = dataset
        self.issue_width = issue_width
        self.candidates = tuple(candidates)
        self.always_keep = tuple(always_keep)
        self.target_count = target_count
        self.drop_fraction = drop_fraction
        self.hidden = hidden
        self.train_config = train_config or TrainConfig(
            epochs=30, patience=6, learning_rate=3e-3, seed=seed)
        self.seed = seed
        self.batched = batched
        self.stats = stats if stats is not None else CampaignStats()
        self._workspace = ImportanceWorkspace()

    def _train_and_score(self, features: tuple[str, ...], seed: int
                         ) -> tuple[MLP, float, "np.ndarray", "np.ndarray"]:
        names = self.always_keep + features
        prepared = self.dataset.prepare(names, self.issue_width, seed=self.seed)
        model = MLP([prepared.decision.x_train.shape[1], *self.hidden,
                     prepared.num_levels], rng=np.random.default_rng(seed))
        history = train_classifier(model, prepared.decision.x_train,
                                   prepared.decision.y_train,
                                   self.train_config)
        self.stats.count("train_models")
        self.stats.count("train_epochs", history.epochs_run)
        acc = accuracy(model.predict_class(prepared.decision.x_test),
                       prepared.decision.y_test)
        return model, acc, prepared.decision.x_test, prepared.decision.y_test

    def _score_round(self, model: MLP, acc: float, x_test: np.ndarray,
                     y_test: np.ndarray, current: list[str],
                     rng: np.random.Generator) -> dict[str, float]:
        """Permutation importances for one round's surviving features.

        The unpermuted baseline is the round accuracy already in hand,
        so neither path re-runs the clean forward per column.
        """
        offset = len(self.always_keep)
        self.stats.count("rfe_columns_scored", len(current))
        if self.batched:
            scores = permutation_importances(
                model, x_test, y_test,
                [offset + position for position in range(len(current))],
                rng, base=acc, workspace=self._workspace)
            return {name: float(score)
                    for name, score in zip(current, scores)}
        return {
            name: _permutation_importance(
                model, x_test, y_test, offset + position, rng, base=acc)
            for position, name in enumerate(current)
        }

    def run(self) -> RFEResult:
        """Execute the elimination loop; returns the full record."""
        current = list(self.candidates)
        result = RFEResult(selected=(), always_keep=self.always_keep)
        rng = np.random.default_rng(self.seed)
        round_index = 0
        with self.stats.stage("rfe", tasks=len(current)):
            while True:
                model, acc, x_test, y_test = self._train_and_score(
                    tuple(current), seed=self.seed + round_index)
                if round_index == 0:
                    result.full_accuracy = acc
                self.stats.count("rfe_rounds")
                importances = self._score_round(model, acc, x_test, y_test,
                                                current, rng)
                if len(current) <= self.target_count:
                    result.rounds.append(RFERound(
                        features=tuple(current), test_accuracy=acc,
                        importances=importances, eliminated=()))
                    break
                n_drop = max(1, int(len(current) * self.drop_fraction))
                n_drop = min(n_drop, len(current) - self.target_count)
                ranked = sorted(current, key=lambda n: importances[n])
                eliminated = tuple(ranked[:n_drop])
                result.rounds.append(RFERound(
                    features=tuple(current), test_accuracy=acc,
                    importances=importances, eliminated=eliminated))
                current = [n for n in current if n not in eliminated]
                round_index += 1

        result.selected = tuple(current)
        result.selected_accuracy = result.rounds[-1].test_accuracy
        return result
