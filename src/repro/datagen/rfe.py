"""Recursive Feature Elimination (paper §IV-A, Table I).

The paper refines the 47 counters down to three indirect features (plus
the always-kept direct power feature) with RFE, scoring features by the
accuracy drop when their values are shuffled — i.e. permutation
importance inside a recursive elimination loop.  We reproduce exactly
that: each round trains a Decision-maker on the surviving features,
permutes one candidate column of the test split at a time, and
eliminates the least important quarter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DatasetError
from ..gpu.counters import INDIRECT_FEATURE_NAMES
from ..nn.metrics import accuracy
from ..nn.mlp import MLP
from ..nn.trainer import TrainConfig, train_classifier
from .dataset import DVFSDataset

#: The direct (power) feature the paper always keeps: PPC.
DEFAULT_ALWAYS_KEEP = ("power_per_core",)


@dataclass
class RFERound:
    """One elimination round's record."""

    features: tuple[str, ...]
    test_accuracy: float
    importances: dict[str, float]
    eliminated: tuple[str, ...]


@dataclass
class RFEResult:
    """Outcome of a full RFE run."""

    selected: tuple[str, ...]
    always_keep: tuple[str, ...]
    rounds: list[RFERound] = field(default_factory=list)
    full_accuracy: float = 0.0
    selected_accuracy: float = 0.0

    @property
    def all_features(self) -> tuple[str, ...]:
        """Deployment feature set: always-keep + selected indirect."""
        return self.always_keep + self.selected

    @property
    def accuracy_drop_pct(self) -> float:
        """Accuracy lost by the refinement, in percentage points."""
        return (self.full_accuracy - self.selected_accuracy) * 100.0


def _permutation_importance(model: MLP, x_test: np.ndarray,
                            y_test: np.ndarray, column: int,
                            rng: np.random.Generator,
                            repeats: int = 3) -> float:
    """Mean accuracy drop when ``column`` of the test set is shuffled."""
    base = accuracy(model.predict_class(x_test), y_test)
    drops = []
    for _ in range(repeats):
        shuffled = x_test.copy()
        rng.shuffle(shuffled[:, column])
        drops.append(base - accuracy(model.predict_class(shuffled), y_test))
    return float(np.mean(drops))


class RFESelector:
    """Recursive feature elimination over the indirect counters."""

    def __init__(self, dataset: DVFSDataset, issue_width: float,
                 candidates: tuple[str, ...] = INDIRECT_FEATURE_NAMES,
                 always_keep: tuple[str, ...] = DEFAULT_ALWAYS_KEEP,
                 target_count: int = 3, drop_fraction: float = 0.25,
                 hidden: tuple[int, ...] = (20, 20),
                 train_config: TrainConfig | None = None,
                 seed: int = 0) -> None:
        if target_count < 1:
            raise DatasetError("must select at least one feature")
        if not 0.0 < drop_fraction < 1.0:
            raise DatasetError("drop_fraction must be in (0, 1)")
        overlap = set(candidates) & set(always_keep)
        if overlap:
            raise DatasetError(f"features both candidate and kept: {overlap}")
        if len(candidates) < target_count:
            raise DatasetError("fewer candidates than target count")
        self.dataset = dataset
        self.issue_width = issue_width
        self.candidates = tuple(candidates)
        self.always_keep = tuple(always_keep)
        self.target_count = target_count
        self.drop_fraction = drop_fraction
        self.hidden = hidden
        self.train_config = train_config or TrainConfig(
            epochs=30, patience=6, learning_rate=3e-3, seed=seed)
        self.seed = seed

    def _train_and_score(self, features: tuple[str, ...], seed: int
                         ) -> tuple[MLP, float, "np.ndarray", "np.ndarray"]:
        names = self.always_keep + features
        prepared = self.dataset.prepare(names, self.issue_width, seed=self.seed)
        model = MLP([prepared.decision.x_train.shape[1], *self.hidden,
                     prepared.num_levels], rng=np.random.default_rng(seed))
        train_classifier(model, prepared.decision.x_train,
                         prepared.decision.y_train, self.train_config)
        acc = accuracy(model.predict_class(prepared.decision.x_test),
                       prepared.decision.y_test)
        return model, acc, prepared.decision.x_test, prepared.decision.y_test

    def run(self) -> RFEResult:
        """Execute the elimination loop; returns the full record."""
        current = list(self.candidates)
        result = RFEResult(selected=(), always_keep=self.always_keep)
        rng = np.random.default_rng(self.seed)
        round_index = 0
        while True:
            model, acc, x_test, y_test = self._train_and_score(
                tuple(current), seed=self.seed + round_index)
            if round_index == 0:
                result.full_accuracy = acc
            importances = {}
            offset = len(self.always_keep)
            for position, name in enumerate(current):
                importances[name] = _permutation_importance(
                    model, x_test, y_test, offset + position, rng)
            if len(current) <= self.target_count:
                result.rounds.append(RFERound(
                    features=tuple(current), test_accuracy=acc,
                    importances=importances, eliminated=()))
                break
            n_drop = max(1, int(len(current) * self.drop_fraction))
            n_drop = min(n_drop, len(current) - self.target_count)
            ranked = sorted(current, key=lambda n: importances[n])
            eliminated = tuple(ranked[:n_drop])
            result.rounds.append(RFERound(
                features=tuple(current), test_accuracy=acc,
                importances=importances, eliminated=eliminated))
            current = [n for n in current if n not in eliminated]
            round_index += 1

        result.selected = tuple(current)
        result.selected_accuracy = result.rounds[-1].test_accuracy
        return result
