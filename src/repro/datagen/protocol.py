"""The paper's data-generation protocol (§III-A).

For each training kernel, executed at the default V/f operating point:

1. Roughly every 100 µs a *breakpoint* is placed (one data-point cycle).
2. A reference replay from the breakpoint fixes the workload span: the
   instructions the GPU completes in ``segment_epochs`` epochs at the
   default operating point.  Its duration is ``T0``.
3. For each of the 6 operating points, the segment is replayed from a
   snapshot: one *feature collection window* epoch at the default
   point (counters are recorded), one *frequency scaling window* epoch
   at the trial point (its instruction count is recorded), then the
   default point again until the workload mark is reached.  The total
   replay duration is ``T_f``; the measured performance loss is
   ``(T_f - T0) / T0``.

Collecting over the full ~100 µs segment — not just the 20 µs of the
two windows — captures the delayed effects of a frequency change
(stalled warps resuming epochs later), exactly the error source the
paper's 100 µs collection period is chosen to mitigate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DatasetError, SimulationError
from ..gpu.arch import GPUArchConfig
from ..gpu.cluster import build_counters_matrix, quantum_row_for
from ..gpu.counters import COUNTER_INDEX, CounterSet
from ..gpu.fused import (SharedContextCache, dump_shared, fuse_groups,
                         release_shared)
from ..gpu.interval_model import SolutionCache
from ..gpu.quantum import run_epoch_batch
from ..gpu.kernels import KernelProfile
from ..gpu.simulator import DEFAULT_EPOCH_S, GPUSimulator
from ..parallel import CampaignCheckpoint, CampaignStats, parallel_map
from ..power.model import PowerModel


@dataclass(frozen=True)
class ProtocolConfig:
    """Knobs of the data-generation protocol.

    Defaults follow the paper: 10 µs epochs, 100 µs data-point cycles
    (10 epochs), a 1-epoch feature window and a 1-epoch scaling window.
    """

    epoch_s: float = DEFAULT_EPOCH_S
    segment_epochs: int = 10
    max_breakpoints_per_kernel: int = 12
    augment_feature_levels: bool = True
    seed: int = 0
    #: Memoise interval-model solves across the 6-way V/f replays.
    #: Results are bit-identical either way (the cache stores exact
    #: inputs/outputs); the flag exists for benchmarking and as a
    #: diagnostic escape hatch.
    use_solution_cache: bool = True
    #: Replay the whole V/f grid per breakpoint in lockstep: one lane
    #: simulator per operating point, advanced through one batched
    #: quantum-kernel call per epoch, with the shared feature window
    #: solved once instead of once per grid point.  Output is
    #: bit-identical to the serial six-way replay; the flags exist for
    #: benchmarking and as diagnostic escape hatches.
    fused_grid: bool = True
    #: Run lane/simulator epochs through the vectorised quantum kernel
    #: (:func:`repro.gpu.quantum.run_epoch_batch`) instead of the scalar
    #: per-cluster loop.
    vectorized_quanta: bool = True

    def __post_init__(self) -> None:
        if self.epoch_s <= 0:
            raise DatasetError("epoch length must be positive")
        if self.segment_epochs < 3:
            raise DatasetError(
                "segment must cover the two windows plus recovery epochs"
            )
        if self.max_breakpoints_per_kernel <= 0:
            raise DatasetError("need at least one breakpoint per kernel")


@dataclass
class BreakpointSamples:
    """All six variants measured at one breakpoint.

    ``losses`` is the canonical label: the excess time caused by the
    scaling window — *including* delayed effects surfacing later in the
    100 µs segment — normalised by the window's reference duration.
    This equals the sustained fractional slowdown of holding that
    operating point, so a runtime preset of 10 % genuinely bounds
    program slowdown near 10 % when applied every epoch.
    ``segment_losses`` keeps the raw ``(T_f - T0)/T0`` over the whole
    segment (the paper's literal formula); the two differ only by the
    constant factor ``segment/window``.
    """

    kernel_name: str
    breakpoint_index: int
    feature_counters: CounterSet
    t0_s: float
    levels: list[int] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    segment_losses: list[float] = field(default_factory=list)
    window_instructions: list[float] = field(default_factory=list)
    tf_s: list[float] = field(default_factory=list)
    #: Feature-window counters replayed at each operating point:
    #: (window_level, counters).  The paper always collects features at
    #: the default point, but at runtime the previous epoch runs at
    #: whatever level was last chosen — a train/serve distribution shift.
    #: These variants (same labels, same workload position) close it.
    feature_variants: list[tuple[int, CounterSet]] = field(
        default_factory=list)

    def minimal_level_for_preset(self, preset: float) -> int:
        """Oracle: the slowest level whose loss stays under ``preset``."""
        best = max(self.levels)  # default point always satisfies (loss ~ 0)
        for level, loss in zip(self.levels, self.losses):
            if loss <= preset and level < best:
                best = level
        return best


def _time_to_reach_mark(simulator: GPUSimulator, target: float,
                        epoch_s: float, max_epochs: int = 10_000) -> float:
    """Run at current levels until the mean-instruction mark, returning
    the elapsed time with sub-epoch (interpolated) resolution."""
    elapsed = 0.0
    epochs = 0
    while not simulator.finished:
        before = simulator.mean_instructions_done()
        if before >= target:
            return elapsed
        simulator.step_epoch()
        epochs += 1
        if epochs > max_epochs:
            raise SimulationError("workload mark never reached")
        after = simulator.mean_instructions_done()
        if after >= target:
            progress = after - before
            fraction = (target - before) / progress if progress > 0 else 1.0
            return elapsed + fraction * epoch_s
        elapsed += epoch_s
    return elapsed


def _finalize_samples(samples: BreakpointSamples, default_level: int,
                      config: ProtocolConfig) -> BreakpointSamples:
    """Turn raw replay durations into the canonical loss labels."""
    # T0 is the default-level replay's duration (loss 0 by construction).
    try:
        default_idx = samples.levels.index(default_level)
    except ValueError as exc:
        raise DatasetError("default level missing from replay set") from exc
    samples.t0_s = samples.tf_s[default_idx]
    samples.segment_losses = [(tf - samples.t0_s) / samples.t0_s
                              for tf in samples.tf_s]
    # Window-normalised labels: excess time (with delayed effects) over
    # the reference duration of the one epoch that was rescaled.
    samples.losses = [(tf - samples.t0_s) / config.epoch_s
                      for tf in samples.tf_s]
    return samples


def collect_breakpoint(simulator: GPUSimulator, breakpoint_index: int,
                       config: ProtocolConfig,
                       lanes: list[GPUSimulator] | None = None,
                       reference: tuple[float, dict] | None = None
                       ) -> BreakpointSamples:
    """Run the six-way replay for the breakpoint at the current state.

    The simulator must be positioned at the breakpoint (all clusters at
    the default level) and is left at the end of the reference segment
    so generation can continue to the next breakpoint.  ``lanes`` (one
    spare simulator per operating point, see :func:`_grid_lanes`)
    switches to the fused-grid replay, which advances the whole V/f grid
    in lockstep through batched quantum-kernel calls; its output is
    bit-identical to the serial path.  ``reference`` (fused path only)
    hands in a precomputed ``(workload_mark, end_state)`` reference
    segment — the generation loop's fit probe covers the same epochs, so
    it shares them instead of replaying the segment here.
    """
    if lanes is not None:
        return _collect_breakpoint_fused(simulator, lanes,
                                         breakpoint_index, config,
                                         reference=reference)
    arch = simulator.arch
    default_level = arch.vf_table.default_level
    snapshot = simulator.snapshot()

    # Reference segment: fixes the workload span and T0.
    simulator.set_all_levels(default_level)
    for _ in range(config.segment_epochs):
        if simulator.finished:
            break
        simulator.step_epoch()
    workload_mark = simulator.mean_instructions_done()
    end_state = simulator.snapshot()

    samples = None
    for level in range(arch.vf_table.num_levels):
        simulator.restore(snapshot)
        simulator.set_all_levels(default_level)
        if simulator.finished:
            raise DatasetError("breakpoint placed after kernel completion")
        feature_record = simulator.step_epoch()  # feature collection window
        if samples is None:
            samples = BreakpointSamples(
                kernel_name=simulator.kernel.name,
                breakpoint_index=breakpoint_index,
                feature_counters=feature_record.counters.copy(),
                t0_s=0.0,
            )
        simulator.set_all_levels(level)
        if simulator.finished:
            break
        scaling_record = simulator.step_epoch()  # frequency scaling window
        simulator.set_all_levels(default_level)
        tail = _time_to_reach_mark(simulator, workload_mark, config.epoch_s)
        total = 2 * config.epoch_s + tail
        samples.levels.append(level)
        samples.window_instructions.append(
            scaling_record.instructions / arch.num_clusters)
        samples.tf_s.append(total)

    if samples is None or not samples.levels:
        raise DatasetError("kernel too short for the requested breakpoint")

    _finalize_samples(samples, default_level, config)

    # Feature-window level augmentation: replay the feature window at
    # every operating point so the runtime counter distribution (the
    # previous epoch may run at any level) is covered by training data.
    samples.feature_variants = [(default_level, samples.feature_counters)]
    if config.augment_feature_levels:
        for level in range(arch.vf_table.num_levels):
            if level == default_level:
                continue
            simulator.restore(snapshot)
            simulator.set_all_levels(level)
            record = simulator.step_epoch()
            samples.feature_variants.append((level, record.counters.copy()))

    # Leave the simulator at the end of the reference segment.
    simulator.restore(end_state)
    return samples


def _grid_lanes(simulator: GPUSimulator) -> list[GPUSimulator]:
    """One spare simulator per operating point for fused-grid replay.

    Lanes are built from the same seed/kernel/arch as ``simulator`` so
    restoring its snapshots into them replays bit-identically (noise
    tracks are position-indexed per seed; the lanes additionally share
    one noise cache so the tracks are materialised once).  The
    interval-solution cache is shared with the driving simulator — the
    grid replays the same workload stretch at every point, which is
    exactly where the cross-lane hits come from.
    """
    noise_cache: dict = {}
    kernel = (simulator.kernels if len(simulator.kernels) > 1
              else simulator.kernel)
    return [
        GPUSimulator(simulator.arch, kernel, simulator.power_model,
                     seed=simulator.seed, epoch_s=simulator.epoch_s,
                     use_solution_cache=simulator.solution_cache is not None,
                     solution_cache=simulator.solution_cache,
                     noise_cache=noise_cache)
        for _ in range(simulator.arch.vf_table.num_levels)
    ]


def _collect_breakpoint_fused(simulator: GPUSimulator,
                              lanes: list[GPUSimulator],
                              breakpoint_index: int,
                              config: ProtocolConfig,
                              reference: tuple[float, dict] | None = None
                              ) -> BreakpointSamples:
    """Six-way replay with the whole V/f grid advanced in lockstep.

    Serial replay solves the grid one operating point at a time: for
    each of the 6 points, restore, feature window, scaling window, then
    a tail at the default point until the workload mark.  Here every
    point gets a *lane* simulator restored from the same snapshot and
    the grid advances epoch-by-epoch through one batched quantum-kernel
    call over all lanes' clusters:

    * the feature collection window is identical across grid points
      (same state, same default level), so it is solved **once** on the
      driving simulator and its end state is fanned out to the lanes;
    * the scaling windows (one per point) run as a single
      ``run_epoch_batch`` over ``levels x clusters`` rows;
    * the tails run in lockstep, each lane dropping out as it reaches
      the workload mark, with the serial path's sub-epoch interpolation
      replicated exactly.

    Lanes advance through the quantum kernel's advance-only mode — the
    tail needs instruction positions, not power — which moves cluster
    state bit-for-bit like a full epoch.  Labels, counters and the
    driving simulator's end state are bit-identical to the serial path.
    """
    arch = simulator.arch
    epoch_s = config.epoch_s
    num_clusters = arch.num_clusters
    default_level = arch.vf_table.default_level
    num_levels = arch.vf_table.num_levels
    snapshot = simulator.snapshot()

    if reference is not None:
        # The generation loop's fit probe already advanced through the
        # reference segment and captured its span/end state.
        workload_mark, end_state = reference
    else:
        # Reference segment: fixes the workload span and T0.
        simulator.set_all_levels(default_level)
        for _ in range(config.segment_epochs):
            if simulator.finished:
                break
            simulator.step_epoch()
        workload_mark = simulator.mean_instructions_done()
        end_state = simulator.snapshot()

    # Shared feature window: every grid point replays the identical
    # default-level epoch from the breakpoint state.
    simulator.restore(snapshot)
    simulator.set_all_levels(default_level)
    if simulator.finished:
        raise DatasetError("breakpoint placed after kernel completion")
    feature_record = simulator.step_epoch()
    samples = BreakpointSamples(
        kernel_name=simulator.kernel.name,
        breakpoint_index=breakpoint_index,
        feature_counters=feature_record.counters.copy(),
        t0_s=0.0,
    )
    if simulator.finished:
        # Serial path: the first grid iteration breaks before its
        # scaling window, leaving the replay set empty.
        raise DatasetError("kernel too short for the requested breakpoint")
    after_feature = simulator.snapshot()

    # Scaling windows: one batched epoch over every lane's clusters.
    for level, lane in enumerate(lanes):
        lane.restore(after_feature)
        lane.set_all_levels(level)
    scaling = run_epoch_batch(
        [cluster for lane in lanes for cluster in lane.clusters],
        epoch_s, accumulate=False)
    window_instructions = [
        sum(scaling.instructions[lv * num_clusters:
                                 (lv + 1) * num_clusters].tolist())
        for lv in range(num_levels)
    ]

    # Lockstep tails: every lane back at the default point until its
    # replay reaches the workload mark (or the kernel drains).  The
    # elapsed/interpolation arithmetic repeats _time_to_reach_mark's
    # float sequence exactly.
    for lane in lanes:
        lane.set_all_levels(default_level)
    tails = [0.0] * num_levels
    elapsed = [0.0] * num_levels
    live = [lv for lv in range(num_levels)
            if not lanes[lv].finished
            and lanes[lv].mean_instructions_done() < workload_mark]
    epochs = 0
    while live:
        epochs += 1
        if epochs > 10_000:
            raise SimulationError("workload mark never reached")
        before = [lanes[lv].mean_instructions_done() for lv in live]
        run_epoch_batch(
            [cluster for lv in live for cluster in lanes[lv].clusters],
            epoch_s, accumulate=False)
        still = []
        for pos, lv in enumerate(live):
            lane = lanes[lv]
            after = lane.mean_instructions_done()
            if after >= workload_mark:
                progress = after - before[pos]
                fraction = ((workload_mark - before[pos]) / progress
                            if progress > 0 else 1.0)
                tails[lv] = elapsed[lv] + fraction * epoch_s
                continue
            elapsed[lv] += epoch_s
            tails[lv] = elapsed[lv]
            if not lane.finished:
                still.append(lv)
        live = still

    for level in range(num_levels):
        samples.levels.append(level)
        samples.window_instructions.append(
            window_instructions[level] / num_clusters)
        samples.tf_s.append(2 * epoch_s + tails[level])

    _finalize_samples(samples, default_level, config)

    # Feature-window level augmentation, batched across the non-default
    # operating points: one quantum-kernel call over all variant lanes,
    # then per-lane counter/power assembly on each lane's row slice
    # (slice reductions are bit-identical to the standalone per-lane
    # ones; power stays per-lane because its accumulation order depends
    # on the row count BLAS sees).
    samples.feature_variants = [(default_level, samples.feature_counters)]
    if config.augment_feature_levels and num_levels > 1:
        variant_levels = [lv for lv in range(num_levels)
                          if lv != default_level]
        for lv in variant_levels:
            lane = lanes[lv]
            lane.restore(snapshot)
            lane.set_all_levels(lv)
        result = run_epoch_batch(
            [cluster for lv in variant_levels
             for cluster in lanes[lv].clusters], epoch_s)
        counters_matrix = build_counters_matrix(result.matrix, arch)
        for j, lv in enumerate(variant_levels):
            lane = lanes[lv]
            start, stop = j * num_clusters, (j + 1) * num_clusters
            dynamic_w, static_w, energy_j = (
                lane.power_model.cluster_power_batch(
                    None, matrix=result.matrix[start:stop],
                    durations=lane._durations,
                    voltages=lane._voltage_by_level[lane.levels]))
            sub = counters_matrix[start:stop]
            sub[:, COUNTER_INDEX["power_per_core"]] = dynamic_w + static_w
            sub[:, COUNTER_INDEX["power_dynamic"]] = dynamic_w
            sub[:, COUNTER_INDEX["power_static"]] = static_w
            sub[:, COUNTER_INDEX["energy_epoch"]] = energy_j
            samples.feature_variants.append(
                (lv, CounterSet.from_vector(sub.mean(axis=0))))

    # Leave the simulator at the end of the reference segment.
    simulator.restore(end_state)
    return samples


def generate_for_kernel(kernel: KernelProfile, arch: GPUArchConfig,
                        power_model: PowerModel | None = None,
                        config: ProtocolConfig | None = None,
                        stats: CampaignStats | None = None,
                        solution_cache: SolutionCache | None = None
                        ) -> list[BreakpointSamples]:
    """Run the full protocol over one kernel.

    ``stats`` (when given) receives the simulator's interval-model
    solution-cache counters as ``solve_cache_hit`` / ``solve_cache_miss``
    — the replay protocol re-executes each workload stretch at up to
    seven operating points, which is where the hits come from.
    ``solution_cache`` shares one solve cache *across* kernels (the
    fused generation path); cache keys capture every solver input
    bit-exactly, so sharing never changes the samples, only hit rates —
    the caller then owns hit/miss accounting.
    """
    config = config or ProtocolConfig()
    simulator = GPUSimulator(arch, kernel, power_model or PowerModel(),
                             seed=config.seed, epoch_s=config.epoch_s,
                             use_solution_cache=config.use_solution_cache,
                             solution_cache=solution_cache,
                             vectorized=config.vectorized_quanta)
    simulator.set_all_levels(arch.vf_table.default_level)
    # Fused-grid replay needs the batched quantum kernel (lanes advance
    # through it); with a non-default cache payload the simulator falls
    # back to the scalar loop and so does the grid.
    lanes = (_grid_lanes(simulator)
             if config.fused_grid and simulator._vectorized else None)
    breakpoints: list[BreakpointSamples] = []
    # Keep a margin so every replay has room to reach its workload mark
    # even at the slowest point (worst-case tail < 0.8x a segment).
    margin = config.segment_epochs
    while (len(breakpoints) < config.max_breakpoints_per_kernel
           and not simulator.finished):
        # Probe whether a full segment (plus margin) fits from here.
        # The probe only needs completion flags, so the vectorised path
        # advances cluster state without accumulating activity or
        # evaluating power; the state is restored either way.  Its
        # first ``segment_epochs`` steps cover exactly the breakpoint's
        # reference segment, so the fused path keeps the segment's time
        # accounting (the same per-epoch float adds ``step_epoch``
        # performs) and hands the span/end state to the replay instead
        # of stepping those epochs again.
        probe = simulator.snapshot()
        fits = True
        reference = None
        if lanes is not None:
            simulator.set_all_levels(arch.vf_table.default_level)
            for _ in range(config.segment_epochs):
                if simulator.finished:
                    fits = False
                    break
                run_epoch_batch(simulator.clusters, simulator.epoch_s,
                                accumulate=False)
                simulator.time_s += simulator.epoch_s
                simulator.epoch_index += 1
            if fits:
                reference = (simulator.mean_instructions_done(),
                             simulator.snapshot())
                for _ in range(margin):
                    if simulator.finished:
                        fits = False
                        break
                    run_epoch_batch(simulator.clusters, simulator.epoch_s,
                                    accumulate=False)
        else:
            for _ in range(config.segment_epochs + margin):
                if simulator.finished:
                    fits = False
                    break
                simulator.step_epoch()
        simulator.restore(probe)
        if not fits:
            break
        breakpoints.append(
            collect_breakpoint(simulator, len(breakpoints), config,
                               lanes=lanes, reference=reference))
    cache = simulator.solution_cache
    if stats is not None and cache is not None:
        stats.count("solve_cache_hit", cache.hits)
        stats.count("solve_cache_miss", cache.misses)
        stats.count("solve_cache_batch_hit", cache.batch_hits)
        stats.count("solve_cache_batch_miss", cache.batch_misses)
        stats.count("solve_cache_evictions", cache.evictions)
    return breakpoints


def required_duration_s(config: ProtocolConfig) -> float:
    """Kernel duration needed to host ``max_breakpoints_per_kernel``.

    Each breakpoint consumes one reference segment, and the last one
    needs a two-segment margin so every replay can reach its workload
    mark even at the slowest operating point.
    """
    epochs = ((config.max_breakpoints_per_kernel + 3)
              * config.segment_epochs)
    return epochs * config.epoch_s


def scale_kernel_for_protocol(kernel: KernelProfile, arch: GPUArchConfig,
                              config: ProtocolConfig) -> KernelProfile:
    """Scale a kernel *up* (never down) to host the configured breakpoints.

    Training programs in the paper run long enough for breakpoints every
    ~100 µs; the evaluation-length (~300 µs) variants are built
    elsewhere.
    """
    from ..workloads.suites import estimate_default_duration
    estimated = estimate_default_duration(kernel, arch)
    needed = required_duration_s(config)
    if estimated >= needed:
        return kernel
    factor = int(np.ceil(needed / max(estimated, 1e-9)))
    return kernel.with_iterations(kernel.iterations * factor)


def _kernel_task(task: tuple) -> tuple[list[BreakpointSamples], dict[str, int]]:
    """Process-pool unit of work: one kernel's breakpoint/V/f replays.

    Module-level so it pickles by reference; every task builds its own
    simulator from the explicit config seed, so the output is identical
    whether tasks run serially in-process or fanned out over workers.
    Counters (solve-cache hits/misses) travel back with the chunk — a
    worker process cannot mutate the caller's :class:`CampaignStats`.
    """
    kernel, arch, power_model, config = task
    local = CampaignStats()
    chunk = generate_for_kernel(kernel, arch, power_model, config,
                                stats=local)
    return chunk, local.counters


#: Per-process cache of shared generation contexts, so a pool worker
#: attaches/unpickles each campaign's shared context once, not per group.
_DATAGEN_CONTEXTS = SharedContextCache()


def _fused_kernel_group(task: tuple
                        ) -> tuple[list[list[BreakpointSamples]],
                                   dict[str, int]]:
    """Process-pool unit of a fused generation campaign: one kernel group.

    ``task`` is ``(context_ref, kernel_indices)``; the context (scaled
    kernel suite, arch, power model, protocol config) is shipped once
    per campaign via shared memory and each group entry is just an
    index into it.  Kernels in a group run sequentially but share one
    :class:`SolutionCache` — the six-way V/f replays of different
    kernels hit the same interval-model solves, and cache keys are
    bit-exact, so the samples are identical to the serial path.
    Hit/miss counters are accounted once per group (the shared cache's
    totals), not per kernel.
    """
    ref, kernel_indices = task
    context = _DATAGEN_CONTEXTS.get(ref)
    kernels = context["kernels"]
    config = context["config"]
    shared_cache = (SolutionCache(payload_builder=quantum_row_for)
                    if config.use_solution_cache else None)
    chunks = []
    for kernel_index in kernel_indices:
        chunks.append(generate_for_kernel(
            kernels[kernel_index], context["arch"], context["power_model"],
            config, solution_cache=shared_cache))
    local = CampaignStats()
    if shared_cache is not None:
        local.count("solve_cache_hit", shared_cache.hits)
        local.count("solve_cache_miss", shared_cache.misses)
        local.count("solve_cache_batch_hit", shared_cache.batch_hits)
        local.count("solve_cache_batch_miss", shared_cache.batch_misses)
        local.count("solve_cache_evictions", shared_cache.evictions)
    local.count("fused_tasks", len(list(kernel_indices)))
    return chunks, local.counters


def generate_chunks_for_suite(kernels: list[KernelProfile],
                              arch: GPUArchConfig,
                              power_model: PowerModel | None = None,
                              config: ProtocolConfig | None = None,
                              auto_scale: bool = True,
                              workers: int | None = None,
                              stats: CampaignStats | None = None,
                              checkpoint: CampaignCheckpoint | None = None,
                              retries: int = 2,
                              timeout_s: float | None = None,
                              fused: bool = False,
                              fuse_width: int = 8
                              ) -> list[list[BreakpointSamples]]:
    """Run the protocol over a suite, one breakpoint chunk per kernel.

    The per-kernel chunk is the parallel unit: breakpoints within a
    kernel share simulator state (each reference segment starts where
    the previous one ended) and must stay sequential, but kernels are
    fully independent.  Chunk order follows the input suite order, so
    flattening the chunks reproduces the serial output bit for bit.
    ``checkpoint``/``retries``/``timeout_s`` configure the resilient
    fan-out (see :func:`repro.parallel.parallel_map`).

    ``fused=True`` groups ``fuse_width`` consecutive kernels per worker
    task: the suite context ships to the pool once via shared memory
    and each group shares one interval-solution cache across its
    kernels.  Output is bit-identical to the serial path; only the
    solve hit rate and transport cost change.  Fused and non-fused
    checkpoints are incompatible (group- vs kernel-shaped results) —
    callers namespace the checkpoint key accordingly.
    """
    if not kernels:
        raise DatasetError("no kernels given")
    config = config or ProtocolConfig()
    scaled = []
    for kernel in kernels:
        if auto_scale:
            kernel = scale_kernel_for_protocol(kernel, arch, config)
        scaled.append(kernel)
    if fused:
        context = {"kernels": scaled, "arch": arch,
                   "power_model": power_model, "config": config}
        ref, block = dump_shared(context)
        groups = fuse_groups(list(range(len(scaled))), fuse_width)
        try:
            group_results = parallel_map(
                _fused_kernel_group, [(ref, group) for group in groups],
                workers=workers, stats=stats, stage="datagen",
                checkpoint=checkpoint, retries=retries, timeout_s=timeout_s)
        finally:
            release_shared(block)
        results = []
        for group_chunks, counters in group_results:
            for chunk in group_chunks:
                results.append((chunk, {}))
            if stats is not None:
                stats.merge_counters(counters)
        if stats is not None:
            stats.count("fused_groups", len(groups))
            stats.count("fused_shared_bytes", ref.shared_bytes)
    else:
        tasks = [(kernel, arch, power_model, config) for kernel in scaled]
        results = parallel_map(_kernel_task, tasks, workers=workers,
                               stats=stats, stage="datagen",
                               checkpoint=checkpoint, retries=retries,
                               timeout_s=timeout_s)
    chunks = []
    for chunk, counters in results:
        chunks.append(chunk)
        if stats is not None:
            for name, amount in counters.items():
                stats.count(name, amount)
    if not any(chunks):
        raise DatasetError("no breakpoints generated; kernels too short?")
    return chunks


def generate_for_suite(kernels: list[KernelProfile], arch: GPUArchConfig,
                       power_model: PowerModel | None = None,
                       config: ProtocolConfig | None = None,
                       auto_scale: bool = True,
                       workers: int | None = None,
                       stats: CampaignStats | None = None,
                       fused: bool = False,
                       fuse_width: int = 8) -> list[BreakpointSamples]:
    """Run the protocol over a full training suite.

    With ``auto_scale`` (default) kernels too short to host the
    configured number of breakpoints are repeated until they fit.
    ``workers`` fans the per-kernel campaigns out over a process pool;
    the result is bit-identical to the serial pass for a fixed seed
    (``fused`` included — see :func:`generate_chunks_for_suite`).
    """
    chunks = generate_chunks_for_suite(kernels, arch, power_model, config,
                                       auto_scale=auto_scale, workers=workers,
                                       stats=stats, fused=fused,
                                       fuse_width=fuse_width)
    return [bp for chunk in chunks for bp in chunk]
