"""The paper's data-generation protocol (§III-A).

For each training kernel, executed at the default V/f operating point:

1. Roughly every 100 µs a *breakpoint* is placed (one data-point cycle).
2. A reference replay from the breakpoint fixes the workload span: the
   instructions the GPU completes in ``segment_epochs`` epochs at the
   default operating point.  Its duration is ``T0``.
3. For each of the 6 operating points, the segment is replayed from a
   snapshot: one *feature collection window* epoch at the default
   point (counters are recorded), one *frequency scaling window* epoch
   at the trial point (its instruction count is recorded), then the
   default point again until the workload mark is reached.  The total
   replay duration is ``T_f``; the measured performance loss is
   ``(T_f - T0) / T0``.

Collecting over the full ~100 µs segment — not just the 20 µs of the
two windows — captures the delayed effects of a frequency change
(stalled warps resuming epochs later), exactly the error source the
paper's 100 µs collection period is chosen to mitigate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DatasetError, SimulationError
from ..gpu.arch import GPUArchConfig
from ..gpu.cluster import step_vector_for
from ..gpu.counters import CounterSet
from ..gpu.fused import (SharedContextCache, dump_shared, fuse_groups,
                         release_shared)
from ..gpu.interval_model import SolutionCache
from ..gpu.kernels import KernelProfile
from ..gpu.simulator import DEFAULT_EPOCH_S, GPUSimulator
from ..parallel import CampaignCheckpoint, CampaignStats, parallel_map
from ..power.model import PowerModel


@dataclass(frozen=True)
class ProtocolConfig:
    """Knobs of the data-generation protocol.

    Defaults follow the paper: 10 µs epochs, 100 µs data-point cycles
    (10 epochs), a 1-epoch feature window and a 1-epoch scaling window.
    """

    epoch_s: float = DEFAULT_EPOCH_S
    segment_epochs: int = 10
    max_breakpoints_per_kernel: int = 12
    augment_feature_levels: bool = True
    seed: int = 0
    #: Memoise interval-model solves across the 6-way V/f replays.
    #: Results are bit-identical either way (the cache stores exact
    #: inputs/outputs); the flag exists for benchmarking and as a
    #: diagnostic escape hatch.
    use_solution_cache: bool = True

    def __post_init__(self) -> None:
        if self.epoch_s <= 0:
            raise DatasetError("epoch length must be positive")
        if self.segment_epochs < 3:
            raise DatasetError(
                "segment must cover the two windows plus recovery epochs"
            )
        if self.max_breakpoints_per_kernel <= 0:
            raise DatasetError("need at least one breakpoint per kernel")


@dataclass
class BreakpointSamples:
    """All six variants measured at one breakpoint.

    ``losses`` is the canonical label: the excess time caused by the
    scaling window — *including* delayed effects surfacing later in the
    100 µs segment — normalised by the window's reference duration.
    This equals the sustained fractional slowdown of holding that
    operating point, so a runtime preset of 10 % genuinely bounds
    program slowdown near 10 % when applied every epoch.
    ``segment_losses`` keeps the raw ``(T_f - T0)/T0`` over the whole
    segment (the paper's literal formula); the two differ only by the
    constant factor ``segment/window``.
    """

    kernel_name: str
    breakpoint_index: int
    feature_counters: CounterSet
    t0_s: float
    levels: list[int] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    segment_losses: list[float] = field(default_factory=list)
    window_instructions: list[float] = field(default_factory=list)
    tf_s: list[float] = field(default_factory=list)
    #: Feature-window counters replayed at each operating point:
    #: (window_level, counters).  The paper always collects features at
    #: the default point, but at runtime the previous epoch runs at
    #: whatever level was last chosen — a train/serve distribution shift.
    #: These variants (same labels, same workload position) close it.
    feature_variants: list[tuple[int, CounterSet]] = field(
        default_factory=list)

    def minimal_level_for_preset(self, preset: float) -> int:
        """Oracle: the slowest level whose loss stays under ``preset``."""
        best = max(self.levels)  # default point always satisfies (loss ~ 0)
        for level, loss in zip(self.levels, self.losses):
            if loss <= preset and level < best:
                best = level
        return best


def _time_to_reach_mark(simulator: GPUSimulator, target: float,
                        epoch_s: float, max_epochs: int = 10_000) -> float:
    """Run at current levels until the mean-instruction mark, returning
    the elapsed time with sub-epoch (interpolated) resolution."""
    elapsed = 0.0
    epochs = 0
    while not simulator.finished:
        before = simulator.mean_instructions_done()
        if before >= target:
            return elapsed
        simulator.step_epoch()
        epochs += 1
        if epochs > max_epochs:
            raise SimulationError("workload mark never reached")
        after = simulator.mean_instructions_done()
        if after >= target:
            progress = after - before
            fraction = (target - before) / progress if progress > 0 else 1.0
            return elapsed + fraction * epoch_s
        elapsed += epoch_s
    return elapsed


def collect_breakpoint(simulator: GPUSimulator, breakpoint_index: int,
                       config: ProtocolConfig) -> BreakpointSamples:
    """Run the six-way replay for the breakpoint at the current state.

    The simulator must be positioned at the breakpoint (all clusters at
    the default level) and is left at the end of the reference segment
    so generation can continue to the next breakpoint.
    """
    arch = simulator.arch
    default_level = arch.vf_table.default_level
    snapshot = simulator.snapshot()

    # Reference segment: fixes the workload span and T0.
    simulator.set_all_levels(default_level)
    for _ in range(config.segment_epochs):
        if simulator.finished:
            break
        simulator.step_epoch()
    workload_mark = simulator.mean_instructions_done()
    end_state = simulator.snapshot()

    samples = None
    for level in range(arch.vf_table.num_levels):
        simulator.restore(snapshot)
        simulator.set_all_levels(default_level)
        if simulator.finished:
            raise DatasetError("breakpoint placed after kernel completion")
        feature_record = simulator.step_epoch()  # feature collection window
        if samples is None:
            samples = BreakpointSamples(
                kernel_name=simulator.kernel.name,
                breakpoint_index=breakpoint_index,
                feature_counters=feature_record.counters.copy(),
                t0_s=0.0,
            )
        simulator.set_all_levels(level)
        if simulator.finished:
            break
        scaling_record = simulator.step_epoch()  # frequency scaling window
        simulator.set_all_levels(default_level)
        tail = _time_to_reach_mark(simulator, workload_mark, config.epoch_s)
        total = 2 * config.epoch_s + tail
        samples.levels.append(level)
        samples.window_instructions.append(
            scaling_record.instructions / arch.num_clusters)
        samples.tf_s.append(total)

    if samples is None or not samples.levels:
        raise DatasetError("kernel too short for the requested breakpoint")

    # T0 is the default-level replay's duration (loss 0 by construction).
    try:
        default_idx = samples.levels.index(default_level)
    except ValueError as exc:
        raise DatasetError("default level missing from replay set") from exc
    samples.t0_s = samples.tf_s[default_idx]
    samples.segment_losses = [(tf - samples.t0_s) / samples.t0_s
                              for tf in samples.tf_s]
    # Window-normalised labels: excess time (with delayed effects) over
    # the reference duration of the one epoch that was rescaled.
    samples.losses = [(tf - samples.t0_s) / config.epoch_s
                      for tf in samples.tf_s]

    # Feature-window level augmentation: replay the feature window at
    # every operating point so the runtime counter distribution (the
    # previous epoch may run at any level) is covered by training data.
    samples.feature_variants = [(default_level, samples.feature_counters)]
    if config.augment_feature_levels:
        for level in range(arch.vf_table.num_levels):
            if level == default_level:
                continue
            simulator.restore(snapshot)
            simulator.set_all_levels(level)
            record = simulator.step_epoch()
            samples.feature_variants.append((level, record.counters.copy()))

    # Leave the simulator at the end of the reference segment.
    simulator.restore(end_state)
    return samples


def generate_for_kernel(kernel: KernelProfile, arch: GPUArchConfig,
                        power_model: PowerModel | None = None,
                        config: ProtocolConfig | None = None,
                        stats: CampaignStats | None = None,
                        solution_cache: SolutionCache | None = None
                        ) -> list[BreakpointSamples]:
    """Run the full protocol over one kernel.

    ``stats`` (when given) receives the simulator's interval-model
    solution-cache counters as ``solve_cache_hit`` / ``solve_cache_miss``
    — the replay protocol re-executes each workload stretch at up to
    seven operating points, which is where the hits come from.
    ``solution_cache`` shares one solve cache *across* kernels (the
    fused generation path); cache keys capture every solver input
    bit-exactly, so sharing never changes the samples, only hit rates —
    the caller then owns hit/miss accounting.
    """
    config = config or ProtocolConfig()
    simulator = GPUSimulator(arch, kernel, power_model or PowerModel(),
                             seed=config.seed, epoch_s=config.epoch_s,
                             use_solution_cache=config.use_solution_cache,
                             solution_cache=solution_cache)
    simulator.set_all_levels(arch.vf_table.default_level)
    breakpoints: list[BreakpointSamples] = []
    # Keep a margin so every replay has room to reach its workload mark
    # even at the slowest point (worst-case tail < 0.8x a segment).
    margin = config.segment_epochs
    while (len(breakpoints) < config.max_breakpoints_per_kernel
           and not simulator.finished):
        # Probe whether a full segment (plus margin) fits from here.
        probe = simulator.snapshot()
        fits = True
        for _ in range(config.segment_epochs + margin):
            if simulator.finished:
                fits = False
                break
            simulator.step_epoch()
        simulator.restore(probe)
        if not fits:
            break
        breakpoints.append(
            collect_breakpoint(simulator, len(breakpoints), config))
    cache = simulator.solution_cache
    if stats is not None and cache is not None:
        stats.count("solve_cache_hit", cache.hits)
        stats.count("solve_cache_miss", cache.misses)
    return breakpoints


def required_duration_s(config: ProtocolConfig) -> float:
    """Kernel duration needed to host ``max_breakpoints_per_kernel``.

    Each breakpoint consumes one reference segment, and the last one
    needs a two-segment margin so every replay can reach its workload
    mark even at the slowest operating point.
    """
    epochs = ((config.max_breakpoints_per_kernel + 3)
              * config.segment_epochs)
    return epochs * config.epoch_s


def scale_kernel_for_protocol(kernel: KernelProfile, arch: GPUArchConfig,
                              config: ProtocolConfig) -> KernelProfile:
    """Scale a kernel *up* (never down) to host the configured breakpoints.

    Training programs in the paper run long enough for breakpoints every
    ~100 µs; the evaluation-length (~300 µs) variants are built
    elsewhere.
    """
    from ..workloads.suites import estimate_default_duration
    estimated = estimate_default_duration(kernel, arch)
    needed = required_duration_s(config)
    if estimated >= needed:
        return kernel
    factor = int(np.ceil(needed / max(estimated, 1e-9)))
    return kernel.with_iterations(kernel.iterations * factor)


def _kernel_task(task: tuple) -> tuple[list[BreakpointSamples], dict[str, int]]:
    """Process-pool unit of work: one kernel's breakpoint/V/f replays.

    Module-level so it pickles by reference; every task builds its own
    simulator from the explicit config seed, so the output is identical
    whether tasks run serially in-process or fanned out over workers.
    Counters (solve-cache hits/misses) travel back with the chunk — a
    worker process cannot mutate the caller's :class:`CampaignStats`.
    """
    kernel, arch, power_model, config = task
    local = CampaignStats()
    chunk = generate_for_kernel(kernel, arch, power_model, config,
                                stats=local)
    return chunk, local.counters


#: Per-process cache of shared generation contexts, so a pool worker
#: attaches/unpickles each campaign's shared context once, not per group.
_DATAGEN_CONTEXTS = SharedContextCache()


def _fused_kernel_group(task: tuple
                        ) -> tuple[list[list[BreakpointSamples]],
                                   dict[str, int]]:
    """Process-pool unit of a fused generation campaign: one kernel group.

    ``task`` is ``(context_ref, kernel_indices)``; the context (scaled
    kernel suite, arch, power model, protocol config) is shipped once
    per campaign via shared memory and each group entry is just an
    index into it.  Kernels in a group run sequentially but share one
    :class:`SolutionCache` — the six-way V/f replays of different
    kernels hit the same interval-model solves, and cache keys are
    bit-exact, so the samples are identical to the serial path.
    Hit/miss counters are accounted once per group (the shared cache's
    totals), not per kernel.
    """
    ref, kernel_indices = task
    context = _DATAGEN_CONTEXTS.get(ref)
    kernels = context["kernels"]
    config = context["config"]
    shared_cache = (SolutionCache(payload_builder=step_vector_for)
                    if config.use_solution_cache else None)
    chunks = []
    for kernel_index in kernel_indices:
        chunks.append(generate_for_kernel(
            kernels[kernel_index], context["arch"], context["power_model"],
            config, solution_cache=shared_cache))
    local = CampaignStats()
    if shared_cache is not None:
        local.count("solve_cache_hit", shared_cache.hits)
        local.count("solve_cache_miss", shared_cache.misses)
    local.count("fused_tasks", len(list(kernel_indices)))
    return chunks, local.counters


def generate_chunks_for_suite(kernels: list[KernelProfile],
                              arch: GPUArchConfig,
                              power_model: PowerModel | None = None,
                              config: ProtocolConfig | None = None,
                              auto_scale: bool = True,
                              workers: int | None = None,
                              stats: CampaignStats | None = None,
                              checkpoint: CampaignCheckpoint | None = None,
                              retries: int = 2,
                              timeout_s: float | None = None,
                              fused: bool = False,
                              fuse_width: int = 8
                              ) -> list[list[BreakpointSamples]]:
    """Run the protocol over a suite, one breakpoint chunk per kernel.

    The per-kernel chunk is the parallel unit: breakpoints within a
    kernel share simulator state (each reference segment starts where
    the previous one ended) and must stay sequential, but kernels are
    fully independent.  Chunk order follows the input suite order, so
    flattening the chunks reproduces the serial output bit for bit.
    ``checkpoint``/``retries``/``timeout_s`` configure the resilient
    fan-out (see :func:`repro.parallel.parallel_map`).

    ``fused=True`` groups ``fuse_width`` consecutive kernels per worker
    task: the suite context ships to the pool once via shared memory
    and each group shares one interval-solution cache across its
    kernels.  Output is bit-identical to the serial path; only the
    solve hit rate and transport cost change.  Fused and non-fused
    checkpoints are incompatible (group- vs kernel-shaped results) —
    callers namespace the checkpoint key accordingly.
    """
    if not kernels:
        raise DatasetError("no kernels given")
    config = config or ProtocolConfig()
    scaled = []
    for kernel in kernels:
        if auto_scale:
            kernel = scale_kernel_for_protocol(kernel, arch, config)
        scaled.append(kernel)
    if fused:
        context = {"kernels": scaled, "arch": arch,
                   "power_model": power_model, "config": config}
        ref, block = dump_shared(context)
        groups = fuse_groups(list(range(len(scaled))), fuse_width)
        try:
            group_results = parallel_map(
                _fused_kernel_group, [(ref, group) for group in groups],
                workers=workers, stats=stats, stage="datagen",
                checkpoint=checkpoint, retries=retries, timeout_s=timeout_s)
        finally:
            release_shared(block)
        results = []
        for group_chunks, counters in group_results:
            for chunk in group_chunks:
                results.append((chunk, {}))
            if stats is not None:
                stats.merge_counters(counters)
        if stats is not None:
            stats.count("fused_groups", len(groups))
            stats.count("fused_shared_bytes", ref.shared_bytes)
    else:
        tasks = [(kernel, arch, power_model, config) for kernel in scaled]
        results = parallel_map(_kernel_task, tasks, workers=workers,
                               stats=stats, stage="datagen",
                               checkpoint=checkpoint, retries=retries,
                               timeout_s=timeout_s)
    chunks = []
    for chunk, counters in results:
        chunks.append(chunk)
        if stats is not None:
            for name, amount in counters.items():
                stats.count(name, amount)
    if not any(chunks):
        raise DatasetError("no breakpoints generated; kernels too short?")
    return chunks


def generate_for_suite(kernels: list[KernelProfile], arch: GPUArchConfig,
                       power_model: PowerModel | None = None,
                       config: ProtocolConfig | None = None,
                       auto_scale: bool = True,
                       workers: int | None = None,
                       stats: CampaignStats | None = None,
                       fused: bool = False,
                       fuse_width: int = 8) -> list[BreakpointSamples]:
    """Run the protocol over a full training suite.

    With ``auto_scale`` (default) kernels too short to host the
    configured number of breakpoints are repeated until they fit.
    ``workers`` fans the per-kernel campaigns out over a process pool;
    the result is bit-identical to the serial pass for a fixed seed
    (``fused`` included — see :func:`generate_chunks_for_suite`).
    """
    chunks = generate_chunks_for_suite(kernels, arch, power_model, config,
                                       auto_scale=auto_scale, workers=workers,
                                       stats=stats, fused=fused,
                                       fuse_width=fuse_width)
    return [bp for chunk in chunks for bp in chunk]
