"""Figure/table data export.

Writes experiment results as CSV/JSON so the paper's figures can be
re-plotted with any external tool.  (This repository deliberately has
no plotting dependency.)
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from ..errors import ReproError
from .experiments import Fig3Result, Fig4Result
from .runner import ComparisonResult


def export_comparison_csv(comparison: ComparisonResult,
                          path: str | Path) -> None:
    """Per-(policy, kernel) rows of one Fig. 4 panel."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["policy", "kernel", "time_s", "energy_j",
                         "normalized_edp", "normalized_latency", "epochs"])
        for run in comparison.runs:
            writer.writerow([run.policy_name, run.kernel_name,
                             f"{run.time_s:.9e}", f"{run.energy_j:.9e}",
                             f"{run.normalized_edp:.6f}",
                             f"{run.normalized_latency:.6f}", run.epochs])


def export_fig4_json(result: Fig4Result, path: str | Path) -> None:
    """Full Fig. 4 payload (per preset, per policy, per kernel)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {}
    for preset, comparison in result.comparisons.items():
        payload[f"{preset:.2f}"] = {
            policy: {
                run.kernel_name: {
                    "edp": run.normalized_edp,
                    "latency": run.normalized_latency,
                }
                for run in comparison.series(policy)
            }
            for policy in comparison.policies()
        }
    payload["headline"] = result.headline() if result.comparisons else {}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))


def export_fig3_csv(result: Fig3Result, path: str | Path) -> None:
    """Both Fig. 3 frontiers as flat rows."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["method", "label", "flops", "accuracy_pct",
                         "mape_pct", "sparsity"])
        for point in result.layerwise + result.pruning:
            writer.writerow([point.method, point.label, point.flops,
                             f"{point.accuracy_pct:.4f}",
                             f"{point.mape_pct:.4f}",
                             f"{point.sparsity:.4f}"])


def load_fig4_json(path: str | Path) -> dict:
    """Load a payload written by :func:`export_fig4_json`."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no exported figure at {path}")
    return json.loads(path.read_text())
