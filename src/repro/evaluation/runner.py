"""Policy evaluation runner.

Runs DVFS policies over evaluation kernels and reports the paper's
metrics: normalized EDP and normalized latency against the
default-operating-point baseline (Fig. 4).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from functools import partial

import numpy as np

from ..errors import SimulationError
from ..gpu.arch import GPUArchConfig
from ..gpu.cluster import quantum_row_for
from ..gpu.fused import (FusedCampaignEngine, SharedContextCache,
                         dump_shared, fuse_groups, release_shared)
from ..gpu.interval_model import SolutionCache
from ..gpu.kernels import KernelProfile
from ..gpu.simulator import GPUSimulator
from ..parallel import CampaignCheckpoint, CampaignStats, parallel_map
from ..power.model import PowerModel
from ..core.policy import StaticPolicy
from ..units import us


@dataclass
class PolicyRun:
    """One (policy, kernel) measurement."""

    policy_name: str
    kernel_name: str
    time_s: float
    energy_j: float
    normalized_edp: float
    normalized_latency: float
    epochs: int

    @property
    def edp(self) -> float:
        """Raw energy-delay product."""
        return self.energy_j * self.time_s

    def to_payload(self) -> dict:
        """JSON-ready dict (for the on-disk evaluation-grid cache)."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "PolicyRun":
        """Inverse of :meth:`to_payload`."""
        return cls(**payload)


@dataclass
class ComparisonResult:
    """All (policy, kernel) runs of one evaluation campaign."""

    preset: float
    runs: list[PolicyRun] = field(default_factory=list)

    def policies(self) -> list[str]:
        """Policy names in first-seen order."""
        seen: list[str] = []
        for run in self.runs:
            if run.policy_name not in seen:
                seen.append(run.policy_name)
        return seen

    def kernels(self) -> list[str]:
        """Kernel names in first-seen order."""
        seen: list[str] = []
        for run in self.runs:
            if run.kernel_name not in seen:
                seen.append(run.kernel_name)
        return seen

    def series(self, policy_name: str) -> list[PolicyRun]:
        """All runs of one policy, kernel order preserved."""
        return [r for r in self.runs if r.policy_name == policy_name]

    def mean_normalized_edp(self, policy_name: str) -> float:
        """Average normalized EDP of a policy (Fig. 4 bar average)."""
        series = self.series(policy_name)
        if not series:
            raise SimulationError(f"no runs for policy {policy_name!r}")
        return float(np.mean([r.normalized_edp for r in series]))

    def mean_normalized_latency(self, policy_name: str) -> float:
        """Average normalized latency of a policy."""
        series = self.series(policy_name)
        if not series:
            raise SimulationError(f"no runs for policy {policy_name!r}")
        return float(np.mean([r.normalized_latency for r in series]))

    def edp_improvement_vs(self, policy_name: str,
                           reference_name: str) -> float:
        """Fractional mean-EDP improvement of ``policy`` vs ``reference``.

        Positive = ``policy`` is better (lower EDP).  This is the
        statistic behind the paper's headline percentages.
        """
        policy_edp = self.mean_normalized_edp(policy_name)
        reference_edp = self.mean_normalized_edp(reference_name)
        return 1.0 - policy_edp / reference_edp

    def to_payload(self) -> dict:
        """JSON-ready dict (for the on-disk evaluation-grid cache)."""
        return {"preset": self.preset,
                "runs": [run.to_payload() for run in self.runs]}

    @classmethod
    def from_payload(cls, payload: dict) -> "ComparisonResult":
        """Inverse of :meth:`to_payload`."""
        return cls(preset=payload["preset"],
                   runs=[PolicyRun.from_payload(r)
                         for r in payload["runs"]])


def run_policy_on_kernel(policy, kernel: KernelProfile, arch: GPUArchConfig,
                         power_model: PowerModel | None = None,
                         seed: int = 0,
                         epoch_s: float = us(10)) -> tuple[float, float, int]:
    """Run one policy over one kernel; returns (time, energy, epochs)."""
    simulator = GPUSimulator(arch, kernel, power_model or PowerModel(),
                             seed=seed, epoch_s=epoch_s)
    result = simulator.run(policy, keep_records=False)
    return result.time_s, result.energy_j, result.epochs


def _policy_task(task: tuple) -> tuple[float, float, int, dict[str, int]]:
    """Process-pool unit of evaluation: one (policy, kernel) run.

    Takes the *factory* rather than a policy instance so every run gets
    a fresh policy, and builds its own simulator from the explicit seed
    — identical results whether run in-process or in a worker.  The
    policy's :meth:`observability_counters` (guard trips, injected
    faults, calibration anomalies) travel back with the metrics so the
    caller can fold them into campaign ``--stats``.
    """
    factory, kernel, arch, power_model, seed, epoch_s = task
    policy = factory()
    time_s, energy_j, epochs = run_policy_on_kernel(
        policy, kernel, arch, power_model, seed=seed, epoch_s=epoch_s)
    counters_fn = getattr(policy, "observability_counters", None)
    counters = counters_fn() if callable(counters_fn) else {}
    return time_s, energy_j, epochs, counters


#: Per-process cache of shared evaluation contexts, so a pool worker
#: attaches/unpickles each campaign's shared weights once, not per group.
_EVAL_CONTEXTS = SharedContextCache()


def _fused_eval_group(task: tuple) -> tuple[list, dict[str, int]]:
    """Process-pool unit of a fused evaluation campaign: one task group.

    ``task`` is ``(context_ref, entries)`` where the context (policy
    factories, kernels, arch, power model — with model weights living
    in shared memory) is shipped once per campaign and each entry is a
    small ``(factory_index, kernel_index, seed, epoch_s)`` tuple.  The
    group's simulators share one :class:`SolutionCache`, optionally
    pre-warmed from the context, and advance in lockstep through the
    fused engine.  Returns the serial-shaped per-task outcomes plus the
    engine's ``fused_*`` counters.
    """
    ref, entries = task
    context = _EVAL_CONTEXTS.get(ref)
    factories = context["factories"]
    kernels = context["kernels"]
    shared_cache = SolutionCache(payload_builder=quantum_row_for)
    warm_entries = context.get("cache_entries")
    if warm_entries:
        shared_cache.import_entries(warm_entries)
    engine = FusedCampaignEngine()
    # One noise cache per group: every task replaying the same
    # (kernel, seed) — the baseline plus each policy — shares the
    # position-indexed noise tracks instead of regenerating them.
    noise_cache: dict = {}
    num_sim_clusters = 0
    for position, (factory_index, kernel_index, seed, epoch_s) \
            in enumerate(entries):
        simulator = GPUSimulator(
            context["arch"], kernels[kernel_index], context["power_model"],
            seed=seed, epoch_s=epoch_s, solution_cache=shared_cache,
            noise_cache=noise_cache)
        num_sim_clusters += len(simulator.clusters)
        engine.add_task(position, simulator, factories[factory_index](),
                        keep_records=False)
    engine._count("fused_noise_shared", num_sim_clusters - len(noise_cache))
    results = engine.run()
    outcomes = []
    for task_state, result in zip(engine.tasks, results):
        counters_fn = getattr(task_state.policy, "observability_counters",
                              None)
        counters = counters_fn() if callable(counters_fn) else {}
        outcomes.append((result.time_s, result.energy_j, result.epochs,
                         counters))
    return outcomes, dict(engine.counters)


def compare_policies(policy_factories: dict[str, callable],
                     kernels: list[KernelProfile], arch: GPUArchConfig,
                     preset: float,
                     power_model: PowerModel | None = None,
                     seed: int = 0,
                     epoch_s: float = us(10),
                     workers: int | None = None,
                     stats: CampaignStats | None = None,
                     checkpoint: CampaignCheckpoint | None = None,
                     retries: int = 2,
                     timeout_s: float | None = None,
                     fused: bool = False,
                     fuse_width: int = 8,
                     cache_entries: dict | None = None) -> ComparisonResult:
    """Evaluate a set of policies over a kernel list.

    ``policy_factories`` maps display names to zero-argument callables
    producing a *fresh* policy (stateful policies like F-LEMMA must not
    be reused across runs).  A default-level static baseline is always
    run for normalization.  ``workers`` fans the policy × kernel grid
    out over a process pool (picklable factories — e.g.
    ``functools.partial`` over module-level classes — required to
    actually parallelise; anything else falls back to serial).  Policy
    observability counters (``guard_*``, ``fault_*``,
    ``calibration_anomalies``) are folded into ``stats``;
    ``checkpoint``/``retries``/``timeout_s`` configure the resilient
    fan-out (see :func:`repro.parallel.parallel_map`).

    ``fused=True`` co-simulates consecutive runs of ``fuse_width``
    tasks in lockstep through :class:`FusedCampaignEngine` — results
    are bit-identical to the serial path (per-task RNG streams and
    final-epoch truncation are preserved exactly) while sharing one
    interval-solution cache per group, batching the counter build
    across tasks and shipping model weights to worker processes once
    via shared memory.  ``cache_entries`` optionally pre-warms each
    group's solution cache from a prior run's
    :meth:`SolutionCache.export_entries`.
    """
    power_model = power_model or PowerModel()
    names = list(policy_factories)
    baseline_factory = partial(StaticPolicy, arch.vf_table.default_level)
    if fused:
        factories = [baseline_factory] + [policy_factories[name]
                                          for name in names]
        entries = []
        for kernel_index in range(len(kernels)):
            for factory_index in range(len(factories)):
                entries.append((factory_index, kernel_index, seed, epoch_s))
        context = {"factories": factories, "kernels": list(kernels),
                   "arch": arch, "power_model": power_model}
        if cache_entries:
            context["cache_entries"] = cache_entries
        ref, block = dump_shared(context)
        groups = fuse_groups(entries, fuse_width)
        try:
            group_results = parallel_map(
                _fused_eval_group, [(ref, group) for group in groups],
                workers=workers, stats=stats, stage="evaluation",
                checkpoint=checkpoint, retries=retries, timeout_s=timeout_s)
        finally:
            release_shared(block)
        outcomes = []
        for group_outcomes, fused_counters in group_results:
            outcomes.extend(group_outcomes)
            if stats is not None:
                stats.merge_counters(fused_counters)
        if stats is not None:
            stats.count("fused_groups", len(groups))
            stats.count("fused_shared_bytes", ref.shared_bytes)
    else:
        tasks = []
        for kernel in kernels:
            tasks.append((baseline_factory, kernel, arch, power_model, seed,
                          epoch_s))
            for name in names:
                tasks.append((policy_factories[name], kernel, arch,
                              power_model, seed, epoch_s))
        outcomes = parallel_map(_policy_task, tasks, workers=workers,
                                stats=stats, stage="evaluation",
                                checkpoint=checkpoint, retries=retries,
                                timeout_s=timeout_s)

    result = ComparisonResult(preset=preset)
    cursor = iter(outcomes)
    for kernel in kernels:
        base_time, base_energy, base_epochs, _ = next(cursor)
        base_edp = base_energy * base_time
        result.runs.append(PolicyRun(
            policy_name="baseline", kernel_name=kernel.name,
            time_s=base_time, energy_j=base_energy,
            normalized_edp=1.0, normalized_latency=1.0,
            epochs=base_epochs))
        for name in names:
            time_s, energy_j, epochs, counters = next(cursor)
            if stats is not None:
                stats.merge_counters(counters)
            result.runs.append(PolicyRun(
                policy_name=name, kernel_name=kernel.name,
                time_s=time_s, energy_j=energy_j,
                normalized_edp=(energy_j * time_s) / base_edp,
                normalized_latency=time_s / base_time,
                epochs=epochs))
    return result
