"""Fleet-chaos harness: randomized node-fault trains over the replay.

The chaos soak (:mod:`repro.evaluation.soak`) batters a *single*
controller stack; this harness batters the *fleet*: each trial draws a
seeded :class:`~repro.faults.NodeFaultPlan` (crashes, hangs, thermal
runaway, sensor-corruption storms) over a fresh arrival trace and
replays it through the :class:`~repro.fleet.scheduler.ClusterScheduler`
with migration and admission control live.  Four invariants are
asserted per trial:

1. **Job conservation** — ``completed + shed == submitted`` with
   unique, disjoint job ids: no job is ever lost to a crash or counted
   twice through a migration.
2. **Byte-stable export** — the same seed yields a byte-identical
   :class:`~repro.fleet.metrics.FleetResult` payload at any worker
   count, faults and migrations included (checked by re-running the
   first ``determinism_trials`` trials serial vs. parallel).
3. **Bounded recovery** — every quarantine resolves: the number of
   ``RECOVERING`` transitions matches the quarantines minus nodes
   whose timed outage legitimately extends past the replay's last
   event, so a node can never wedge in quarantine.
4. **Shed discipline** — admission control never sheds a
   latency-class job (only migration exhaustion or a fleet-wide
   permanent outage may), and every shed carries a known reason.

A crash-write torture phase (reusing
:func:`~repro.evaluation.soak.crash_write_torture`) additionally kills
the export path mid-write and asserts readers never observe a torn
payload.  ``repro-ssmdvfs fleet-chaos`` and the CI
``fleet-chaos-smoke`` target gate on :attr:`FleetChaosResult.passed`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import FleetError
from ..faults import NodeFaultConfig, NodeFaultPlan, derive_fault_seed
from ..fleet.jobs import LATENCY, TraceConfig, build_trace
from ..fleet.metrics import FleetResult
from ..fleet.queue import AdmissionConfig
from ..fleet.scheduler import ClusterScheduler, MigrationConfig
from ..fleet.tracker import QUARANTINED, HealthPolicy, ThermalConfig
from ..gpu.arch import GPUArchConfig
from ..parallel import CampaignStats
from ..store import ArtifactStore, atomic_write_text
from .soak import crash_write_torture


@dataclass(frozen=True)
class FleetChaosConfig:
    """Knobs of one fleet-chaos campaign (all invariants included).

    Each of the ``trials`` trials derives its own fault-train and
    trace seed from ``seed``, so the whole campaign is a pure function
    of this config.  ``determinism_trials`` of them are replayed twice
    (serial, then parallel) to pin invariant 2 without doubling the
    cost of every trial.  ``horizon_slack_s`` extends the fault-plan
    horizon past the last arrival so late faults can still strike
    in-flight work.
    """

    trace: str = "burst"
    jobs: int = 24
    nodes: int = 4
    load: float = 1.1
    trials: int = 3
    determinism_trials: int = 1
    seed: int = 0
    faults: NodeFaultConfig = field(default_factory=lambda: NodeFaultConfig(
        crash_rate=0.5, hang_rate=0.3, thermal_rate=0.4, storm_rate=0.4))
    migration: MigrationConfig = field(default_factory=MigrationConfig)
    admission: AdmissionConfig = field(
        default_factory=lambda: AdmissionConfig(enabled=True))
    health: HealthPolicy = field(default_factory=HealthPolicy)
    horizon_slack_s: float = 2e-3
    crash_write_trials: int = 16

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise FleetError("fleet chaos needs at least one trial")
        if not 0 <= self.determinism_trials <= self.trials:
            raise FleetError("determinism_trials must be within "
                             "[0, trials]")
        if self.horizon_slack_s < 0:
            raise FleetError("horizon_slack_s cannot be negative")
        if self.crash_write_trials < 0:
            raise FleetError("crash_write_trials cannot be negative")
        if not self.faults.any_active:
            raise FleetError("fleet chaos without any active fault rate "
                             "tests nothing; enable at least one")


@dataclass
class ChaosTrial:
    """One randomized fault train replayed over one trace."""

    trial: int
    seed: int
    fault_counts: dict[str, int]
    submitted: int
    completed: int
    shed: int
    migrations: int
    quarantines: int
    recoveries: int
    still_quarantined: int
    conserved: bool
    byte_stable: bool | None  # None when the dual-run check was skipped
    slo_violation_rate: float
    shed_rate: float

    def to_payload(self) -> dict:
        """JSON-ready dict."""
        return {
            "trial": self.trial,
            "seed": self.seed,
            "fault_counts": dict(sorted(self.fault_counts.items())),
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "migrations": self.migrations,
            "quarantines": self.quarantines,
            "recoveries": self.recoveries,
            "still_quarantined": self.still_quarantined,
            "conserved": self.conserved,
            "byte_stable": self.byte_stable,
            "slo_violation_rate": self.slo_violation_rate,
            "shed_rate": self.shed_rate,
        }


@dataclass
class FleetChaosResult:
    """Aggregate chaos outcome: per-trial records + invariant verdicts."""

    policy_name: str
    nodes: int
    jobs: int
    seed: int
    trials: list[ChaosTrial] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    crash_trials: int = 0
    crash_torn_reads: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every fleet invariant held in every trial."""
        return not self.violations

    def merge_counters(self, counters: dict[str, int]) -> None:
        """Accumulate one replay's counters into the campaign totals."""
        for name, amount in counters.items():
            self.counters[name] = self.counters.get(name, 0) + int(amount)

    def to_payload(self) -> dict:
        """JSON-ready dict (no wall-clock: seeded runs export bit-equal)."""
        return {
            "policy": self.policy_name,
            "nodes": self.nodes,
            "jobs": self.jobs,
            "seed": self.seed,
            "passed": self.passed,
            "trials": [trial.to_payload() for trial in self.trials],
            "counters": dict(sorted(self.counters.items())),
            "crash_trials": self.crash_trials,
            "crash_torn_reads": self.crash_torn_reads,
            "violations": list(self.violations),
        }

    def export_json(self, path: str | Path) -> Path:
        """Atomically write the payload as JSON; returns the path."""
        path = Path(path)
        atomic_write_text(path, json.dumps(self.to_payload(), indent=2,
                                           sort_keys=True))
        return path

    def render(self) -> str:
        """Human-readable chaos report."""
        lines = [f"fleet chaos  policy={self.policy_name}  "
                 f"nodes={self.nodes}  jobs={self.jobs}  seed={self.seed}",
                 f"{'trial':>5s} {'faults':>6s} {'done':>5s} {'shed':>5s} "
                 f"{'migr':>5s} {'quar':>5s} {'recov':>5s} "
                 f"{'conserved':>9s} {'stable':>6s}"]
        for trial in self.trials:
            stable = ("-" if trial.byte_stable is None
                      else ("yes" if trial.byte_stable else "NO"))
            lines.append(
                f"{trial.trial:5d} {sum(trial.fault_counts.values()):6d} "
                f"{trial.completed:5d} {trial.shed:5d} "
                f"{trial.migrations:5d} {trial.quarantines:5d} "
                f"{trial.recoveries:5d} "
                f"{'yes' if trial.conserved else 'NO':>9s} {stable:>6s}")
        lines.append(f"crash-write torture: {self.crash_trials} kills, "
                     f"{self.crash_torn_reads} torn reads")
        if self.violations:
            lines.append("FLEET INVARIANT VIOLATIONS:")
            lines.extend(f"  - {violation}"
                         for violation in self.violations)
        else:
            lines.append("all fleet invariants held")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The chaos campaign
# ---------------------------------------------------------------------------

def _run_trial(arch: GPUArchConfig, factory, policy_name: str,
               config: FleetChaosConfig, trial_seed: int,
               workers: int | None, stats: CampaignStats) -> FleetResult:
    """One seeded replay: trace + fault train + scheduler."""
    trace_config = TraceConfig(trace=config.trace, jobs=config.jobs,
                               nodes=config.nodes, load=config.load,
                               seed=trial_seed)
    jobs = build_trace(arch, trace_config)
    horizon_s = max(job.arrival_s for job in jobs) + config.horizon_slack_s
    plan = NodeFaultPlan.build(config.faults.with_seed(trial_seed),
                               config.nodes, horizon_s)
    scheduler = ClusterScheduler(
        arch, factory, num_nodes=config.nodes, policy_name=policy_name,
        seed=trial_seed, thermal=ThermalConfig(), workers=workers,
        stats=stats, fault_plan=plan, migration=config.migration,
        admission=config.admission, health=config.health)
    return scheduler.run(jobs, trace_name=config.trace)


def _check_trial(result: FleetResult, record: ChaosTrial,
                 violations: list[str]) -> None:
    """Assert the per-trial fleet invariants, appending violations."""
    prefix = f"trial {record.trial}"
    if not record.conserved:
        violations.append(
            f"{prefix}: job conservation broken — submitted "
            f"{record.submitted} != completed {record.completed} + shed "
            f"{record.shed} (or duplicated ids)")
    if record.byte_stable is False:
        violations.append(
            f"{prefix}: export payload differs between serial and "
            f"parallel replay of the same seed")
    if record.recoveries < record.quarantines - record.still_quarantined:
        violations.append(
            f"{prefix}: {record.quarantines} quarantines but only "
            f"{record.recoveries} recoveries with "
            f"{record.still_quarantined} outages still open — a node "
            f"wedged in quarantine")
    for shed in result.shed:
        if shed.job_class == LATENCY and shed.reason == "unmeetable":
            violations.append(
                f"{prefix}: admission control shed latency-class job "
                f"{shed.job_id} — latency jobs must run and be "
                f"accounted as SLO violations instead")


def run_fleet_chaos(arch: GPUArchConfig, factory,
                    config: FleetChaosConfig | None = None, *,
                    policy_name: str = "policy",
                    workers: int | None = None,
                    store_root: str | Path | None = None,
                    stats: CampaignStats | None = None
                    ) -> FleetChaosResult:
    """Run the fleet-chaos campaign; returns per-trial records + verdicts.

    ``factory`` is a picklable zero-arg per-node policy factory (see
    :func:`repro.fleet.policy_factory`).  When ``store_root`` is given,
    the crash-write torture phase runs against an
    :class:`~repro.store.ArtifactStore` there using the first trial's
    export payload as the victim artifact.  The whole result is a pure
    function of ``(arch, factory, config)``.
    """
    config = config or FleetChaosConfig()
    stats = stats if stats is not None else CampaignStats()
    result = FleetChaosResult(policy_name=policy_name, nodes=config.nodes,
                              jobs=config.jobs, seed=config.seed)

    first_payload: bytes | None = None
    for trial in range(config.trials):
        trial_seed = derive_fault_seed(config.seed, "fleet-chaos", trial)
        fleet = _run_trial(arch, factory, policy_name, config, trial_seed,
                           workers, stats)
        byte_stable: bool | None = None
        if trial < config.determinism_trials:
            serial_stats = CampaignStats()
            replay = _run_trial(arch, factory, policy_name, config,
                                trial_seed, 1, serial_stats)
            reference = json.dumps(fleet.to_payload(), sort_keys=True)
            byte_stable = (json.dumps(replay.to_payload(),
                                      sort_keys=True) == reference)
        payload = json.dumps(fleet.to_payload(), indent=2,
                             sort_keys=True).encode()
        if first_payload is None:
            first_payload = payload

        counters = fleet.counters
        quarantines = counters.get("node_state_quarantined", 0)
        recoveries = counters.get("node_state_recovering", 0)
        still_quarantined = sum(
            1 for node in fleet.node_summaries
            if node["health"] == QUARANTINED)
        record = ChaosTrial(
            trial=trial, seed=trial_seed,
            fault_counts=_fault_counts(fleet.fault_events),
            submitted=fleet.jobs_submitted,
            completed=len(fleet.outcomes), shed=len(fleet.shed),
            migrations=fleet.migrations_total(),
            quarantines=quarantines, recoveries=recoveries,
            still_quarantined=still_quarantined,
            conserved=fleet.conserved, byte_stable=byte_stable,
            slo_violation_rate=fleet.slo_violation_rate(),
            shed_rate=fleet.shed_rate())
        result.trials.append(record)
        result.merge_counters(counters)
        result.merge_counters(fleet.policy_counters)
        result.merge_counters({"fleet_chaos_trials": 1})
        _check_trial(fleet, record, result.violations)

    if store_root is not None and config.crash_write_trials:
        store = ArtifactStore(store_root)
        result.crash_trials, result.crash_torn_reads = crash_write_torture(
            store, "fleet-chaos-export", first_payload or b"chaos",
            config.crash_write_trials, seed=config.seed)
        if result.crash_torn_reads:
            result.violations.append(
                f"crash-write torture observed {result.crash_torn_reads} "
                f"torn reads in {result.crash_trials} kills")
    return result


def _fault_counts(fault_events: list[dict]) -> dict[str, int]:
    """``{kind: count}`` over an exported fault-event list."""
    counts: dict[str, int] = {}
    for event in fault_events:
        counts[event["kind"]] = counts.get(event["kind"], 0) + 1
    return counts
