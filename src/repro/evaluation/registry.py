"""Experiment registry.

A single machine-readable index of every paper artefact this repository
reproduces: its id, what the paper reports, which modules implement the
pieces, and which benchmark regenerates it.  ``DESIGN.md``'s experiment
index and the CLI's ``experiments`` listing are views of this table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError


@dataclass(frozen=True)
class ExperimentEntry:
    """One reproducible paper artefact."""

    experiment_id: str
    title: str
    paper_claim: str
    modules: tuple[str, ...]
    bench: str
    driver: str
    extension: bool = False


_REGISTRY: tuple[ExperimentEntry, ...] = (
    ExperimentEntry(
        experiment_id="table1",
        title="Feature selection (Table I)",
        paper_claim="RFE keeps 3 indirect counters + power; -0.48 pp acc",
        modules=("repro.datagen.rfe", "repro.datagen.features",
                 "repro.nn.trainer"),
        bench="benchmarks/bench_table1_rfe.py",
        driver="repro.evaluation.experiments.run_table1",
    ),
    ExperimentEntry(
        experiment_id="table2",
        title="Final model information (Table II)",
        paper_claim="6960 -> 366 FLOPs; 69.8 -> 67.4 % acc; 3.4 -> 4.6 % MAPE",
        modules=("repro.nn.compress", "repro.nn.prune", "repro.nn.flops"),
        bench="benchmarks/bench_table2_model.py",
        driver="repro.evaluation.experiments.run_table2",
    ),
    ExperimentEntry(
        experiment_id="fig3",
        title="FLOPs vs accuracy/MAPE frontiers (Fig. 3)",
        paper_claim="sharp knee below a FLOPs threshold; pruning frontier wins",
        modules=("repro.nn.compress", "repro.nn.prune"),
        bench="benchmarks/bench_fig3_compression.py",
        driver="repro.evaluation.experiments.run_fig3",
    ),
    ExperimentEntry(
        experiment_id="fig4",
        title="Normalized EDP & latency (Fig. 4 + §V-C headline)",
        paper_claim="-11.09 % EDP vs baseline; -13.17 % vs PCSTALL; "
                    "-36.80 % vs F-LEMMA; latency within preset",
        modules=("repro.core.controller", "repro.baselines.pcstall",
                 "repro.baselines.flemma", "repro.evaluation.runner"),
        bench="benchmarks/bench_fig4_edp_latency.py",
        driver="repro.evaluation.experiments.run_fig4",
    ),
    ExperimentEntry(
        experiment_id="hw",
        title="ASIC implementation (§V-D)",
        paper_claim="0.0080 mm^2 @28 nm; 2.5 mW; 192 cycles (1.65 % of epoch)",
        modules=("repro.hardware.asic", "repro.hardware.scaling"),
        bench="benchmarks/bench_hw_asic.py",
        driver="repro.evaluation.experiments.run_hardware",
    ),
    ExperimentEntry(
        experiment_id="ablate-calibrator",
        title="Calibrator ablation (§V-C claim)",
        paper_claim="Calibrator pulls preset-violating programs back under",
        modules=("repro.core.controller",),
        bench="benchmarks/bench_ablation_calibrator.py",
        driver="(bench-local)",
        extension=True,
    ),
    ExperimentEntry(
        experiment_id="ablate-epoch",
        title="Epoch-length ablation (§I premise)",
        paper_claim="microsecond epochs beat coarse epochs on swinging phases",
        modules=("repro.core.policy", "repro.gpu.simulator"),
        bench="benchmarks/bench_ablation_epoch_length.py",
        driver="(bench-local)",
        extension=True,
    ),
    ExperimentEntry(
        experiment_id="ablate-quant",
        title="Controller precision ablation (§V-D adjacent)",
        paper_claim="FP32 module; 16-bit fixed point is behaviourally equal",
        modules=("repro.nn.quant", "repro.core.combined"),
        bench="benchmarks/bench_ablation_quantization.py",
        driver="(bench-local)",
        extension=True,
    ),
    ExperimentEntry(
        experiment_id="ablate-thermal",
        title="Thermal headroom (extension)",
        paper_claim="DVFS lowers sustained temperature (leakage feedback)",
        modules=("repro.power.thermal",),
        bench="benchmarks/bench_ablation_thermal.py",
        driver="(bench-local)",
        extension=True,
    ),
    ExperimentEntry(
        experiment_id="robustness",
        title="Counter noise + seed sweep (extension)",
        paper_claim="graceful degradation; stable aggregates",
        modules=("repro.evaluation.robustness",),
        bench="benchmarks/bench_robustness.py",
        driver="(bench-local)",
        extension=True,
    ),
    ExperimentEntry(
        experiment_id="mixed-tenancy",
        title="Heterogeneous multi-tenant GPU (extension)",
        paper_claim="per-cluster DVFS beats every chip-wide static level",
        modules=("repro.gpu.simulator", "repro.core.controller"),
        bench="benchmarks/bench_mixed_tenancy.py",
        driver="(bench-local)",
        extension=True,
    ),
    ExperimentEntry(
        experiment_id="fleet-replay",
        title="Fleet-scale trace replay over per-GPU controllers (extension)",
        paper_claim="(per-node DVFS holds fleet SLOs under bursty load)",
        modules=("repro.fleet.scheduler", "repro.fleet.jobs",
                 "repro.fleet.metrics"),
        bench="benchmarks/bench_mixed_tenancy.py",
        driver="repro.cli.cmd_fleet",
        extension=True,
    ),
    ExperimentEntry(
        experiment_id="fleet-chaos",
        title="Fleet resilience under node-fault trains (extension)",
        paper_claim="(no job lost, byte-stable replay, bounded recovery "
                    "under crash/hang/thermal/storm chaos)",
        modules=("repro.evaluation.fleet_chaos", "repro.faults",
                 "repro.fleet.tracker"),
        bench="benchmarks/bench_robustness.py",
        driver="repro.cli.cmd_fleet_chaos",
        extension=True,
    ),
    ExperimentEntry(
        experiment_id="serve-chaos",
        title="Always-on serving runtime under fault trains (extension)",
        paper_claim="(no invalid decision served, request conservation, "
                    "bounded recovery, byte-stable replay, shed "
                    "discipline under serving chaos)",
        modules=("repro.serve", "repro.evaluation.serve_chaos",
                 "repro.faults"),
        bench="benchmarks/bench_robustness.py",
        driver="repro.cli.cmd_serve_chaos",
        extension=True,
    ),
    ExperimentEntry(
        experiment_id="ablate-event-driven",
        title="Event-driven inference gating (extension)",
        paper_claim="(most per-epoch inferences are skippable at no cost)",
        modules=("repro.core.event_driven",),
        bench="benchmarks/bench_ablation_event_driven.py",
        driver="(bench-local)",
        extension=True,
    ),
    ExperimentEntry(
        experiment_id="ablate-vf-granularity",
        title="V/f operating-point granularity (extension)",
        paper_claim="(6-point table captures most of the oracle headroom)",
        modules=("repro.gpu.vf", "repro.core.policy"),
        bench="benchmarks/bench_ablation_vf_granularity.py",
        driver="(bench-local)",
        extension=True,
    ),
    ExperimentEntry(
        experiment_id="transfer-study",
        title="Trained controller on the per-cycle substrate (validation)",
        paper_claim="(the learned mapping is physics, not substrate)",
        modules=("repro.gpu.detailed.runner", "repro.core.controller"),
        bench="benchmarks/bench_transfer_study.py",
        driver="(bench-local)",
        extension=True,
    ),
    ExperimentEntry(
        experiment_id="model-agreement",
        title="Interval vs per-cycle simulator agreement (validation)",
        paper_claim="(substrate credibility, not a paper artefact)",
        modules=("repro.gpu.interval_model", "repro.gpu.detailed"),
        bench="benchmarks/bench_model_agreement.py",
        driver="(bench-local)",
        extension=True,
    ),
)


def all_experiments() -> tuple[ExperimentEntry, ...]:
    """Every registered experiment, paper artefacts first."""
    return _REGISTRY


def paper_experiments() -> tuple[ExperimentEntry, ...]:
    """Only the paper's own tables/figures."""
    return tuple(e for e in _REGISTRY if not e.extension)


def get_experiment(experiment_id: str) -> ExperimentEntry:
    """Look an experiment up by id."""
    for entry in _REGISTRY:
        if entry.experiment_id == experiment_id:
            return entry
    raise ReproError(f"unknown experiment {experiment_id!r}")


def render_registry(extensions: bool = True) -> str:
    """Text table of the registry."""
    from .reporting import format_table
    rows = []
    for entry in _REGISTRY:
        if not extensions and entry.extension:
            continue
        rows.append([entry.experiment_id, entry.title,
                     "ext" if entry.extension else "paper", entry.bench])
    return format_table(["Id", "Artefact", "Kind", "Bench"], rows,
                        title="Experiment registry")
