"""Serve-chaos certification: seeded fault trains against the runtime.

The chaos soak (PR 5) certifies the *controller*; the fleet chaos
harness (PR 8) certifies the *scheduler*; this harness certifies the
always-on **serving runtime**: it replays seeded fault trains — worker
crashes and hangs, inference stalls, telemetry storms and gaps,
poisoned online updates, overload bursts — through full
:class:`~repro.serve.runtime.ServingRuntime` runs and asserts five
invariants:

1. **No invalid decision is ever served.**  The runtime's
   ``serve_invalid_decisions`` counter must stay zero and every served
   level must lie inside the V/f table.
2. **Conservation** — ``served + shed + failed == submitted`` for
   every trial (no request lost or double-accounted across crashes,
   restarts and sheds).
3. **Bounded recovery** — every worker outage resolves within the
   recovery budget and no worker is still down (excluding terminal
   quarantine) after the drain window.
4. **Determinism** — a fixed seed exports a byte-identical payload at
   any phase-1 worker count (checked by dual serial/parallel replay).
5. **Shed discipline** — no deadline-class request is ever shed while
   the system is under capacity (audited through the queue's
   per-shed culpability records).

A crash-write torture pass (shared with the soak) additionally kills
the artifact store mid-write at sampled offsets and asserts no torn
read.  The CLI gate is ``repro-ssmdvfs serve-chaos``: exit 0 only when
every invariant held.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ServeError
from ..faults import ServeFaultConfig, derive_fault_seed
from ..gpu.arch import GPUArchConfig
from ..parallel import CampaignStats
from ..serve import ServeConfig, ServeResult, ServingRuntime
from ..store import ArtifactStore, atomic_write_text
from .soak import crash_write_torture

#: Default chaotic fault mix (expected events per target per run).
CHAOS_FAULTS = ServeFaultConfig(crash_rate=1.5, hang_rate=1.0,
                                stall_rate=1.0, storm_rate=1.0,
                                gap_rate=1.0, poison_rate=1.0,
                                burst_rate=1.0)


@dataclass(frozen=True)
class ServeChaosConfig:
    """Knobs of one serve-chaos campaign (all five invariants included).

    Each trial derives its own fault train and arrival jitter from
    ``seed`` through the serve config's ``with_seed``;
    ``determinism_trials`` of them are replayed twice (serial phase 1,
    then parallel) to pin invariant 4 without doubling every trial.
    ``recovery_budget_ticks`` must cover the supervisor's worst-case
    backoff plus one liveness window — the bound invariant 3 enforces.
    """

    trials: int = 3
    determinism_trials: int = 1
    seed: int = 0
    serve: ServeConfig = field(
        default_factory=lambda: ServeConfig(faults=CHAOS_FAULTS))
    recovery_budget_ticks: int = 48
    crash_write_trials: int = 16

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ServeError("serve chaos needs at least one trial")
        if not 0 <= self.determinism_trials <= self.trials:
            raise ServeError("determinism_trials must be within "
                             "[0, trials]")
        if self.recovery_budget_ticks < 1:
            raise ServeError("recovery_budget_ticks must be >= 1")
        if self.crash_write_trials < 0:
            raise ServeError("crash_write_trials cannot be negative")
        if not self.serve.faults.any_active:
            raise ServeError("serve chaos without any active fault rate "
                             "tests nothing; enable at least one")
        floor = (self.serve.supervisor.backoff_cap_ticks
                 + self.serve.supervisor.liveness_ticks)
        if self.recovery_budget_ticks < floor:
            raise ServeError(
                f"recovery_budget_ticks {self.recovery_budget_ticks} is "
                f"below the supervisor's own worst case {floor}")


@dataclass
class ServeChaosTrial:
    """One seeded fault train replayed through the serving runtime."""

    trial: int
    seed: int
    fault_counts: dict[str, int]
    submitted: int
    served: int
    shed: int
    failed: int
    conserved: bool
    byte_stable: bool | None  # None when the dual-run check was skipped
    recoveries: int
    max_recovery_ticks: int
    quarantined: int
    unrecovered: int
    invalid_decisions: int
    bad_deadline_sheds: int

    def to_payload(self) -> dict:
        """JSON-ready dict."""
        return {
            "trial": self.trial,
            "seed": self.seed,
            "fault_counts": dict(sorted(self.fault_counts.items())),
            "submitted": self.submitted,
            "served": self.served,
            "shed": self.shed,
            "failed": self.failed,
            "conserved": self.conserved,
            "byte_stable": self.byte_stable,
            "recoveries": self.recoveries,
            "max_recovery_ticks": self.max_recovery_ticks,
            "quarantined": self.quarantined,
            "unrecovered": self.unrecovered,
            "invalid_decisions": self.invalid_decisions,
            "bad_deadline_sheds": self.bad_deadline_sheds,
        }


@dataclass
class ServeChaosResult:
    """Aggregate serve-chaos outcome: trial records + invariant verdicts."""

    policy_name: str
    streams: int
    num_workers: int
    seed: int
    trials: list[ServeChaosTrial] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    crash_trials: int = 0
    crash_torn_reads: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every serving invariant held in every trial."""
        return not self.violations

    def merge_counters(self, counters: dict[str, int]) -> None:
        """Accumulate one trial's counters into the campaign totals."""
        for name, amount in counters.items():
            self.counters[name] = self.counters.get(name, 0) + int(amount)

    def to_payload(self) -> dict:
        """JSON-ready dict (no wall-clock: seeded runs export bit-equal)."""
        return {
            "policy": self.policy_name,
            "streams": self.streams,
            "num_workers": self.num_workers,
            "seed": self.seed,
            "passed": self.passed,
            "trials": [trial.to_payload() for trial in self.trials],
            "counters": dict(sorted(self.counters.items())),
            "crash_trials": self.crash_trials,
            "crash_torn_reads": self.crash_torn_reads,
            "violations": list(self.violations),
        }

    def export_json(self, path: str | Path) -> Path:
        """Atomically write the payload as JSON; returns the path."""
        path = Path(path)
        atomic_write_text(path, json.dumps(self.to_payload(), indent=2,
                                           sort_keys=True))
        return path

    def render(self) -> str:
        """Human-readable serve-chaos report."""
        lines = [f"serve chaos  policy={self.policy_name}  "
                 f"streams={self.streams}  workers={self.num_workers}  "
                 f"seed={self.seed}",
                 f"{'trial':>5s} {'faults':>6s} {'subm':>5s} {'served':>6s} "
                 f"{'shed':>5s} {'fail':>5s} {'recov':>5s} {'maxrt':>5s} "
                 f"{'conserved':>9s} {'stable':>6s}"]
        for trial in self.trials:
            stable = ("-" if trial.byte_stable is None
                      else ("yes" if trial.byte_stable else "NO"))
            lines.append(
                f"{trial.trial:5d} {sum(trial.fault_counts.values()):6d} "
                f"{trial.submitted:5d} {trial.served:6d} {trial.shed:5d} "
                f"{trial.failed:5d} {trial.recoveries:5d} "
                f"{trial.max_recovery_ticks:5d} "
                f"{'yes' if trial.conserved else 'NO':>9s} {stable:>6s}")
        lines.append(f"crash-write torture: {self.crash_trials} kills, "
                     f"{self.crash_torn_reads} torn reads")
        if self.violations:
            lines.append("SERVE INVARIANT VIOLATIONS:")
            lines.extend(f"  - {violation}"
                         for violation in self.violations)
        else:
            lines.append("all serving invariants held")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The chaos campaign
# ---------------------------------------------------------------------------

def _run_trial(arch: GPUArchConfig, config: ServeChaosConfig,
               trial_seed: int, model_bytes: bytes | None,
               store_root: Path | None, workers: int | None,
               stats: CampaignStats) -> ServeResult:
    """One seeded serving replay from a pristine model + store state."""
    model = None
    if model_bytes is not None:
        from ..core.combined import SSMDVFSModel
        model = SSMDVFSModel.from_bytes(model_bytes)
    runtime = ServingRuntime(arch, config.serve.with_seed(trial_seed),
                             model=model, store_root=store_root,
                             workers=workers, stats=stats)
    return runtime.run()


def _check_trial(result: ServeResult, record: ServeChaosTrial,
                 budget_ticks: int, violations: list[str]) -> None:
    """Assert the per-trial serving invariants, appending violations."""
    prefix = f"trial {record.trial}"
    if record.invalid_decisions:
        violations.append(
            f"{prefix}: {record.invalid_decisions} invalid decisions "
            f"reached the serve boundary — the validation layer leaked")
    if record.served == 0:
        violations.append(
            f"{prefix}: the runtime served nothing — every request was "
            f"shed or failed, which no fault train here justifies")
    if result.min_level_served is not None and result.num_levels:
        if not (0 <= result.min_level_served
                and result.max_level_served < result.num_levels):
            violations.append(
                f"{prefix}: served levels "
                f"[{result.min_level_served}, {result.max_level_served}] "
                f"escape the V/f table [0, {result.num_levels})")
    if not record.conserved:
        violations.append(
            f"{prefix}: request conservation broken — submitted "
            f"{record.submitted} != served {record.served} + shed "
            f"{record.shed} + failed {record.failed}")
    if record.max_recovery_ticks > budget_ticks:
        violations.append(
            f"{prefix}: a worker outage took {record.max_recovery_ticks} "
            f"ticks to recover (budget {budget_ticks})")
    if record.unrecovered:
        violations.append(
            f"{prefix}: {record.unrecovered} worker(s) still down after "
            f"the drain window without being quarantined")
    if record.byte_stable is False:
        violations.append(
            f"{prefix}: export payload differs between serial and "
            f"parallel replay of the same seed")
    if record.bad_deadline_sheds:
        violations.append(
            f"{prefix}: {record.bad_deadline_sheds} deadline-class "
            f"request(s) shed while the system was under capacity")


def run_serve_chaos(arch: GPUArchConfig,
                    config: ServeChaosConfig | None = None, *,
                    model=None, store_root: str | Path | None = None,
                    workers: int | None = None,
                    stats: CampaignStats | None = None
                    ) -> ServeChaosResult:
    """Run the serve-chaos campaign; returns trial records + verdicts.

    ``model`` is an optional :class:`~repro.core.combined.SSMDVFSModel`
    pair (None certifies the governor-backed runtime, which keeps the
    smoke model-free); each trial rebuilds it from bytes so trials and
    determinism replays start from identical state.  ``store_root``
    hosts one store subdirectory per replay plus the crash-write
    torture victim.  The whole result is a pure function of
    ``(arch, config, model)``.
    """
    config = config or ServeChaosConfig()
    stats = stats if stats is not None else CampaignStats()
    model_bytes = model.to_bytes() if model is not None else None
    root = Path(store_root) if store_root is not None else None
    policy_name = ("ssmdvfs+serve" if model is not None
                   else "governor+serve")
    result = ServeChaosResult(policy_name=policy_name,
                              streams=config.serve.streams,
                              num_workers=config.serve.num_workers,
                              seed=config.seed)

    first_payload: bytes | None = None
    for trial in range(config.trials):
        trial_seed = derive_fault_seed(config.seed, "serve-chaos", trial)
        trial_root = root / f"trial{trial:03d}" if root is not None else None
        serve = _run_trial(arch, config, trial_seed, model_bytes,
                           trial_root, workers, stats)
        byte_stable: bool | None = None
        if trial < config.determinism_trials:
            replay_root = (root / f"trial{trial:03d}-replay"
                           if root is not None else None)
            replay = _run_trial(arch, config, trial_seed, model_bytes,
                                replay_root, 0, CampaignStats())
            reference = json.dumps(serve.to_payload(), sort_keys=True)
            byte_stable = (json.dumps(replay.to_payload(),
                                      sort_keys=True) == reference)
        payload = json.dumps(serve.to_payload(), indent=2,
                             sort_keys=True).encode()
        if first_payload is None:
            first_payload = payload

        bad_deadline_sheds = sum(
            1 for shed in serve.shed_records
            if shed.deadline_class and shed.under_capacity)
        record = ServeChaosTrial(
            trial=trial, seed=trial_seed,
            fault_counts=dict(serve.fault_counts),
            submitted=serve.submitted, served=serve.served,
            shed=serve.shed, failed=serve.failed,
            conserved=serve.conserved, byte_stable=byte_stable,
            recoveries=len(serve.recovery_ticks),
            max_recovery_ticks=(max(serve.recovery_ticks)
                                if serve.recovery_ticks else 0),
            quarantined=serve.quarantined,
            unrecovered=serve.unrecovered,
            invalid_decisions=serve.counters.get(
                "serve_invalid_decisions", 0),
            bad_deadline_sheds=bad_deadline_sheds)
        result.trials.append(record)
        result.merge_counters(serve.counters)
        result.merge_counters({"serve_chaos_trials": 1})
        _check_trial(serve, record, config.recovery_budget_ticks,
                     result.violations)

    if root is not None and config.crash_write_trials:
        store = ArtifactStore(root / "torture")
        result.crash_trials, result.crash_torn_reads = crash_write_torture(
            store, "serve-chaos-export", first_payload or b"chaos",
            config.crash_write_trials, seed=config.seed)
        if result.crash_torn_reads:
            result.violations.append(
                f"crash-write torture observed {result.crash_torn_reads} "
                f"torn reads in {result.crash_trials} kills")
    return result
