"""Content-addressed cache for evaluation campaigns.

A Fig. 4 campaign re-simulates every (policy, kernel) pair of the grid;
like dataset generation, the grid is deterministic given the policies,
kernel suite, architecture, preset, seed and epoch length, so repeat
invocations can load the :class:`ComparisonResult` from disk instead of
re-running tens of thousands of epochs.

Keys reuse the dataset cache's content-addressing scheme
(:func:`repro.datagen.cache.content_key`).  Policy *behaviour* is not
structurally hashable — a factory may close over a trained model — so
callers identify it with the policy names plus an optional
``cache_token`` (e.g. a hash of model metadata); change the token when
the models behind the same names change.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path

from ..datagen.cache import content_key, kernel_suite_fingerprint
from ..gpu.arch import GPUArchConfig
from ..gpu.kernels import KernelProfile
from ..parallel import CampaignCheckpoint, CampaignStats
from ..power.model import PowerModel
from ..store import atomic_write_text
from ..units import us
from .runner import ComparisonResult, compare_policies

logger = logging.getLogger(__name__)


def comparison_cache_key(policy_names: list[str],
                         kernels: list[KernelProfile], arch: GPUArchConfig,
                         preset: float, seed: int = 0,
                         epoch_s: float = us(10),
                         cache_token: str | None = None) -> str:
    """Stable fingerprint of one evaluation-grid request."""
    return content_key({
        **kernel_suite_fingerprint(kernels),
        "arch": arch.name,
        "clusters": arch.num_clusters,
        "policies": list(policy_names),
        "preset": preset,
        "seed": seed,
        "epoch_s": epoch_s,
        "token": cache_token or "",
    })


def cached_comparison(cache_dir: str | Path,
                      policy_factories: dict[str, callable],
                      kernels: list[KernelProfile], arch: GPUArchConfig,
                      preset: float,
                      power_model: PowerModel | None = None,
                      seed: int = 0, epoch_s: float = us(10), *,
                      cache_token: str | None = None,
                      workers: int | None = None,
                      stats: CampaignStats | None = None,
                      use_cache: bool = True, checkpoint: bool = False,
                      retries: int = 2,
                      timeout_s: float | None = None,
                      fused: bool = False,
                      fuse_width: int = 8) -> ComparisonResult:
    """Load a policy × kernel grid from cache, running it on miss.

    Counters ``comparison_cache_hit`` / ``comparison_cache_miss`` land
    in ``stats``.  With ``use_cache=False`` the grid is re-run and the
    cache file refreshed.  A corrupt or truncated cache file is a cache
    *miss* (counted in ``comparison_cache_corrupt``), never a crash.
    ``checkpoint=True`` persists per-run progress next to the cache
    file (``grid-<key>.ckpt``) so an interrupted campaign resumes;
    ``retries``/``timeout_s`` tune the resilient fan-out.

    ``fused``/``fuse_width`` run the grid through the fused campaign
    engine.  The *result* is bit-identical, so fused and serial runs
    share one cache file; checkpoints are **not** shared — a serial
    checkpoint stores per-run outcomes while a fused one stores
    per-group outcomes — so the checkpoint key and file are namespaced
    with the fused configuration.
    """
    stats = stats if stats is not None else CampaignStats()
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    key = comparison_cache_key(list(policy_factories), kernels, arch, preset,
                               seed=seed, epoch_s=epoch_s,
                               cache_token=cache_token)
    path = cache_dir / f"grid-{key}.json"
    if use_cache and path.exists():
        try:
            with stats.stage("grid_load", tasks=1):
                result = ComparisonResult.from_payload(
                    json.loads(path.read_text()))
        except Exception:
            logger.warning("corrupt evaluation cache %s; re-running",
                           path, exc_info=True)
            stats.count("comparison_cache_corrupt")
        else:
            stats.count("comparison_cache_hit")
            return result
    stats.count("comparison_cache_miss")
    ckpt_suffix = f".fused{fuse_width}" if fused else ""
    ckpt = (CampaignCheckpoint(cache_dir / f"grid-{key}{ckpt_suffix}.ckpt",
                               key=f"{key}{ckpt_suffix}")
            if checkpoint else None)
    result = compare_policies(policy_factories, kernels, arch, preset,
                              power_model, seed=seed, epoch_s=epoch_s,
                              workers=workers, stats=stats,
                              checkpoint=ckpt, retries=retries,
                              timeout_s=timeout_s,
                              fused=fused, fuse_width=fuse_width)
    # Atomic write: a kill mid-save must leave either the previous grid
    # or the new one, never a torn JSON the next run discards.
    atomic_write_text(path, json.dumps(result.to_payload()))
    return result
