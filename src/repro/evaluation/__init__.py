"""Evaluation harness: runners, experiment drivers, reporting."""

from .cache import cached_comparison, comparison_cache_key
from .experiments import (Fig3Result, Fig4Result, HardwareResult,
                          Table1Result, Table2Result,
                          build_pipeline_for_experiments,
                          fig4_cache_token, fig4_policy_factories, run_fig3,
                          run_fig4, run_hardware, run_table1, run_table2)
from .export import (export_comparison_csv, export_fig3_csv,
                     export_fig4_json, load_fig4_json)
from .fleet_chaos import (ChaosTrial, FleetChaosConfig, FleetChaosResult,
                          run_fleet_chaos)
from .registry import (ExperimentEntry, all_experiments, get_experiment,
                       paper_experiments, render_registry)
from .reporting import format_percent, format_series, format_table
from .residency import ResidencyProfile, residency_from_records
from .robustness import (FaultSweepCell, FaultSweepResult,
                         NoisyCountersPolicy, SeedSweepResult, fault_sweep,
                         seed_sweep)
from .runner import (ComparisonResult, PolicyRun, compare_policies,
                     run_policy_on_kernel)
from .soak import (KernelSoak, SoakConfig, SoakResult, crash_write_torture,
                   perturb_model_weights, run_soak)

__all__ = [
    "cached_comparison", "comparison_cache_key",
    "Fig3Result", "Fig4Result", "HardwareResult", "Table1Result",
    "Table2Result", "build_pipeline_for_experiments",
    "fig4_cache_token", "fig4_policy_factories", "run_fig3", "run_fig4",
    "run_hardware", "run_table1", "run_table2",
    "export_comparison_csv", "export_fig3_csv", "export_fig4_json",
    "load_fig4_json",
    "ExperimentEntry", "all_experiments", "get_experiment",
    "paper_experiments", "render_registry",
    "format_percent", "format_series", "format_table",
    "ResidencyProfile", "residency_from_records",
    "FaultSweepCell", "FaultSweepResult", "NoisyCountersPolicy",
    "SeedSweepResult", "fault_sweep", "seed_sweep",
    "ComparisonResult", "PolicyRun", "compare_policies",
    "run_policy_on_kernel",
    "KernelSoak", "SoakConfig", "SoakResult", "crash_write_torture",
    "perturb_model_weights", "run_soak",
    "ChaosTrial", "FleetChaosConfig", "FleetChaosResult",
    "run_fleet_chaos",
]
