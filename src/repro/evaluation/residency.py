"""Operating-point residency analysis.

How long did each cluster spend at each V/f level during a run?  The
residency histogram is the most direct window into what a DVFS policy
actually *did* — e.g. a memory-bound kernel under a good policy shows
near-total residency at the lowest level, while F-LEMMA's exploration
smears residency across the table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..gpu.simulator import EpochRecord


@dataclass(frozen=True)
class ResidencyProfile:
    """Fraction of cluster-epochs spent at each level."""

    fractions: tuple[float, ...]

    def __post_init__(self) -> None:
        total = sum(self.fractions)
        if self.fractions and abs(total - 1.0) > 1e-6:
            raise SimulationError(f"residency sums to {total}, expected 1")

    @property
    def num_levels(self) -> int:
        """Number of operating points covered."""
        return len(self.fractions)

    @property
    def mean_level(self) -> float:
        """Residency-weighted mean level."""
        return float(sum(level * fraction
                         for level, fraction in enumerate(self.fractions)))

    @property
    def dominant_level(self) -> int:
        """The most-resided level."""
        return int(np.argmax(self.fractions))

    def entropy_bits(self) -> float:
        """Shannon entropy of the residency distribution.

        0 bits = pinned at one level; log2(6) ~ 2.58 bits = uniform
        smear (the exploration signature).
        """
        probabilities = np.array([f for f in self.fractions if f > 0])
        if probabilities.size == 0:
            return 0.0
        return float(-(probabilities * np.log2(probabilities)).sum())

    def render(self) -> str:
        """One-line bar rendering."""
        cells = " ".join(f"L{level}:{fraction:5.1%}"
                         for level, fraction in enumerate(self.fractions))
        return f"[{cells}] mean={self.mean_level:.2f}"


def residency_from_records(records: list[EpochRecord],
                           num_levels: int) -> ResidencyProfile:
    """Aggregate a run's epoch records into a residency profile."""
    if not records:
        raise SimulationError("no records to analyse")
    if num_levels <= 0:
        raise SimulationError("num_levels must be positive")
    counts = np.zeros(num_levels, dtype=np.float64)
    for record in records:
        for level in record.levels:
            if not 0 <= level < num_levels:
                raise SimulationError(f"level {level} out of range")
            counts[level] += 1
    counts /= counts.sum()
    return ResidencyProfile(fractions=tuple(counts.tolist()))
