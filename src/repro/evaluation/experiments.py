"""Experiment drivers — one per table/figure of the paper.

Each driver returns a structured result object and can render the
paper's artefact as text.  Benchmarks under ``benchmarks/`` call these
with appropriately sized workloads; ``EXPERIMENTS.md`` records the
paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from ..datagen.cache import content_key
from ..datagen.dataset import DVFSDataset
from ..datagen.rfe import RFEResult, RFESelector
from ..errors import ReproError
from ..gpu.arch import GPUArchConfig
from ..gpu.counters import PAPER_ALIASES, paper_category
from ..gpu.kernels import KernelProfile
from ..hardware.asic import ASICModel, ASICReport
from ..nn.compress import (CompressionPoint, TrainedPair,
                           default_layerwise_grid, default_pruning_grid,
                           layer_wise_sweep, pruning_sweep)
from ..nn.trainer import TrainConfig
from ..core.combined import SSMDVFSModel
from ..core.controller import SSMDVFSController
from ..core.pipeline import PipelineConfig, PipelineResult, build_from_dataset
from ..baselines.flemma import FLEMMAPolicy
from ..baselines.pcstall import PCSTALLPolicy
from ..parallel import CampaignStats
from ..power.model import PowerModel
from ..units import us
from .cache import cached_comparison
from .reporting import format_percent, format_table
from .runner import ComparisonResult, compare_policies

# ---------------------------------------------------------------------------
# Table I — feature selection
# ---------------------------------------------------------------------------


@dataclass
class Table1Result:
    """RFE outcome mapped onto the paper's Table I."""

    rfe: RFEResult
    selected_with_categories: list[tuple[str, str]]

    def paper_alias(self, counter: str) -> str:
        """The paper's short name for a counter, if it has one."""
        for alias, name in PAPER_ALIASES.items():
            if name == counter:
                return alias
        return counter

    def render(self) -> str:
        """Text rendering of the reproduced Table I."""
        rows = [[category, self.paper_alias(name), name]
                for name, category in self.selected_with_categories]
        table = format_table(["Metric category", "Alias", "Counter"], rows,
                             title="Table I - selected performance counters")
        drop = self.rfe.accuracy_drop_pct
        return (f"{table}\n"
                f"accuracy: all-features {self.rfe.full_accuracy * 100:.2f}% "
                f"-> selected {self.rfe.selected_accuracy * 100:.2f}% "
                f"(drop {drop:.2f} pp; paper reports 0.48 pp)")


def run_table1(dataset: DVFSDataset, arch: GPUArchConfig,
               target_count: int = 3, seed: int = 0,
               batched: bool = True,
               stats: CampaignStats | None = None) -> Table1Result:
    """Reproduce Table I: RFE down to three indirect features + power.

    ``batched=True`` (the default) scores all candidate columns of each
    round with one stacked forward pass; ``batched=False`` keeps the
    column-by-column loop (same results, for cross-checking).
    """
    selector = RFESelector(dataset, arch.issue_width,
                           target_count=target_count, seed=seed,
                           batched=batched, stats=stats)
    rfe = selector.run()
    selected = [(name, paper_category(name)) for name in rfe.all_features]
    return Table1Result(rfe=rfe, selected_with_categories=selected)


# ---------------------------------------------------------------------------
# Table II — final model information
# ---------------------------------------------------------------------------


@dataclass
class Table2Result:
    """Before/after-compression model card (paper Table II)."""

    base: TrainedPair
    pruned: TrainedPair

    @property
    def flops_before(self) -> int:
        """Dense FLOPs of the uncompressed pair."""
        return self.base.flops_dense

    @property
    def flops_after(self) -> int:
        """Sparse FLOPs of the compressed+pruned pair."""
        return self.pruned.flops_sparse

    @property
    def compression_pct(self) -> float:
        """FLOPs reduction (paper: 94.74 %)."""
        return 100.0 * (1.0 - self.flops_after / self.flops_before)

    def render(self) -> str:
        """Text rendering of the reproduced Table II."""
        rows = [
            ["Decision structure",
             "x".join(str(s) for s in self.base.decision.layer_sizes),
             "x".join(str(s) for s in self.pruned.decision.layer_sizes)],
            ["Calibrator structure",
             "x".join(str(s) for s in self.base.calibrator.layer_sizes),
             "x".join(str(s) for s in self.pruned.calibrator.layer_sizes)],
            ["FLOPs", self.flops_before, self.flops_after],
            ["Accuracy (%)", round(self.base.accuracy_pct, 2),
             round(self.pruned.accuracy_pct, 2)],
            ["MAPE (%)", round(self.base.mape_pct, 2),
             round(self.pruned.mape_pct, 2)],
        ]
        table = format_table(
            ["Model information", "Before compression", "After compression"],
            rows, title="Table II - final model information")
        return (f"{table}\ncompression: {self.compression_pct:.2f}% "
                f"FLOPs reduction (paper reports 94.74%)")


def run_table2(pipeline: PipelineResult) -> Table2Result:
    """Reproduce Table II from a finished pipeline build."""
    if "base" not in pipeline.pairs or "pruned" not in pipeline.pairs:
        raise ReproError("pipeline must build the base and pruned variants")
    return Table2Result(base=pipeline.pairs["base"],
                        pruned=pipeline.pairs["pruned"])


# ---------------------------------------------------------------------------
# Fig. 3 — FLOPs vs accuracy / MAPE frontiers
# ---------------------------------------------------------------------------


@dataclass
class Fig3Result:
    """Layer-wise and pruning compression frontiers."""

    layerwise: list[CompressionPoint]
    pruning: list[CompressionPoint]

    def _sorted(self, points: list[CompressionPoint]
                ) -> list[CompressionPoint]:
        return sorted(points, key=lambda p: p.flops)

    def knee_flops(self, accuracy_drop_pp: float = 5.0) -> int:
        """FLOPs below which layer-wise accuracy falls off a cliff."""
        points = self._sorted(self.layerwise)
        best = max(p.accuracy_pct for p in points)
        for point in points:
            if point.accuracy_pct >= best - accuracy_drop_pp:
                return point.flops
        return points[-1].flops

    def pruning_dominates(self) -> bool:
        """Paper claim: the pruning frontier beats layer-wise compression.

        Checked as: among points in the compressed-FLOPs regime (below
        the layer-wise median), the best pruning accuracy is at least
        the best layer-wise accuracy minus 1 pp.  On this substrate the
        claim does *not* always hold — the supervised task is cleaner
        than the paper's, so retraining a small architecture from
        scratch is unusually strong; EXPERIMENTS.md records the
        deviation.
        """
        cut = float(np.median([p.flops for p in self.layerwise]))
        small_layer = [p.accuracy_pct for p in self.layerwise if p.flops <= cut]
        small_prune = [p.accuracy_pct for p in self.pruning if p.flops <= cut]
        if not small_layer or not small_prune:
            return False
        return max(small_prune) >= max(small_layer) - 1.0

    def pruning_competitive(self, tolerance_pp: float = 4.0) -> bool:
        """Weaker, substrate-robust form of the paper's Fig. 3 claim:
        the best pruning point reaches within ``tolerance_pp`` of the
        best layer-wise accuracy while being sparse."""
        best_layer = max(p.accuracy_pct for p in self.layerwise)
        best_prune = max((p for p in self.pruning if p.sparsity > 0.1),
                         key=lambda p: p.accuracy_pct, default=None)
        if best_prune is None:
            return False
        return best_prune.accuracy_pct >= best_layer - tolerance_pp

    def has_knee(self, drop_pp: float = 5.0) -> bool:
        """True when accuracy collapses below some FLOPs threshold in
        both frontiers (the qualitative shape of Fig. 3)."""
        def collapsed(points):
            best = max(p.accuracy_pct for p in points)
            worst = min(points, key=lambda p: p.flops)
            return worst.accuracy_pct < best - drop_pp
        return collapsed(self.layerwise) and collapsed(self.pruning)

    def render(self) -> str:
        """Text rendering of both frontiers (Fig. 3 as a table)."""
        rows = []
        for point in self._sorted(self.layerwise) + self._sorted(self.pruning):
            rows.append([point.method, point.label, point.flops,
                         round(point.accuracy_pct, 2),
                         round(point.mape_pct, 2)])
        return format_table(
            ["Method", "Config", "FLOPs", "Accuracy (%)", "MAPE (%)"],
            rows, title="Fig. 3 - FLOPs vs accuracy and MAPE")


def run_fig3(pipeline: PipelineResult, specs=None, grid=None,
             train_config: TrainConfig | None = None,
             seed: int = 0, *, workers: int | None = None,
             stats: CampaignStats | None = None,
             cache_dir: str | None = None, use_cache: bool = True,
             checkpoint: bool = False, retries: int = 2,
             timeout_s: float | None = None) -> Fig3Result:
    """Reproduce Fig. 3's two compression frontiers.

    Both sweeps fan out through the campaign layer; with ``cache_dir``
    set, each trained grid point is cached content-addressed on its
    (spec or prune params, train config, data fingerprint) key, so a
    repeat invocation — or an overlapping grid — retrains only what it
    has never seen.
    """
    prepared = pipeline.prepared
    train_config = train_config or TrainConfig(
        epochs=60, patience=10, learning_rate=2e-3)
    layerwise = layer_wise_sweep(
        prepared.decision, prepared.calibrator, prepared.num_levels,
        specs=specs or default_layerwise_grid(), config=train_config,
        seed=seed, workers=workers, stats=stats, cache_dir=cache_dir,
        use_cache=use_cache, checkpoint=checkpoint, retries=retries,
        timeout_s=timeout_s)
    base_pair = pipeline.pairs.get("base")
    if base_pair is None:
        raise ReproError("pipeline must include the base variant for Fig. 3")
    pruning = pruning_sweep(base_pair, prepared.decision, prepared.calibrator,
                            grid=grid or default_pruning_grid(),
                            workers=workers, stats=stats,
                            cache_dir=cache_dir, use_cache=use_cache,
                            checkpoint=checkpoint, retries=retries,
                            timeout_s=timeout_s)
    return Fig3Result(layerwise=layerwise, pruning=pruning)


# ---------------------------------------------------------------------------
# Fig. 4 — full-system EDP / latency comparison
# ---------------------------------------------------------------------------


@dataclass
class Fig4Result:
    """Normalized EDP and latency for every policy at each preset."""

    comparisons: dict[float, ComparisonResult] = field(default_factory=dict)

    def mean_over_presets(self, metric: str, policy: str) -> float:
        """Average a policy metric over all presets."""
        values = []
        for comparison in self.comparisons.values():
            if metric == "edp":
                values.append(comparison.mean_normalized_edp(policy))
            elif metric == "latency":
                values.append(comparison.mean_normalized_latency(policy))
            else:
                raise ReproError(f"unknown metric {metric!r}")
        if not values:
            raise ReproError("no comparisons run")
        return float(np.mean(values))

    def _default_ssm_policy(self) -> str:
        """Pick the headline SSMDVFS variant present in the runs."""
        if not self.comparisons:
            raise ReproError("no comparisons run")
        policies = next(iter(self.comparisons.values())).policies()
        for candidate in ("ssmdvfs-pruned", "ssmdvfs"):
            if candidate in policies:
                return candidate
        raise ReproError("no SSMDVFS policy in the comparison")

    def headline(self, ssm_policy: str | None = None) -> dict[str, float]:
        """The paper's §V-C aggregate improvements (fractions)."""
        if ssm_policy is None:
            ssm_policy = self._default_ssm_policy()
        edp_ssm = self.mean_over_presets("edp", ssm_policy)
        return {
            "vs_baseline": 1.0 - edp_ssm,
            "vs_pcstall": 1.0 - edp_ssm / self.mean_over_presets(
                "edp", "pcstall"),
            "vs_flemma": 1.0 - edp_ssm / self.mean_over_presets(
                "edp", "flemma"),
        }

    def render(self) -> str:
        """Per-kernel normalized EDP / latency tables, one per preset."""
        blocks = []
        for preset, comparison in sorted(self.comparisons.items()):
            headers = ["Kernel"] + [f"{p} EDP" for p in comparison.policies()
                                    if p != "baseline"]
            rows = []
            for kernel in comparison.kernels():
                row = [kernel]
                for policy in comparison.policies():
                    if policy == "baseline":
                        continue
                    match = [r for r in comparison.series(policy)
                             if r.kernel_name == kernel]
                    row.append(round(match[0].normalized_edp, 3)
                               if match else "-")
                rows.append(row)
            blocks.append(format_table(
                headers, rows,
                title=f"Fig. 4 - normalized EDP, preset {preset:.0%}"))
            lat_rows = [[p,
                         round(comparison.mean_normalized_edp(p), 3),
                         round(comparison.mean_normalized_latency(p), 3)]
                        for p in comparison.policies()]
            blocks.append(format_table(
                ["Policy", "mean EDP", "mean latency"], lat_rows))
        head = self.headline()
        blocks.append(
            "headline: EDP "
            f"{format_percent(head['vs_baseline'])} vs baseline "
            f"(paper 11.09%), {format_percent(head['vs_pcstall'])} vs "
            "PCSTALL (paper 13.17%), "
            f"{format_percent(head['vs_flemma'])} vs F-LEMMA "
            "(paper 36.80%)")
        return "\n\n".join(blocks)


def fig4_policy_factories(models: dict[str, SSMDVFSModel], preset: float,
                          seed: int = 0) -> dict[str, callable]:
    """The policy line-up of Fig. 4 for one preset.

    Factories are :func:`functools.partial` objects over module-level
    classes, so the evaluation grid can pickle them into worker
    processes when a campaign runs with ``workers > 1``.
    """
    factories: dict[str, callable] = {
        "pcstall": partial(PCSTALLPolicy, preset),
        "flemma": partial(FLEMMAPolicy, preset, seed=seed),
    }
    if "base" in models:
        factories["ssmdvfs"] = partial(SSMDVFSController, models["base"],
                                       preset)
        factories["ssmdvfs-nocal"] = partial(SSMDVFSController,
                                             models["base"], preset,
                                             use_calibrator=False)
    if "pruned" in models:
        factories["ssmdvfs-pruned"] = partial(SSMDVFSController,
                                              models["pruned"], preset)
    return factories


def fig4_cache_token(models: dict[str, SSMDVFSModel]) -> str:
    """Identify the model line-up for the evaluation-grid cache key."""
    return content_key({name: repr(sorted(
        getattr(model, "metadata", {}).items()))
        for name, model in sorted(models.items())})


def run_fig4(models: dict[str, SSMDVFSModel], kernels: list[KernelProfile],
             arch: GPUArchConfig, presets: tuple[float, ...] = (0.10, 0.20),
             power_model: PowerModel | None = None, seed: int = 0,
             epoch_s: float = us(10), workers: int | None = None,
             stats: CampaignStats | None = None,
             cache_dir: str | None = None, cache_token: str | None = None,
             use_cache: bool = True, checkpoint: bool = False,
             retries: int = 2, timeout_s: float | None = None,
             fused: bool = False, fuse_width: int = 8) -> Fig4Result:
    """Reproduce Fig. 4 across presets and the full policy line-up.

    ``workers`` fans each preset's policy × kernel grid out over a
    process pool.  With ``cache_dir`` set, finished grids are cached
    on disk keyed by the kernel suite, arch, preset, seed and a model
    ``cache_token`` (defaults to a hash of the models' metadata), and
    ``checkpoint=True`` lets each interrupted grid resume mid-campaign;
    ``retries``/``timeout_s`` tune the resilient fan-out.
    ``fused``/``fuse_width`` co-simulate each grid through the fused
    campaign engine — bit-identical results, so fused and cached serial
    grids interoperate (see
    :func:`repro.evaluation.runner.compare_policies`).
    """
    result = Fig4Result()
    if cache_dir is not None and cache_token is None:
        cache_token = fig4_cache_token(models)
    for preset in presets:
        factories = fig4_policy_factories(models, preset, seed=seed)
        if cache_dir is not None:
            result.comparisons[preset] = cached_comparison(
                cache_dir, factories, kernels, arch, preset, power_model,
                seed=seed, epoch_s=epoch_s, cache_token=cache_token,
                workers=workers, stats=stats, use_cache=use_cache,
                checkpoint=checkpoint, retries=retries, timeout_s=timeout_s,
                fused=fused, fuse_width=fuse_width)
        else:
            result.comparisons[preset] = compare_policies(
                factories, kernels, arch, preset, power_model, seed=seed,
                epoch_s=epoch_s, workers=workers, stats=stats,
                retries=retries, timeout_s=timeout_s,
                fused=fused, fuse_width=fuse_width)
    return result


# ---------------------------------------------------------------------------
# §V-D — hardware implementation
# ---------------------------------------------------------------------------


@dataclass
class HardwareResult:
    """ASIC cost of the deployed module vs the paper's numbers."""

    report: ASICReport
    epoch_s: float
    gpu_tdp_w: float

    def render(self) -> str:
        """Text rendering of the §V-D cost summary."""
        r = self.report
        rows = [
            ["cycles / inference", r.cycles_per_inference, 192],
            ["latency (us)", round(r.latency_us, 3), 0.16],
            [f"area @{r.node_nm}nm (mm^2)", round(r.area_mm2_scaled, 4),
             0.0080],
            ["power (W)", round(r.power_w_scaled, 4), 0.0025],
            ["epoch fraction (%)",
             round(100 * r.epoch_fraction(self.epoch_s), 2), 1.65],
        ]
        return format_table(["Quantity", "Measured", "Paper"], rows,
                            title="SSMDVFS ASIC module (Section V-D)")


def run_hardware(model: SSMDVFSModel, epoch_s: float = us(10),
                 gpu_tdp_w: float = 250.0,
                 asic: ASICModel | None = None) -> HardwareResult:
    """Reproduce the §V-D ASIC cost analysis for a deployed model."""
    asic = asic or ASICModel()
    report = asic.report([model.decision_model, model.calibrator_model],
                         sparse=True, node_nm=28)
    return HardwareResult(report=report, epoch_s=epoch_s, gpu_tdp_w=gpu_tdp_w)


# ---------------------------------------------------------------------------
# Convenience: a sized-down full build for tests/benches
# ---------------------------------------------------------------------------


def build_pipeline_for_experiments(dataset: DVFSDataset,
                                   arch: GPUArchConfig,
                                   config: PipelineConfig | None = None
                                   ) -> PipelineResult:
    """Standard pipeline build used by the experiment benchmarks."""
    return build_from_dataset(dataset, arch, config)
