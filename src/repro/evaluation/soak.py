"""Chaos-soak harness: long-horizon runs under compound failure.

The fault sweep (:mod:`repro.evaluation.robustness`) answers "how does
one fault dimension degrade the controller?".  The soak answers the
deployment question: with *everything* misbehaving at once — noisy
sensors, a model pair silently going stale mid-run, and the artifact
store being killed mid-write — does the stack detect, recover, and
keep its promises?  Three invariants are checked continuously:

1. **No NaN ever reaches a decision** — every actuated level list is
   re-validated outside the guard; a single malformed decision fails
   the soak.
2. **Bounded performance loss** — end-to-end normalized latency stays
   within ``preset + latency_slack`` despite the injected chaos (the
   guard's fallback is the baseline operating point, so a healthy
   recovery cannot blow the budget).
3. **Bounded recovery** — after the mid-run staleness injection the
   drift monitor must alarm and the guard must heal (hot-swap from the
   registry's last-known-good pair, or pin the static fallback) within
   ``recovery_epochs``.

A crash-write torture phase additionally kills :meth:`ArtifactStore.put`
at sampled byte offsets and asserts every subsequent read returns the
old payload or the new one, never garbage.  Results are seeded and
JSON-exportable; ``repro-ssmdvfs soak`` and the CI ``soak-smoke``
target gate on :attr:`SoakResult.passed`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from ..core.combined import PAIR_SCHEMA, SSMDVFSModel
from ..core.controller import SSMDVFSController
from ..core.drift import DriftConfig, DriftMonitor, RollbackManager
from ..core.guarded import GuardedController
from ..core.policy import StaticPolicy, validate_decision
from ..errors import PolicyError, SimulationError
from ..faults import FaultConfig, FaultyPolicy
from ..gpu.arch import GPUArchConfig
from ..gpu.kernels import KernelProfile
from ..gpu.simulator import GPUSimulator
from ..power.energy import EnergyAccount
from ..power.model import PowerModel
from ..store import ArtifactStore, SimulatedCrash, atomic_write_text
from ..units import us

#: Registry key under which the soak stores its model pair.
SOAK_ARTIFACT = "soak-pair"


@dataclass(frozen=True)
class SoakConfig:
    """Knobs of one chaos-soak scenario (all invariants included).

    ``faults`` defaults to the "1 % flaky sensor" deployment story:
    one dropped counter window per hundred plus rare NaN poisonings
    and spikes.  ``stale_fraction`` places the staleness injection as
    a fraction of the kernel's baseline epoch count; ``stale_sigma``
    scales the weight perturbation relative to each layer's weight
    spread (3x is unambiguous garbage — the soak tests recovery, not
    detection sensitivity).  ``recovery_epochs`` budgets detection +
    rollback; ``latency_slack`` is the guard tolerance on top of the
    preset for invariant 2.
    """

    preset: float = 0.10
    latency_slack: float = 0.15
    epoch_s: float = us(10)
    seed: int = 3
    faults: FaultConfig = field(default_factory=lambda: FaultConfig(
        counter_dropout=0.01, counter_nan=0.0005, counter_spike=0.0005))
    drift: DriftConfig = field(default_factory=DriftConfig)
    stale_fraction: float = 0.3
    stale_sigma: float = 3.0
    recovery_epochs: int = 60
    trip_threshold: int = 4
    crash_write_trials: int = 32
    max_epochs: int = 100_000

    def __post_init__(self) -> None:
        if self.preset < 0 or self.latency_slack < 0:
            raise PolicyError("preset and latency_slack cannot be negative")
        if not 0.0 < self.stale_fraction < 1.0:
            raise PolicyError("stale_fraction must be in (0, 1)")
        if self.stale_sigma <= 0:
            raise PolicyError("stale_sigma must be positive")
        if self.recovery_epochs < 1:
            raise PolicyError("recovery_epochs must be >= 1")
        if self.crash_write_trials < 0:
            raise PolicyError("crash_write_trials cannot be negative")


@dataclass
class KernelSoak:
    """Per-kernel soak outcome (one long-horizon run)."""

    kernel_name: str
    epochs: int
    baseline_epochs: int
    stale_epoch: int
    alarm_epoch: int | None
    healed_epoch: int | None
    healed_by: str | None  # "hot_swap" | "pinned_fallback"
    normalized_latency: float
    normalized_edp: float
    invalid_decisions: int

    def to_payload(self) -> dict:
        """JSON-ready dict."""
        return asdict(self)


@dataclass
class SoakResult:
    """Aggregate soak outcome: per-kernel records + invariant verdicts."""

    preset: float
    latency_tolerance: float
    seed: int
    records: list[KernelSoak] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    crash_trials: int = 0
    crash_torn_reads: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every soak invariant held."""
        return not self.violations

    def to_payload(self) -> dict:
        """JSON-ready dict (no wall-clock: seeded runs export bit-equal)."""
        return {
            "preset": self.preset,
            "latency_tolerance": self.latency_tolerance,
            "seed": self.seed,
            "passed": self.passed,
            "records": [record.to_payload() for record in self.records],
            "counters": dict(sorted(self.counters.items())),
            "crash_trials": self.crash_trials,
            "crash_torn_reads": self.crash_torn_reads,
            "violations": list(self.violations),
        }

    def export_json(self, path: str | Path) -> Path:
        """Atomically write the payload as JSON; returns the path."""
        path = Path(path)
        atomic_write_text(path, json.dumps(self.to_payload(), indent=2,
                                           sort_keys=True))
        return path

    def render(self) -> str:
        """Human-readable soak report."""
        lines = [f"chaos soak  preset={self.preset:.2f}  "
                 f"latency tolerance={self.latency_tolerance:.2f}  "
                 f"seed={self.seed}",
                 f"{'kernel':24s} {'epochs':>6s} {'stale@':>6s} "
                 f"{'alarm@':>6s} {'heal@':>6s} {'heal by':>16s} "
                 f"{'latency':>8s} {'edp':>6s}"]
        for record in self.records:
            alarm = "-" if record.alarm_epoch is None else str(record.alarm_epoch)
            heal = "-" if record.healed_epoch is None else str(record.healed_epoch)
            lines.append(
                f"{record.kernel_name:24s} {record.epochs:6d} "
                f"{record.stale_epoch:6d} {alarm:>6s} {heal:>6s} "
                f"{record.healed_by or '-':>16s} "
                f"{record.normalized_latency:8.3f} "
                f"{record.normalized_edp:6.3f}")
        lines.append(f"crash-write torture: {self.crash_trials} kills, "
                     f"{self.crash_torn_reads} torn reads")
        if self.violations:
            lines.append("INVARIANT VIOLATIONS:")
            lines.extend(f"  - {violation}" for violation in self.violations)
        else:
            lines.append("all soak invariants held")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Chaos injections
# ---------------------------------------------------------------------------

def perturb_model_weights(model: SSMDVFSModel, sigma: float,
                          rng: np.random.Generator) -> None:
    """Silently corrupt a pair in place (the staleness injection).

    Every layer of both heads gets Gaussian noise scaled by ``sigma``
    times its own weight spread — the in-memory analogue of serving a
    model trained on data the GPU no longer resembles.  The object
    keeps quacking like a healthy pair; only its *predictions* rot,
    which is exactly what the drift monitor must catch.
    """
    for mlp in (model.decision_model, model.calibrator_model):
        for layer in mlp.layers:
            spread = float(np.std(layer.weights))
            scale = sigma * (spread if spread > 0 else 1.0)
            layer.weights += rng.normal(0.0, scale, size=layer.weights.shape)
            layer.bias += rng.normal(0.0, scale, size=layer.bias.shape)


def crash_write_torture(store: ArtifactStore, name: str, payload: bytes,
                        trials: int, seed: int = 0) -> tuple[int, int]:
    """Kill ``put`` at sampled offsets; returns (kills, torn_reads).

    After every simulated kill the artifact must read back as the
    last committed payload — never a prefix of the aborted write — and
    a follow-up clean ``put`` must succeed (leftover temp files cannot
    wedge the store).  The byte-exhaustive variant lives in the test
    suite; the soak samples ``trials`` offsets across the encoded
    length so long payloads stay cheap.
    """
    if trials <= 0:
        return 0, 0
    baseline = store.put(name, payload, schema="soak-torture/v1",
                         mark_good=False)
    expected = store.get(name, baseline, fallback=False)
    rng = np.random.default_rng(seed)
    # Cover both boundaries (0 bytes written; written-but-not-renamed)
    # plus random interior offsets.
    offsets = {0, len(payload) + 1}
    while len(offsets) < trials:
        offsets.add(int(rng.integers(0, len(payload) + 2)))
    torn = 0
    for offset in sorted(offsets):
        try:
            store.put(name, payload, schema="soak-torture/v1",
                      crash_after=offset)
        except SimulatedCrash:
            pass
        observed = store.get(name, fallback=True)
        if observed != expected:
            torn += 1
    # The store must still accept clean writes after every abort.
    final = store.put(name, payload, schema="soak-torture/v1")
    if store.get(name, final, fallback=False) != expected:
        torn += 1
    return len(offsets) + 1, torn


# ---------------------------------------------------------------------------
# The soak itself
# ---------------------------------------------------------------------------

def _counter(counters: dict[str, int], name: str) -> int:
    return int(counters.get(name, 0))


def _soak_one_kernel(model: SSMDVFSModel, kernel: KernelProfile,
                     arch: GPUArchConfig, power_model: PowerModel,
                     store: ArtifactStore, config: SoakConfig,
                     seed: int) -> tuple[KernelSoak, dict[str, int]]:
    """One long-horizon run with faults + mid-run staleness injection."""
    baseline = GPUSimulator(arch, kernel, power_model, seed=seed,
                            epoch_s=config.epoch_s).run(
        StaticPolicy(arch.vf_table.default_level), keep_records=False)
    stale_epoch = max(2, int(baseline.epochs * config.stale_fraction))

    controller = SSMDVFSController(model, preset=config.preset)
    rollback = RollbackManager(
        store, SOAK_ARTIFACT,
        lambda restored: SSMDVFSController(restored, preset=config.preset))
    guarded = GuardedController(controller,
                                trip_threshold=config.trip_threshold,
                                drift_monitor=DriftMonitor(config.drift),
                                rollback=rollback)
    policy = FaultyPolicy(guarded, config.faults.with_seed(seed))

    simulator = GPUSimulator(arch, kernel, power_model, seed=seed,
                             epoch_s=config.epoch_s)
    policy.reset(simulator)
    rng = np.random.default_rng(seed ^ 0x5A5A)
    account = EnergyAccount()
    num_levels = arch.vf_table.num_levels
    num_clusters = len(simulator.clusters)
    epochs = 0
    alarm_epoch: int | None = None
    healed_epoch: int | None = None
    healed_by: str | None = None
    invalid_decisions = 0
    # A badly-fitted pair may drift and get healed *before* the
    # injection; the invariants must credit only detections of the
    # injected staleness, so episode counts are snapshotted at the
    # injection epoch and only increments past them count.
    pre_alarms = pre_swaps = pre_pins = 0
    while not simulator.finished:
        if epochs >= config.max_epochs:
            raise SimulationError(
                f"soak run exceeded {config.max_epochs} epochs on "
                f"{kernel.name!r}")
        record = simulator.step_epoch()
        epochs += 1
        if record.all_finished:
            time_s, energy_j = simulator.truncate_final_record(record)
            account.add(energy_j, time_s)
            continue
        account.add(record.energy_j, record.duration_s)
        if epochs == stale_epoch:
            # The chaos event: whichever pair is *currently* serving —
            # the original, or one already hot-swapped in — silently
            # goes stale.
            victim = getattr(guarded.inner, "model", None)
            if victim is not None:
                perturb_model_weights(victim, config.stale_sigma, rng)
            before = policy.observability_counters()
            pre_alarms = _counter(before, "drift_alarms")
            pre_swaps = _counter(before, "rollback_hot_swaps")
            pre_pins = _counter(before, "rollback_pinned_fallback")
        decision = policy.decide(record)
        # Invariant 1, checked *outside* the whole policy stack: what
        # actually reaches the actuator must always be a clean level
        # list.  A failure is recorded and neutralised so the soak can
        # keep collecting evidence.
        try:
            levels = validate_decision(decision, num_levels, num_clusters)
        except PolicyError:
            invalid_decisions += 1
            levels = [arch.vf_table.default_level] * num_clusters
        simulator.apply_decision(levels)
        if epochs >= stale_epoch and (alarm_epoch is None
                                      or healed_epoch is None):
            counters = policy.observability_counters()
            if (alarm_epoch is None
                    and _counter(counters, "drift_alarms") > pre_alarms):
                alarm_epoch = epochs
            if healed_epoch is None:
                if _counter(counters, "rollback_hot_swaps") > pre_swaps:
                    healed_epoch, healed_by = epochs, "hot_swap"
                elif (_counter(counters, "rollback_pinned_fallback")
                        > pre_pins):
                    healed_epoch, healed_by = epochs, "pinned_fallback"

    return KernelSoak(
        kernel_name=kernel.name,
        epochs=epochs,
        baseline_epochs=baseline.epochs,
        stale_epoch=stale_epoch,
        alarm_epoch=alarm_epoch,
        healed_epoch=healed_epoch,
        healed_by=healed_by,
        normalized_latency=account.time_s / baseline.time_s,
        normalized_edp=account.edp / baseline.edp,
        invalid_decisions=invalid_decisions,
    ), policy.observability_counters()


def run_soak(model: SSMDVFSModel, kernels: list[KernelProfile],
             arch: GPUArchConfig, store_root: str | Path,
             config: SoakConfig | None = None,
             power_model: PowerModel | None = None) -> SoakResult:
    """Run the chaos soak; returns per-kernel records + verdicts.

    The trusted pair is registered in an :class:`ArtifactStore` at
    ``store_root`` as ``last_known_good`` before any chaos starts, so
    the drift layer has something real to roll back to — the soak run
    itself drives a *copy*, keeping the registry pristine.  Kernels
    run serially with per-kernel derived seeds: the whole result is a
    pure function of ``(model, kernels, arch, config)``.
    """
    config = config or SoakConfig()
    power_model = power_model or PowerModel()
    store = ArtifactStore(store_root)
    store.put(SOAK_ARTIFACT, model.to_bytes(), schema=PAIR_SCHEMA,
              mark_good=True)

    result = SoakResult(
        preset=config.preset,
        latency_tolerance=1.0 + config.preset + config.latency_slack,
        seed=config.seed)

    result.crash_trials, result.crash_torn_reads = crash_write_torture(
        store, "soak-torture", model.to_bytes()[:4096] or b"soak",
        config.crash_write_trials, seed=config.seed)
    if result.crash_torn_reads:
        result.violations.append(
            f"crash-write torture observed {result.crash_torn_reads} "
            f"torn reads in {result.crash_trials} kills")

    for index, kernel in enumerate(kernels):
        # A fresh deserialised copy per kernel: the staleness injection
        # mutates weights in place and must not leak across kernels
        # (or into the caller's model).
        record, run_counters = _soak_one_kernel(
            SSMDVFSModel.from_bytes(model.to_bytes()), kernel, arch,
            power_model, store, config, seed=config.seed + 101 * index)
        result.records.append(record)
        for name, amount in run_counters.items():
            result.counters[name] = result.counters.get(name, 0) + amount
        if record.invalid_decisions:
            result.violations.append(
                f"{kernel.name}: {record.invalid_decisions} invalid "
                f"decisions reached the actuator")
        if record.normalized_latency > result.latency_tolerance:
            result.violations.append(
                f"{kernel.name}: normalized latency "
                f"{record.normalized_latency:.3f} exceeds tolerance "
                f"{result.latency_tolerance:.3f}")
        if record.alarm_epoch is None:
            result.violations.append(
                f"{kernel.name}: staleness injected at epoch "
                f"{record.stale_epoch} was never detected")
        elif record.healed_epoch is None:
            result.violations.append(
                f"{kernel.name}: drift alarm at epoch "
                f"{record.alarm_epoch} never healed")
        elif record.healed_epoch - record.stale_epoch > config.recovery_epochs:
            result.violations.append(
                f"{kernel.name}: recovery took "
                f"{record.healed_epoch - record.stale_epoch} epochs "
                f"(budget {config.recovery_epochs})")

    for name, amount in store.counters.items():
        result.counters[name] = result.counters.get(name, 0) + amount
    return result
