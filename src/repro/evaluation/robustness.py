"""Robustness studies: seed sweeps and counter measurement noise.

Two analyses beyond the paper's single-configuration evaluation:

* **Seed sweeps** — re-run a policy comparison across simulator seeds
  and report mean +- std of the aggregate metrics, so "SSMDVFS beats X
  by Y %" comes with an error bar.
* **Counter noise** — real hardware counters sampled over 10 µs windows
  are noisy.  :class:`NoisyCountersPolicy` wraps any policy and
  perturbs every counter it observes with multiplicative Gaussian
  noise, quantifying how gracefully each controller degrades.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PolicyError, SimulationError
from ..gpu.counters import COUNTER_NAMES, CounterSet
from ..gpu.simulator import EpochRecord, GPUSimulator
from ..gpu.kernels import KernelProfile
from ..gpu.arch import GPUArchConfig
from ..power.model import PowerModel
from .runner import ComparisonResult, compare_policies


class NoisyCountersPolicy:
    """Wrap a policy; corrupt the counters it sees with relative noise."""

    def __init__(self, inner, sigma: float, seed: int = 0) -> None:
        if sigma < 0:
            raise PolicyError("noise sigma cannot be negative")
        self.inner = inner
        self.sigma = float(sigma)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.name = f"{inner.name}+noise{sigma:g}"

    def reset(self, simulator: GPUSimulator) -> None:
        """Re-seed the noise stream and reset the wrapped policy."""
        self._rng = np.random.default_rng(self.seed)
        self.inner.reset(simulator)

    def _perturb(self, counters: CounterSet) -> CounterSet:
        if self.sigma == 0.0:
            return counters
        noisy = CounterSet()
        factors = np.maximum(
            0.0, 1.0 + self.sigma * self._rng.standard_normal(
                len(COUNTER_NAMES)))
        for name, factor in zip(COUNTER_NAMES, factors):
            value = counters[name]
            if value != 0.0:
                noisy[name] = value * factor
        return noisy

    def decide(self, record: EpochRecord):
        """Forward a counter-perturbed copy of the record."""
        noisy_record = EpochRecord(
            index=record.index,
            start_time_s=record.start_time_s,
            duration_s=record.duration_s,
            levels=record.levels,
            counters=self._perturb(record.counters),
            cluster_counters=[self._perturb(c)
                              for c in record.cluster_counters],
            instructions=record.instructions,
            cluster_energy_j=record.cluster_energy_j,
            uncore_energy_j=record.uncore_energy_j,
            all_finished=record.all_finished,
            finish_time_s=record.finish_time_s,
        )
        return self.inner.decide(noisy_record)


@dataclass
class SeedSweepResult:
    """Aggregate metrics across seeds, per policy."""

    seeds: list[int]
    mean_edp: dict[str, float] = field(default_factory=dict)
    std_edp: dict[str, float] = field(default_factory=dict)
    mean_latency: dict[str, float] = field(default_factory=dict)
    std_latency: dict[str, float] = field(default_factory=dict)
    comparisons: list[ComparisonResult] = field(default_factory=list)

    def render(self) -> str:
        """Mean +- std table across seeds."""
        from .reporting import format_table
        rows = []
        for policy in self.mean_edp:
            rows.append([
                policy,
                f"{self.mean_edp[policy]:.3f} +- {self.std_edp[policy]:.3f}",
                f"{self.mean_latency[policy]:.3f} +- "
                f"{self.std_latency[policy]:.3f}",
            ])
        return format_table(["Policy", "EDP (mean +- std)",
                             "latency (mean +- std)"], rows,
                            title=f"Seed sweep over {self.seeds}")


def seed_sweep(policy_factories: dict[str, callable],
               kernels: list[KernelProfile], arch: GPUArchConfig,
               preset: float, seeds: list[int],
               power_model: PowerModel | None = None) -> SeedSweepResult:
    """Run the comparison under several simulator seeds."""
    if not seeds:
        raise SimulationError("need at least one seed")
    result = SeedSweepResult(seeds=list(seeds))
    per_policy_edp: dict[str, list[float]] = {}
    per_policy_lat: dict[str, list[float]] = {}
    for seed in seeds:
        comparison = compare_policies(policy_factories, kernels, arch,
                                      preset, power_model, seed=seed)
        result.comparisons.append(comparison)
        for policy in comparison.policies():
            per_policy_edp.setdefault(policy, []).append(
                comparison.mean_normalized_edp(policy))
            per_policy_lat.setdefault(policy, []).append(
                comparison.mean_normalized_latency(policy))
    for policy, values in per_policy_edp.items():
        result.mean_edp[policy] = float(np.mean(values))
        result.std_edp[policy] = float(np.std(values))
    for policy, values in per_policy_lat.items():
        result.mean_latency[policy] = float(np.mean(values))
        result.std_latency[policy] = float(np.std(values))
    return result
