"""Robustness studies: seed sweeps, counter noise, and fault sweeps.

Analyses beyond the paper's single-configuration evaluation:

* **Seed sweeps** — re-run a policy comparison across simulator seeds
  and report mean +- std of the aggregate metrics, so "SSMDVFS beats X
  by Y %" comes with an error bar.
* **Counter noise** — real hardware counters sampled over 10 µs windows
  are noisy.  :class:`NoisyCountersPolicy` wraps any policy and
  perturbs every counter it observes with multiplicative Gaussian
  noise, quantifying how gracefully each controller degrades.
* **Fault sweeps** — :func:`fault_sweep` runs each policy under the
  :mod:`repro.faults` scenarios (sensor dropout, stuck registers, NaN
  poisoning, spikes, actuation faults) across a rate grid and reports
  preset-violation statistics plus guard/fault counters per cell —
  the campaign behind the ``repro-ssmdvfs faults`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from ..errors import PolicyError, SimulationError
from ..faults import FaultConfig, config_for_mode, build_faulty_policy
from ..gpu.counters import COUNTER_NAMES, CounterSet
from ..gpu.simulator import EpochRecord, GPUSimulator
from ..gpu.kernels import KernelProfile
from ..gpu.arch import GPUArchConfig
from ..parallel import CampaignStats
from ..power.model import PowerModel
from .runner import ComparisonResult, compare_policies


class NoisyCountersPolicy:
    """Wrap a policy; corrupt the counters it sees with relative noise."""

    def __init__(self, inner, sigma: float, seed: int = 0) -> None:
        if sigma < 0:
            raise PolicyError("noise sigma cannot be negative")
        self.inner = inner
        self.sigma = float(sigma)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.name = f"{inner.name}+noise{sigma:g}"

    def reset(self, simulator: GPUSimulator) -> None:
        """Re-seed the noise stream and reset the wrapped policy."""
        self._rng = np.random.default_rng(self.seed)
        self.inner.reset(simulator)

    def _perturb(self, counters: CounterSet) -> CounterSet:
        if self.sigma == 0.0:
            return counters
        noisy = CounterSet()
        factors = np.maximum(
            0.0, 1.0 + self.sigma * self._rng.standard_normal(
                len(COUNTER_NAMES)))
        for name, factor in zip(COUNTER_NAMES, factors):
            value = counters[name]
            if value != 0.0:
                noisy[name] = value * factor
        return noisy

    def decide(self, record: EpochRecord):
        """Forward a counter-perturbed copy of the record."""
        noisy_record = EpochRecord(
            index=record.index,
            start_time_s=record.start_time_s,
            duration_s=record.duration_s,
            levels=record.levels,
            counters=self._perturb(record.counters),
            cluster_counters=[self._perturb(c)
                              for c in record.cluster_counters],
            instructions=record.instructions,
            cluster_energy_j=record.cluster_energy_j,
            uncore_energy_j=record.uncore_energy_j,
            all_finished=record.all_finished,
            finish_time_s=record.finish_time_s,
        )
        return self.inner.decide(noisy_record)


@dataclass
class SeedSweepResult:
    """Aggregate metrics across seeds, per policy."""

    seeds: list[int]
    mean_edp: dict[str, float] = field(default_factory=dict)
    std_edp: dict[str, float] = field(default_factory=dict)
    mean_latency: dict[str, float] = field(default_factory=dict)
    std_latency: dict[str, float] = field(default_factory=dict)
    comparisons: list[ComparisonResult] = field(default_factory=list)

    def render(self) -> str:
        """Mean +- std table across seeds."""
        from .reporting import format_table
        rows = []
        for policy in self.mean_edp:
            rows.append([
                policy,
                f"{self.mean_edp[policy]:.3f} +- {self.std_edp[policy]:.3f}",
                f"{self.mean_latency[policy]:.3f} +- "
                f"{self.std_latency[policy]:.3f}",
            ])
        return format_table(["Policy", "EDP (mean +- std)",
                             "latency (mean +- std)"], rows,
                            title=f"Seed sweep over {self.seeds}")


def seed_sweep(policy_factories: dict[str, callable],
               kernels: list[KernelProfile], arch: GPUArchConfig,
               preset: float, seeds: list[int],
               power_model: PowerModel | None = None,
               fused: bool = False, fuse_width: int = 8) -> SeedSweepResult:
    """Run the comparison under several simulator seeds."""
    if not seeds:
        raise SimulationError("need at least one seed")
    result = SeedSweepResult(seeds=list(seeds))
    per_policy_edp: dict[str, list[float]] = {}
    per_policy_lat: dict[str, list[float]] = {}
    for seed in seeds:
        comparison = compare_policies(policy_factories, kernels, arch,
                                      preset, power_model, seed=seed,
                                      fused=fused, fuse_width=fuse_width)
        result.comparisons.append(comparison)
        for policy in comparison.policies():
            per_policy_edp.setdefault(policy, []).append(
                comparison.mean_normalized_edp(policy))
            per_policy_lat.setdefault(policy, []).append(
                comparison.mean_normalized_latency(policy))
    for policy, values in per_policy_edp.items():
        result.mean_edp[policy] = float(np.mean(values))
        result.std_edp[policy] = float(np.std(values))
    for policy, values in per_policy_lat.items():
        result.mean_latency[policy] = float(np.mean(values))
        result.std_latency[policy] = float(np.std(values))
    return result


# ---------------------------------------------------------------------------
# Fault sweeps
# ---------------------------------------------------------------------------

@dataclass
class FaultSweepCell:
    """One (fault mode, rate, policy) measurement of a fault sweep."""

    mode: str
    rate: float
    policy: str
    mean_edp: float
    mean_latency: float
    violations: int
    kernels: int
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def violation_rate(self) -> float:
        """Fraction of kernels whose latency blew the preset budget."""
        return self.violations / self.kernels if self.kernels else 0.0


@dataclass
class FaultSweepResult:
    """All cells of one fault sweep, plus the violation criterion."""

    preset: float
    slack: float
    cells: list[FaultSweepCell] = field(default_factory=list)

    def total_violations(self, policy: str | None = None) -> int:
        """Summed preset violations (optionally for one policy)."""
        return sum(c.violations for c in self.cells
                   if policy is None or c.policy == policy)

    def guard_engagements(self) -> int:
        """Summed guard trips across every cell (0 when unguarded)."""
        return sum(c.counters.get("guard_trips", 0) for c in self.cells)

    def render(self) -> str:
        """Per-cell table: metrics, violations and headline counters."""
        from .reporting import format_table
        rows = []
        for c in self.cells:
            faults = sum(v for k, v in c.counters.items()
                         if k.startswith("fault_"))
            rows.append([
                c.mode, f"{c.rate:g}", c.policy,
                f"{c.mean_edp:.3f}", f"{c.mean_latency:.3f}",
                f"{c.violations}/{c.kernels}",
                str(faults),
                str(c.counters.get("guard_trips", 0)),
                str(c.counters.get("guard_recoveries", 0)),
            ])
        title = (f"Fault sweep (preset {self.preset:g}, violation = "
                 f"latency > {1 + self.preset + self.slack:.3f}x baseline)")
        return format_table(
            ["mode", "rate", "policy", "EDP", "latency", "viol",
             "faults", "trips", "recov"], rows, title=title)


def fault_sweep(policy_factories: dict[str, callable],
                kernels: list[KernelProfile], arch: GPUArchConfig,
                preset: float, modes: list[str], rates: list[float], *,
                guard: bool = True, slack: float = 0.05, seed: int = 0,
                power_model: PowerModel | None = None,
                workers: int | None = None,
                stats: CampaignStats | None = None,
                guard_kwargs: dict | None = None,
                fused: bool = False,
                fuse_width: int = 8) -> FaultSweepResult:
    """Sweep fault modes × rates over every policy.

    Each policy is wrapped per :func:`repro.faults.build_faulty_policy`
    — a :class:`~repro.core.guarded.GuardedController` inside (unless
    ``guard=False``) and the fault injector outside, exactly as faults
    would hit a deployed controller.  A run *violates* the preset when
    its latency exceeds ``1 + preset + slack`` times the fault-free
    static baseline; ``slack`` absorbs the controller's honest noise
    floor so the statistic isolates fault-induced breakage.  Fault and
    guard counters are attributed per cell and also folded into
    ``stats`` when given.  ``fused``/``fuse_width`` co-simulate each
    cell's runs through the fused campaign engine (bit-identical; see
    :func:`repro.evaluation.runner.compare_policies`).
    """
    if not modes or not rates:
        raise SimulationError("need at least one fault mode and one rate")
    threshold = 1.0 + preset + slack
    result = FaultSweepResult(preset=preset, slack=slack)
    for mode in modes:
        for rate in rates:
            config = config_for_mode(mode, rate, seed=seed)
            for name, factory in policy_factories.items():
                cell_stats = CampaignStats()
                wrapped = partial(build_faulty_policy, factory, config,
                                  guard=guard, **(guard_kwargs or {}))
                comparison = compare_policies(
                    {name: wrapped}, kernels, arch, preset, power_model,
                    seed=seed, workers=workers, stats=cell_stats,
                    fused=fused, fuse_width=fuse_width)
                runs = comparison.series(name)
                violations = sum(1 for r in runs
                                 if r.normalized_latency > threshold)
                counters = {k: v for k, v in cell_stats.counters.items()
                            if k.startswith(("fault_", "guard_"))
                            or k == "calibration_anomalies"}
                result.cells.append(FaultSweepCell(
                    mode=mode, rate=rate, policy=name,
                    mean_edp=comparison.mean_normalized_edp(name),
                    mean_latency=comparison.mean_normalized_latency(name),
                    violations=violations, kernels=len(runs),
                    counters=counters))
                if stats is not None:
                    stats.merge_counters(cell_stats.counters)
    return result
