"""Combined report generation.

Collects the rendered artefacts the benchmarks wrote under
``benchmarks/results/`` into one markdown report, ordered by the
experiment registry, with the paper claims inlined next to each
measured table.  ``repro-ssmdvfs report`` drives this from the CLI.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import ReproError
from .registry import all_experiments

#: results-file name per experiment id (as written by the benches).
_RESULT_FILES = {
    "table1": "table1_rfe.txt",
    "table2": "table2_model.txt",
    "fig3": "fig3_compression.txt",
    "fig4": "fig4_edp_latency.txt",
    "hw": "hw_asic.txt",
    "ablate-calibrator": "ablation_calibrator.txt",
    "ablate-epoch": "ablation_epoch_length.txt",
    "ablate-quant": "ablation_quantization.txt",
    "ablate-thermal": "ablation_thermal.txt",
    "ablate-event-driven": "ablation_event_driven.txt",
    "ablate-vf-granularity": "ablation_vf_granularity.txt",
    "robustness": "robustness_noise.txt",
    "mixed-tenancy": "mixed_tenancy.txt",
    "transfer-study": "transfer_study.txt",
    "model-agreement": "model_agreement.txt",
}


def build_report(results_dir: str | Path,
                 include_missing: bool = True) -> str:
    """Assemble the markdown report from the results directory."""
    results_dir = Path(results_dir)
    if not results_dir.exists():
        raise ReproError(
            f"no results at {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    sections = ["# SSMDVFS reproduction report",
                "",
                "Generated from the rendered benchmark outputs in "
                f"`{results_dir}`.", ""]
    for entry in all_experiments():
        filename = _RESULT_FILES.get(entry.experiment_id)
        if filename is None:
            continue
        path = results_dir / filename
        kind = "extension" if entry.extension else "paper artefact"
        sections.append(f"## {entry.title}")
        sections.append("")
        sections.append(f"*{kind}* — paper claim: {entry.paper_claim}")
        sections.append("")
        if path.exists():
            sections.append("```")
            sections.append(path.read_text().rstrip())
            sections.append("```")
        elif include_missing:
            sections.append(f"*(not yet measured — run `pytest "
                            f"{entry.bench} --benchmark-only`)*")
        sections.append("")
    return "\n".join(sections)


def write_report(results_dir: str | Path, output: str | Path) -> Path:
    """Build the report and write it to ``output``; returns the path."""
    output = Path(output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(build_report(results_dir))
    return output
