"""ASCII reporting helpers for experiment drivers and benchmarks."""

from __future__ import annotations

from ..errors import ReproError


def format_table(headers: list[str], rows: list[list], title: str = "",
                 float_format: str = "{:.4f}") -> str:
    """Render a fixed-width text table."""
    if not headers:
        raise ReproError("table needs headers")
    rendered_rows = []
    for row in rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        rendered_rows.append([
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ])
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_percent(value: float, signed: bool = False) -> str:
    """Render a fraction as a percentage string."""
    sign = "+" if signed and value >= 0 else ""
    return f"{sign}{value * 100.0:.2f}%"


def format_series(name: str, values: list[float],
                  fmt: str = "{:.3f}") -> str:
    """One labelled numeric series on a single line."""
    return f"{name}: [" + ", ".join(fmt.format(v) for v in values) + "]"
