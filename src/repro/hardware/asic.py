"""ASIC cost model for the SSMDVFS inference module (§V-D).

The paper implements the compressed model as an FP32 ASIC block:
192 cycles per inference (0.16 µs at 1165 MHz, 1.65 % of a 10 µs
epoch), 0.0080 mm² and 0.0025 W after scaling from 65 nm to 28 nm.

We model the natural microarchitecture for a ~180-MAC workload: a small
number of FP32 MAC units streaming weights from a local SRAM, one layer
at a time.  Cycles come from the MAC schedule plus per-layer pipeline
fill and I/O; area and energy come from published 65 nm FP32-MAC and
SRAM figures, then node-scale to 28 nm via :mod:`repro.hardware.scaling`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareModelError
from ..nn.flops import macs
from ..nn.mlp import MLP
from ..units import to_us
from .scaling import scale_area, scale_energy

#: Weight precision of the paper's module (FP32, §V-D).
WEIGHT_BITS = 32


@dataclass(frozen=True)
class ASICConfig:
    """Constants of the inference-engine model (65 nm reference).

    Defaults are representative published 65 nm figures: an FP32
    multiply-accumulate datapath around 0.02 mm² and ~12 pJ/op, and
    single-port SRAM near 0.55 um^2/bit and ~0.05 pJ/bit read energy.
    """

    num_macs: int = 1
    clock_hz: float = 1165e6
    mac_area_mm2: float = 0.020
    mac_energy_j: float = 12e-12
    sram_area_mm2_per_bit: float = 0.55e-6
    sram_read_energy_j_per_bit: float = 0.05e-12
    control_area_overhead: float = 0.35
    pipeline_cycles_per_layer: int = 4
    io_cycles: int = 12
    leakage_fraction: float = 0.15
    reference_node_nm: int = 65

    def __post_init__(self) -> None:
        if self.num_macs < 1:
            raise HardwareModelError("need at least one MAC unit")
        if self.clock_hz <= 0:
            raise HardwareModelError("clock must be positive")
        for name in ("mac_area_mm2", "mac_energy_j",
                     "sram_area_mm2_per_bit", "sram_read_energy_j_per_bit"):
            if getattr(self, name) <= 0:
                raise HardwareModelError(f"{name} must be positive")
        if not 0.0 <= self.leakage_fraction < 1.0:
            raise HardwareModelError("leakage_fraction must be in [0, 1)")


@dataclass(frozen=True)
class ASICReport:
    """Cost of running a model pair on the inference engine."""

    cycles_per_inference: int
    latency_s: float
    area_mm2_reference: float
    area_mm2_scaled: float
    energy_per_inference_j: float
    power_w_scaled: float
    node_nm: int
    reference_node_nm: int

    @property
    def latency_us(self) -> float:
        """Inference latency in microseconds."""
        return to_us(self.latency_s)

    def epoch_fraction(self, epoch_s: float) -> float:
        """Share of one DVFS epoch spent on inference."""
        if epoch_s <= 0:
            raise HardwareModelError("epoch must be positive")
        return self.latency_s / epoch_s

    def tdp_fraction(self, gpu_tdp_w: float) -> float:
        """Inference power as a share of the GPU's TDP."""
        if gpu_tdp_w <= 0:
            raise HardwareModelError("TDP must be positive")
        return self.power_w_scaled / gpu_tdp_w


class ASICModel:
    """Analytical cost model of the SSMDVFS inference engine."""

    def __init__(self, config: ASICConfig | None = None) -> None:
        self.config = config or ASICConfig()

    # ------------------------------------------------------------------
    def _total_macs(self, models: list[MLP], sparse: bool) -> int:
        if not models:
            raise HardwareModelError("no models given")
        return sum(macs(model, sparse=sparse) for model in models)

    def _total_layers(self, models: list[MLP]) -> int:
        return sum(len(model.layers) for model in models)

    def _weight_bits(self, models: list[MLP], sparse: bool) -> int:
        # Sparse storage still keeps per-weight indices; approximate a
        # compressed-sparse layout as value bits + 25 % index overhead.
        bits = self._total_macs(models, sparse) * WEIGHT_BITS
        return int(bits * 1.25) if sparse else bits

    def cycles_per_inference(self, models: list[MLP],
                             sparse: bool = True) -> int:
        """MAC schedule + per-layer pipeline fill + I/O."""
        cfg = self.config
        mac_cycles = -(-self._total_macs(models, sparse) // cfg.num_macs)
        overhead = (cfg.pipeline_cycles_per_layer * self._total_layers(models)
                    + cfg.io_cycles)
        return mac_cycles + overhead

    def area_mm2(self, models: list[MLP], sparse: bool = True,
                 node_nm: int | None = None) -> float:
        """Die area at the requested node (default: reference node)."""
        cfg = self.config
        sram = self._weight_bits(models, sparse) * cfg.sram_area_mm2_per_bit
        datapath = cfg.num_macs * cfg.mac_area_mm2
        area = (datapath + sram) * (1.0 + cfg.control_area_overhead)
        if node_nm is None or node_nm == cfg.reference_node_nm:
            return area
        return scale_area(area, cfg.reference_node_nm, node_nm)

    def energy_per_inference_j(self, models: list[MLP], sparse: bool = True,
                               node_nm: int | None = None) -> float:
        """Dynamic energy of one inference (plus leakage share)."""
        cfg = self.config
        n_macs = self._total_macs(models, sparse)
        mac_energy = n_macs * cfg.mac_energy_j
        sram_energy = (n_macs * WEIGHT_BITS
                       * cfg.sram_read_energy_j_per_bit)
        dynamic = mac_energy + sram_energy
        total = dynamic / (1.0 - cfg.leakage_fraction)
        if node_nm is None or node_nm == cfg.reference_node_nm:
            return total
        return scale_energy(total, cfg.reference_node_nm, node_nm)

    def report(self, models: list[MLP], sparse: bool = True,
               node_nm: int = 28) -> ASICReport:
        """Full §V-D style cost report at ``node_nm``."""
        cfg = self.config
        cycles = self.cycles_per_inference(models, sparse)
        latency = cycles / cfg.clock_hz
        energy = self.energy_per_inference_j(models, sparse, node_nm)
        return ASICReport(
            cycles_per_inference=cycles,
            latency_s=latency,
            area_mm2_reference=self.area_mm2(models, sparse),
            area_mm2_scaled=self.area_mm2(models, sparse, node_nm),
            energy_per_inference_j=energy,
            power_w_scaled=energy / latency,
            node_nm=node_nm,
            reference_node_nm=cfg.reference_node_nm,
        )
