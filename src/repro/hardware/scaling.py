"""Technology-node scaling (DeepScaleTool surrogate, §V-D).

The paper synthesises the SSMDVFS module with a 65 nm TSMC library and
scales area and power to the GPU's 28 nm node with DeepScaleTool
(Sarangi & Baas, ISCAS 2021).  We reproduce that step with a published
scaling table: area follows the classic node-length-squared trend
(with a dash of layout inefficiency at small nodes), and energy follows
capacitance x V^2 using representative nominal voltages per node.
"""

from __future__ import annotations

from ..errors import HardwareModelError

#: Per-node scaling data relative to the 65 nm reference.
#: area_factor: block area multiplier; energy_factor: switching-energy
#: multiplier (C * V^2 trend with nominal voltages).
_NODES: dict[int, dict[str, float]] = {
    90: {"area_factor": 1.92, "energy_factor": 1.65},
    65: {"area_factor": 1.00, "energy_factor": 1.00},
    45: {"area_factor": 0.53, "energy_factor": 0.62},
    40: {"area_factor": 0.45, "energy_factor": 0.55},
    32: {"area_factor": 0.30, "energy_factor": 0.42},
    28: {"area_factor": 0.24, "energy_factor": 0.35},
    22: {"area_factor": 0.16, "energy_factor": 0.27},
    16: {"area_factor": 0.10, "energy_factor": 0.20},
}


def supported_nodes() -> list[int]:
    """Nodes with scaling data, largest first."""
    return sorted(_NODES, reverse=True)


def _factors(node_nm: int) -> dict[str, float]:
    try:
        return _NODES[int(node_nm)]
    except KeyError:
        raise HardwareModelError(
            f"no scaling data for {node_nm} nm; supported: "
            f"{supported_nodes()}"
        ) from None


def scale_area(area_mm2: float, from_node_nm: int, to_node_nm: int) -> float:
    """Scale a block area between technology nodes."""
    if area_mm2 < 0:
        raise HardwareModelError("area cannot be negative")
    return (area_mm2 * _factors(to_node_nm)["area_factor"]
            / _factors(from_node_nm)["area_factor"])


def scale_energy(energy_j: float, from_node_nm: int, to_node_nm: int) -> float:
    """Scale a switching energy between technology nodes."""
    if energy_j < 0:
        raise HardwareModelError("energy cannot be negative")
    return (energy_j * _factors(to_node_nm)["energy_factor"]
            / _factors(from_node_nm)["energy_factor"])


def scale_power(power_w: float, from_node_nm: int, to_node_nm: int) -> float:
    """Scale dynamic power at a fixed clock between nodes."""
    return scale_energy(power_w, from_node_nm, to_node_nm)
