"""ASIC implementation cost model (paper §V-D)."""

from .asic import WEIGHT_BITS, ASICConfig, ASICModel, ASICReport
from .scaling import scale_area, scale_energy, scale_power, supported_nodes

__all__ = [
    "WEIGHT_BITS", "ASICConfig", "ASICModel", "ASICReport",
    "scale_area", "scale_energy", "scale_power", "supported_nodes",
]
