"""Seeded, composable fault injection for policies and campaigns.

SSMDVFS is a closed loop: corrupted counter samples, NaN model outputs
and crashed campaign workers can silently blow the performance-loss
preset the whole system promises to honour.  This module provides the
fault models the resilience work is tested against:

* :class:`FaultConfig` — a declarative, seeded description of sensor
  faults (whole-window dropout, stuck-at registers, NaN poisoning,
  spiked noise) and actuation faults (delayed or dropped frequency
  switches).
* :class:`FaultyPolicy` — wraps any DVFS policy: corrupts the epoch
  record the policy observes and the decisions it actuates, with a
  deterministic per-seed fault stream.  Compose with
  :class:`repro.core.guarded.GuardedController` (faults outside, guard
  inside) to exercise the guard exactly as deployment would:
  ``FaultyPolicy(GuardedController(inner), config)``.
* :class:`FlakyTask` — a picklable campaign-task proxy that injects
  *process-level* faults (hard worker crashes, hangs, raised
  exceptions) deterministically per task, tracking attempts through
  marker files — the only channel that survives a killed worker.  It
  drives the retry/quarantine machinery of
  :func:`repro.parallel.parallel_map`.
* :class:`NodeFaultPlan` — a seeded train of *node-level* events for
  the fleet layer: whole-GPU crashes, hangs (progress stops until the
  heartbeat watchdog notices), thermal runaway, and sensor-corruption
  storms, each with a timed recovery.  The fleet scheduler's discrete-
  event replay consumes the plan to drive its health FSM, checkpointed
  job migration and load shedding
  (:mod:`repro.fleet.scheduler`), and the ``repro-ssmdvfs
  fleet-chaos`` harness asserts fleet invariants under randomized
  plans.

Every fault draw is deterministic given the config seed *and* the run
identity (:func:`derive_fault_seed` mixes in the workload name and
simulator seed), so a faulted campaign is replayable byte-for-byte at
any worker count while concurrent tasks still draw independent fault
streams rather than one correlated sequence.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from .errors import FaultInjectionError, FleetFaultError, ServeFaultError
from .gpu.counters import NUM_COUNTERS, CounterSet
from .gpu.simulator import EpochRecord, GPUSimulator
from .parallel import derive_seed


def derive_fault_seed(base_seed: int, *parts: object) -> int:
    """Stable per-run fault-stream seed from the run's identity.

    A campaign fans one :class:`FaultConfig` out over many tasks; if
    every wrapped policy re-seeded its stream straight from
    ``config.seed``, all tasks would replay the *same* fault sequence
    — systematically correlated faults masquerading as an independent
    sample.  Mixing the run identity (workload name, simulator seed)
    into the seed via SHA-256 keeps each task's stream independent
    while staying deterministic: the same task draws the same faults
    serial or parallel, any worker count.
    """
    return derive_seed(base_seed, "fault-stream", *parts)

#: The probability knobs of :class:`FaultConfig`, validated as one group.
_RATE_FIELDS = ("counter_dropout", "counter_stuck", "counter_nan",
                "counter_spike", "actuation_delay", "actuation_drop")


@dataclass(frozen=True)
class FaultConfig:
    """Declarative description of one fault-injection scenario.

    Counter faults are drawn per cluster per epoch: ``counter_dropout``
    is the probability the *whole* counter window reads zero (a dropped
    sensor sample), ``counter_stuck`` the probability the window
    re-delivers the previous epoch's values (a stale register), and
    ``counter_nan`` / ``counter_spike`` the per-counter probability of
    a NaN poisoning or a ``spike_magnitude``× outlier.  Actuation
    faults are drawn per decision: ``actuation_delay`` applies the
    decision one epoch late, ``actuation_drop`` discards it (levels
    hold).  All draws come from one stream seeded by ``seed``.
    """

    counter_dropout: float = 0.0
    counter_stuck: float = 0.0
    counter_nan: float = 0.0
    counter_spike: float = 0.0
    spike_magnitude: float = 1e3
    actuation_delay: float = 0.0
    actuation_drop: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultInjectionError(
                    f"{name} must be a probability in [0, 1], got {rate!r}")
        if self.spike_magnitude <= 0:
            raise FaultInjectionError("spike_magnitude must be positive")

    @property
    def any_active(self) -> bool:
        """True if at least one fault rate is non-zero."""
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    def with_seed(self, seed: int) -> "FaultConfig":
        """The same scenario under a different fault stream."""
        return replace(self, seed=int(seed))


#: Scenario presets used by the ``repro-ssmdvfs faults`` sweep: each
#: maps one sweep rate onto the fault dimension it stresses.
FAULT_MODES = ("dropout", "stuck", "nan", "spike", "actuation")


def config_for_mode(mode: str, rate: float, seed: int = 0) -> FaultConfig:
    """A single-dimension :class:`FaultConfig` for a sweep point."""
    if mode == "dropout":
        return FaultConfig(counter_dropout=rate, seed=seed)
    if mode == "stuck":
        return FaultConfig(counter_stuck=rate, seed=seed)
    if mode == "nan":
        return FaultConfig(counter_nan=rate, seed=seed)
    if mode == "spike":
        return FaultConfig(counter_spike=rate, seed=seed)
    if mode == "actuation":
        return FaultConfig(actuation_delay=rate, actuation_drop=rate / 2,
                           seed=seed)
    raise FaultInjectionError(
        f"unknown fault mode {mode!r}; expected one of {FAULT_MODES}")


class FaultyPolicy:
    """Wrap a policy; corrupt what it observes and what it actuates.

    The wrapper sits *outside* any guard layer, mirroring deployment:
    sensor faults corrupt the record before the controller sees it, and
    actuation faults corrupt the controller's output — including a
    guard's fallback decision — before the simulator applies it.
    Injection counts are exposed through :meth:`observability_counters`
    (``fault_*`` names) so campaign ``--stats`` can report them.
    """

    def __init__(self, inner, config: FaultConfig) -> None:
        if not isinstance(config, FaultConfig):
            raise FaultInjectionError("config must be a FaultConfig")
        self.inner = inner
        self.config = config
        self.name = f"{inner.name}+faults"
        self._rng = np.random.default_rng(config.seed)
        self._previous: list[CounterSet] | None = None
        self._delayed = None
        self.counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    def reset(self, simulator: GPUSimulator) -> None:
        """Derive this run's fault stream and reset the wrapped policy.

        The stream seed mixes the config seed with the run identity
        (:func:`derive_fault_seed`), so two tasks of the same campaign
        — different kernels or simulator seeds — draw independent
        fault sequences instead of replaying one stream in lockstep.
        """
        self._rng = np.random.default_rng(derive_fault_seed(
            self.config.seed, simulator.workload_name, simulator.seed))
        self._previous = None
        self._delayed = None
        self.counts = {}
        self.inner.reset(simulator)

    def _count(self, name: str, amount: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + amount

    def observability_counters(self) -> dict[str, int]:
        """Injection counts, merged with the wrapped policy's counters."""
        merged = dict(self.counts)
        inner_counters = getattr(self.inner, "observability_counters", None)
        if callable(inner_counters):
            for name, amount in inner_counters().items():
                merged[name] = merged.get(name, 0) + amount
        return merged

    # ------------------------------------------------------------------
    def _corrupt_counters(self, counters: CounterSet,
                          previous: CounterSet | None) -> CounterSet:
        config = self.config
        rng = self._rng
        if config.counter_dropout and rng.random() < config.counter_dropout:
            self._count("fault_counter_dropout")
            return CounterSet()
        if (config.counter_stuck and previous is not None
                and rng.random() < config.counter_stuck):
            self._count("fault_counter_stuck")
            return previous.copy()
        vector = counters.as_vector()
        if config.counter_nan:
            mask = rng.random(NUM_COUNTERS) < config.counter_nan
            injected = int(mask.sum())
            if injected:
                vector[mask] = np.nan
                self._count("fault_counter_nan", injected)
        if config.counter_spike:
            mask = rng.random(NUM_COUNTERS) < config.counter_spike
            injected = int(mask.sum())
            if injected:
                vector[mask] *= config.spike_magnitude
                self._count("fault_counter_spike", injected)
        return CounterSet.from_vector(vector)

    def corrupt_record(self, record: EpochRecord) -> EpochRecord:
        """A fault-injected copy of one epoch record."""
        previous = self._previous
        cluster_counters = []
        for index, counters in enumerate(record.cluster_counters):
            prev = previous[index] if previous is not None else None
            cluster_counters.append(self._corrupt_counters(counters, prev))
        # The policy-visible mean view is rebuilt from the corrupted
        # per-cluster sets so the two stay consistent.
        self._previous = cluster_counters
        return EpochRecord(
            index=record.index,
            start_time_s=record.start_time_s,
            duration_s=record.duration_s,
            levels=record.levels,
            counters=CounterSet.average(cluster_counters),
            cluster_counters=cluster_counters,
            instructions=record.instructions,
            cluster_energy_j=record.cluster_energy_j,
            uncore_energy_j=record.uncore_energy_j,
            all_finished=record.all_finished,
            finish_time_s=record.finish_time_s,
        )

    def decide(self, record: EpochRecord):
        """Forward a corrupted record; fault the actuation of the result."""
        decision = self.inner.decide(self.corrupt_record(record))
        config = self.config
        if config.actuation_drop and self._rng.random() < config.actuation_drop:
            self._count("fault_actuation_drop")
            return list(record.levels)
        if config.actuation_delay and self._rng.random() < config.actuation_delay:
            self._count("fault_actuation_delay")
            delayed, self._delayed = self._delayed, decision
            return list(record.levels) if delayed is None else delayed
        if self._delayed is not None:
            delayed, self._delayed = self._delayed, None
            return delayed
        return decision


def build_faulty_policy(factory, config: FaultConfig, *, guard: bool = True,
                        **guard_kwargs):
    """``factory()`` wrapped for a fault campaign.

    Composition order is deployment's: the guard wraps the raw policy,
    the fault injector wraps the guard, so sensor faults hit the guard's
    sanitizer and actuation faults hit its fallback output.  A
    module-level function (not a closure) so
    ``functools.partial(build_faulty_policy, factory, config)`` remains
    picklable for process-pool campaigns.
    """
    from .core.guarded import GuardedController
    inner = factory()
    if guard:
        inner = GuardedController(inner, **guard_kwargs)
    return FaultyPolicy(inner, config)


# ---------------------------------------------------------------------------
# Node-level fleet faults
# ---------------------------------------------------------------------------

#: Node-level fault kinds understood by the fleet replay.
NODE_FAULT_KINDS = ("crash", "hang", "thermal", "sensor_storm")


@dataclass(frozen=True, order=True)
class NodeFaultEvent:
    """One node-level event of a fleet fault train.

    ``at_s`` is when the fault strikes (fleet simulation time),
    ``duration_s`` how long the outage or degradation lasts before the
    timed recovery.  ``magnitude`` is kind-specific: the temperature
    spike in deg C for ``thermal``, the service-time stretch factor for
    ``sensor_storm`` (the guarded controller rides its fallback through
    the storm, so affected jobs run slower), and unused for ``crash`` /
    ``hang``.  Ordering is by strike time with the node id and kind as
    deterministic tie-breaks, which is the order the replay consumes.
    """

    at_s: float
    node_id: int
    kind: str
    duration_s: float
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in NODE_FAULT_KINDS:
            raise FleetFaultError(
                f"unknown node fault kind {self.kind!r}; "
                f"expected one of {NODE_FAULT_KINDS}")
        if self.at_s < 0:
            raise FleetFaultError("a fault cannot strike before t=0")
        if self.node_id < 0:
            raise FleetFaultError("node_id cannot be negative")
        if self.duration_s <= 0:
            raise FleetFaultError("fault duration must be positive")
        if self.magnitude <= 0:
            raise FleetFaultError("fault magnitude must be positive")

    @property
    def recovery_s(self) -> float:
        """When the timed recovery fires."""
        return self.at_s + self.duration_s

    def to_payload(self) -> dict:
        """JSON-ready dict."""
        return {"at_s": self.at_s, "node_id": self.node_id,
                "kind": self.kind, "duration_s": self.duration_s,
                "magnitude": self.magnitude}


#: The per-kind rate knobs of :class:`NodeFaultConfig`.
_NODE_RATE_FIELDS = ("crash_rate", "hang_rate", "thermal_rate",
                     "storm_rate")


@dataclass(frozen=True)
class NodeFaultConfig:
    """Declarative description of one fleet-level fault scenario.

    Each ``*_rate`` is the *expected number of events of that kind per
    node over the plan horizon* (a Poisson intensity, so a rate of 0.5
    over 16 nodes draws ~8 events).  Outage durations are drawn
    exponentially with mean ``mean_outage_s``, floored at
    ``min_outage_s``.  ``thermal_spike_c`` is the injected temperature
    rise of a thermal-runaway event and ``storm_slowdown`` the service
    stretch a sensor-corruption storm imposes on jobs dispatched into
    it (the guard pins its fallback level, trading speed for safety).
    All draws come from one stream derived from ``seed``.
    """

    crash_rate: float = 0.0
    hang_rate: float = 0.0
    thermal_rate: float = 0.0
    storm_rate: float = 0.0
    mean_outage_s: float = 300e-6
    min_outage_s: float = 30e-6
    thermal_spike_c: float = 45.0
    storm_slowdown: float = 1.5
    seed: int = 0

    def __post_init__(self) -> None:
        for name in _NODE_RATE_FIELDS:
            rate = getattr(self, name)
            if rate < 0:
                raise FleetFaultError(
                    f"{name} cannot be negative, got {rate!r}")
        if self.min_outage_s <= 0 or self.mean_outage_s < self.min_outage_s:
            raise FleetFaultError(
                "outage durations need 0 < min_outage_s <= mean_outage_s")
        if self.thermal_spike_c <= 0:
            raise FleetFaultError("thermal_spike_c must be positive")
        if self.storm_slowdown < 1.0:
            raise FleetFaultError(
                "storm_slowdown must be >= 1 (a storm cannot speed "
                "jobs up)")

    @property
    def any_active(self) -> bool:
        """True if at least one fault rate is non-zero."""
        return any(getattr(self, name) > 0.0
                   for name in _NODE_RATE_FIELDS)

    def with_seed(self, seed: int) -> "NodeFaultConfig":
        """The same scenario under a different fault stream."""
        return replace(self, seed=int(seed))


class NodeFaultPlan:
    """A deterministic, time-ordered train of node-level fault events.

    Built once per fleet replay from a :class:`NodeFaultConfig`; the
    same ``(config, num_nodes, horizon_s)`` triple always yields the
    identical event train, which is what keeps a faulted fleet replay
    byte-reproducible at any worker count.
    """

    def __init__(self, events: list[NodeFaultEvent] | tuple = ()) -> None:
        self.events: tuple[NodeFaultEvent, ...] = tuple(sorted(events))

    @classmethod
    def build(cls, config: NodeFaultConfig, num_nodes: int,
              horizon_s: float) -> "NodeFaultPlan":
        """Draw a seeded fault train for ``num_nodes`` over ``horizon_s``."""
        if num_nodes < 1:
            raise FleetFaultError("a fault plan needs at least one node")
        if horizon_s <= 0:
            raise FleetFaultError("plan horizon must be positive")
        rng = np.random.default_rng(derive_fault_seed(
            config.seed, "node-plan", num_nodes))
        events: list[NodeFaultEvent] = []
        kind_rates = (("crash", config.crash_rate),
                      ("hang", config.hang_rate),
                      ("thermal", config.thermal_rate),
                      ("sensor_storm", config.storm_rate))
        for kind, rate in kind_rates:
            count = int(rng.poisson(rate * num_nodes)) if rate > 0 else 0
            for _ in range(count):
                at_s = float(rng.uniform(0.0, horizon_s))
                node_id = int(rng.integers(num_nodes))
                duration = max(config.min_outage_s, float(rng.exponential(
                    config.mean_outage_s)))
                if kind == "thermal":
                    magnitude = config.thermal_spike_c
                elif kind == "sensor_storm":
                    magnitude = config.storm_slowdown
                else:
                    magnitude = 1.0
                events.append(NodeFaultEvent(
                    at_s=at_s, node_id=node_id, kind=kind,
                    duration_s=duration, magnitude=magnitude))
        return cls(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def validate_for(self, num_nodes: int) -> None:
        """Raise if any event targets a node outside ``[0, num_nodes)``."""
        for event in self.events:
            if event.node_id >= num_nodes:
                raise FleetFaultError(
                    f"fault event targets node {event.node_id} but the "
                    f"fleet has only {num_nodes} nodes")

    def counts_by_kind(self) -> dict[str, int]:
        """``{kind: event count}`` over the whole train."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def to_payload(self) -> list[dict]:
        """JSON-ready event list in replay order."""
        return [event.to_payload() for event in self.events]


# ---------------------------------------------------------------------------
# Serving-runtime faults
# ---------------------------------------------------------------------------

#: Fault kinds understood by the always-on serving runtime.  Worker
#: kinds target a worker id, telemetry kinds a stream id, and
#: ``poisoned_update`` / ``overload_burst`` are runtime-wide.
SERVE_FAULT_KINDS = ("worker_crash", "worker_hang", "inference_stall",
                     "telemetry_storm", "telemetry_gap", "poisoned_update",
                     "overload_burst")

#: Serve fault kinds aimed at a worker (``target`` is a worker id).
_SERVE_WORKER_KINDS = ("worker_crash", "worker_hang")

#: Serve fault kinds aimed at a telemetry stream.
_SERVE_STREAM_KINDS = ("telemetry_storm", "telemetry_gap")


@dataclass(frozen=True, order=True)
class ServeFaultEvent:
    """One event of a serving-runtime fault train.

    ``at_tick`` is when the fault strikes on the serving loop's integer
    tick clock; ``duration_ticks`` how long windowed faults (stalls,
    storms, gaps, bursts) stay active — crashes, hangs and poisoned
    updates are instantaneous triggers whose *consequences* play out
    through the supervisor / online-update machinery.  ``target`` is a
    worker id for worker kinds, a stream id for telemetry kinds, and
    ``-1`` for runtime-wide kinds.  ``magnitude`` is kind-specific: the
    latency stretch of an ``inference_stall``, the arrival multiplier
    of an ``overload_burst``, the duplication factor of a
    ``telemetry_storm``.  Ordering is by strike tick with target and
    kind as deterministic tie-breaks.
    """

    at_tick: int
    target: int
    kind: str
    duration_ticks: int = 1
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in SERVE_FAULT_KINDS:
            raise ServeFaultError(
                f"unknown serve fault kind {self.kind!r}; "
                f"expected one of {SERVE_FAULT_KINDS}")
        if self.at_tick < 0:
            raise ServeFaultError("a fault cannot strike before tick 0")
        if self.target < -1:
            raise ServeFaultError("target must be an id or -1 (global)")
        if self.duration_ticks < 1:
            raise ServeFaultError("duration_ticks must be >= 1")
        if self.magnitude <= 0:
            raise ServeFaultError("fault magnitude must be positive")

    @property
    def end_tick(self) -> int:
        """First tick the windowed fault is no longer active."""
        return self.at_tick + self.duration_ticks

    def active_at(self, tick: int) -> bool:
        """True while a windowed fault covers ``tick``."""
        return self.at_tick <= tick < self.end_tick

    def to_payload(self) -> dict:
        """JSON-ready dict."""
        return {"at_tick": self.at_tick, "target": self.target,
                "kind": self.kind, "duration_ticks": self.duration_ticks,
                "magnitude": self.magnitude}


#: The per-kind rate knobs of :class:`ServeFaultConfig`.
_SERVE_RATE_FIELDS = ("crash_rate", "hang_rate", "stall_rate",
                      "storm_rate", "gap_rate", "poison_rate",
                      "burst_rate")


@dataclass(frozen=True)
class ServeFaultConfig:
    """Declarative description of one serving-chaos scenario.

    ``crash_rate`` / ``hang_rate`` are expected events *per worker*
    over the horizon, ``storm_rate`` / ``gap_rate`` per stream, and
    ``stall_rate`` / ``poison_rate`` / ``burst_rate`` runtime-wide —
    all Poisson intensities drawn from one stream derived from
    ``seed``.  Windowed faults last ``min_duration_ticks`` to roughly
    ``mean_duration_ticks`` (exponential).  ``stall_stretch`` is the
    latency multiplier of an inference stall, ``burst_multiplier`` the
    arrival multiplier of an overload burst, ``storm_duplicates`` the
    duplication factor of a telemetry storm.
    """

    crash_rate: float = 0.0
    hang_rate: float = 0.0
    stall_rate: float = 0.0
    storm_rate: float = 0.0
    gap_rate: float = 0.0
    poison_rate: float = 0.0
    burst_rate: float = 0.0
    mean_duration_ticks: float = 6.0
    min_duration_ticks: int = 2
    stall_stretch: float = 20.0
    burst_multiplier: float = 4.0
    storm_duplicates: float = 3.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in _SERVE_RATE_FIELDS:
            rate = getattr(self, name)
            if rate < 0:
                raise ServeFaultError(
                    f"{name} cannot be negative, got {rate!r}")
        if (self.min_duration_ticks < 1
                or self.mean_duration_ticks < self.min_duration_ticks):
            raise ServeFaultError(
                "durations need 1 <= min_duration_ticks <= "
                "mean_duration_ticks")
        if self.stall_stretch < 1.0:
            raise ServeFaultError("stall_stretch must be >= 1")
        if self.burst_multiplier < 1.0:
            raise ServeFaultError("burst_multiplier must be >= 1")
        if self.storm_duplicates < 1.0:
            raise ServeFaultError("storm_duplicates must be >= 1")

    @property
    def any_active(self) -> bool:
        """True if at least one fault rate is non-zero."""
        return any(getattr(self, name) > 0.0
                   for name in _SERVE_RATE_FIELDS)

    def with_seed(self, seed: int) -> "ServeFaultConfig":
        """The same scenario under a different fault stream."""
        return replace(self, seed=int(seed))


class ServeFaultPlan:
    """A deterministic, tick-ordered train of serving-runtime faults.

    Built once per serving run from a :class:`ServeFaultConfig`; the
    same ``(config, num_workers, num_streams, horizon_ticks)`` tuple
    always yields the identical train, which is what keeps a chaotic
    serving replay byte-stable at any phase-1 worker count.
    """

    def __init__(self, events: list[ServeFaultEvent] | tuple = ()) -> None:
        self.events: tuple[ServeFaultEvent, ...] = tuple(sorted(events))

    @classmethod
    def build(cls, config: ServeFaultConfig, num_workers: int,
              num_streams: int, horizon_ticks: int) -> "ServeFaultPlan":
        """Draw a seeded fault train for one serving run."""
        if num_workers < 1 or num_streams < 1:
            raise ServeFaultError(
                "a serve fault plan needs >= 1 worker and stream")
        if horizon_ticks < 1:
            raise ServeFaultError("plan horizon must be >= 1 tick")
        rng = np.random.default_rng(derive_fault_seed(
            config.seed, "serve-plan", num_workers, num_streams))
        events: list[ServeFaultEvent] = []
        kind_scales = (("worker_crash", config.crash_rate, num_workers),
                       ("worker_hang", config.hang_rate, num_workers),
                       ("inference_stall", config.stall_rate, 1),
                       ("telemetry_storm", config.storm_rate, num_streams),
                       ("telemetry_gap", config.gap_rate, num_streams),
                       ("poisoned_update", config.poison_rate, 1),
                       ("overload_burst", config.burst_rate, 1))
        for kind, rate, scale in kind_scales:
            count = int(rng.poisson(rate * scale)) if rate > 0 else 0
            for _ in range(count):
                at_tick = int(rng.integers(horizon_ticks))
                duration = max(config.min_duration_ticks, int(round(
                    rng.exponential(config.mean_duration_ticks))))
                if kind in _SERVE_WORKER_KINDS:
                    target = int(rng.integers(num_workers))
                elif kind in _SERVE_STREAM_KINDS:
                    target = int(rng.integers(num_streams))
                else:
                    target = -1
                if kind == "inference_stall":
                    magnitude = config.stall_stretch
                elif kind == "overload_burst":
                    magnitude = config.burst_multiplier
                elif kind == "telemetry_storm":
                    magnitude = config.storm_duplicates
                else:
                    magnitude = 1.0
                events.append(ServeFaultEvent(
                    at_tick=at_tick, target=target, kind=kind,
                    duration_ticks=duration, magnitude=magnitude))
        return cls(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def validate_for(self, num_workers: int, num_streams: int) -> None:
        """Raise if any event targets outside the runtime's topology."""
        for event in self.events:
            if (event.kind in _SERVE_WORKER_KINDS
                    and event.target >= num_workers):
                raise ServeFaultError(
                    f"fault targets worker {event.target} but the "
                    f"runtime has {num_workers} workers")
            if (event.kind in _SERVE_STREAM_KINDS
                    and event.target >= num_streams):
                raise ServeFaultError(
                    f"fault targets stream {event.target} but the "
                    f"runtime has {num_streams} streams")

    def counts_by_kind(self) -> dict[str, int]:
        """``{kind: event count}`` over the whole train."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def to_payload(self) -> list[dict]:
        """JSON-ready event list in replay order."""
        return [event.to_payload() for event in self.events]


# ---------------------------------------------------------------------------
# Process-level campaign faults
# ---------------------------------------------------------------------------

class FlakyTask:
    """Picklable proxy injecting process faults into campaign tasks.

    Wraps a campaign task function; for each task it decides
    *deterministically* (from ``seed`` and the task's content hash)
    whether to fault, and the first ``faults_per_task`` attempts of a
    faulted task then crash the hosting worker (``mode="exit"``), hang
    it (``mode="hang"``) or raise :class:`FaultInjectionError`
    (``mode="raise"``).  Later attempts run the real task, so a
    retrying campaign converges to the fault-free result.  Attempt
    counting uses marker files under ``state_dir`` because a hard-killed
    worker can report nothing back through memory.
    """

    #: Worker exit code used by ``mode="exit"`` (diagnosable in logs).
    EXIT_CODE = 23

    def __init__(self, fn, state_dir: str | Path, *, fault_rate: float = 1.0,
                 mode: str = "exit", hang_s: float = 3600.0,
                 faults_per_task: int = 1, seed: int = 0) -> None:
        if mode not in ("exit", "hang", "raise"):
            raise FaultInjectionError(
                f"unknown fault mode {mode!r}; expected exit/hang/raise")
        if not 0.0 <= fault_rate <= 1.0:
            raise FaultInjectionError("fault_rate must be in [0, 1]")
        if faults_per_task < 0:
            raise FaultInjectionError("faults_per_task cannot be negative")
        self.fn = fn
        self.state_dir = Path(state_dir)
        self.fault_rate = float(fault_rate)
        self.mode = mode
        self.hang_s = float(hang_s)
        self.faults_per_task = int(faults_per_task)
        self.seed = int(seed)

    def _task_key(self, task) -> str:
        try:
            blob = pickle.dumps(task)
        except Exception:  # unpicklable task: fall back to repr identity
            blob = repr(task).encode()
        return hashlib.sha256(
            str(self.seed).encode() + b":" + blob).hexdigest()[:16]

    def _should_fault(self, key: str) -> bool:
        if self.fault_rate >= 1.0:
            return True
        draw = int(hashlib.sha256(f"draw:{key}".encode()).hexdigest()[:8], 16)
        return draw / 0xFFFFFFFF < self.fault_rate

    def __call__(self, task):
        key = self._task_key(task)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        attempts = len(list(self.state_dir.glob(f"{key}.*")))
        if attempts < self.faults_per_task and self._should_fault(key):
            (self.state_dir / f"{key}.{attempts}").touch()
            if self.mode == "exit":
                os._exit(self.EXIT_CODE)
            if self.mode == "hang":
                time.sleep(self.hang_s)
            raise FaultInjectionError(
                f"injected task fault (attempt {attempts}, key {key})")
        return self.fn(task)
