"""Unit helpers.

All internal computation uses SI base units (seconds, hertz, joules,
watts).  These helpers exist so call sites can say what they mean
(``us(10)``) instead of sprinkling ``1e-6`` literals around, and so
tests can assert round-trips.
"""

from __future__ import annotations

#: One microsecond, in seconds.
MICROSECOND = 1e-6
#: One nanosecond, in seconds.
NANOSECOND = 1e-9
#: One megahertz, in hertz.
MEGAHERTZ = 1e6
#: One gigahertz, in hertz.
GIGAHERTZ = 1e9


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * MICROSECOND


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * NANOSECOND


def mhz(value: float) -> float:
    """Convert megahertz to hertz."""
    return value * MEGAHERTZ


def ghz(value: float) -> float:
    """Convert gigahertz to hertz."""
    return value * GIGAHERTZ


def to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds / MICROSECOND


def to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds / NANOSECOND


def to_mhz(hertz: float) -> float:
    """Convert hertz to megahertz."""
    return hertz / MEGAHERTZ


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Time taken by ``cycles`` clock cycles at ``frequency_hz``."""
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float) -> float:
    """Number of clock cycles elapsing in ``seconds`` at ``frequency_hz``."""
    return seconds * frequency_hz
