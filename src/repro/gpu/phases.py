"""Kernel phase descriptions.

A *phase* is a stretch of kernel execution with roughly stationary
microarchitectural behaviour: instruction mix, per-warp issue cost,
cache behaviour, divergence, and occupancy.  GPGPU kernels — especially
the iterative Rodinia/Parboil/PolyBench kernels the paper uses — are
well described as short sequences of such phases repeated many times,
which is precisely the structure PCSTALL exploits and the property that
makes 10 µs-ahead prediction feasible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import WorkloadError

#: Instruction classes tracked by the simulator and the power model.
INSTRUCTION_CLASSES = (
    "fp32",
    "fp64",
    "int",
    "sfu",
    "load",
    "store",
    "shared",
    "branch",
    "sync",
)


def _default_mix() -> dict[str, float]:
    return {
        "fp32": 0.35,
        "fp64": 0.0,
        "int": 0.25,
        "sfu": 0.02,
        "load": 0.15,
        "store": 0.05,
        "shared": 0.08,
        "branch": 0.08,
        "sync": 0.02,
    }


@dataclass(frozen=True)
class Phase:
    """One stationary execution phase of a kernel (per-cluster view).

    Attributes
    ----------
    name:
        Label used in traces and tests.
    instructions:
        Warp-instructions executed per cluster in one pass of the phase.
    mix:
        Fraction of each instruction class; keys must be
        :data:`INSTRUCTION_CLASSES` and values must sum to 1.
    cpi_exec:
        Average issue-to-issue cost per instruction for a single warp in
        core cycles (data dependencies, execution latency, divergence
        re-convergence).  Always >= 1.
    mlp:
        Per-warp memory-level parallelism: how many outstanding memory
        requests a warp overlaps, >= 1.
    l1_miss_rate / l2_miss_rate:
        Read miss rates of the global-memory accesses in this phase.
    active_warps:
        Schedulable warps per cluster during this phase.
    divergence:
        Branch-divergence intensity in [0, 1]; feeds control-hazard
        stall accounting and mildly inflates ``cpi_exec``.
    """

    name: str
    instructions: int
    mix: dict[str, float] = field(default_factory=_default_mix)
    cpi_exec: float = 2.0
    mlp: float = 2.0
    l1_miss_rate: float = 0.3
    l2_miss_rate: float = 0.4
    active_warps: float = 32.0
    divergence: float = 0.1

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise WorkloadError(f"phase {self.name!r}: instructions must be positive")
        unknown = set(self.mix) - set(INSTRUCTION_CLASSES)
        if unknown:
            raise WorkloadError(f"phase {self.name!r}: unknown classes {sorted(unknown)}")
        total = sum(self.mix.values())
        if abs(total - 1.0) > 1e-6:
            raise WorkloadError(
                f"phase {self.name!r}: mix sums to {total:.6f}, expected 1.0"
            )
        if any(v < 0 for v in self.mix.values()):
            raise WorkloadError(f"phase {self.name!r}: negative mix fraction")
        if self.cpi_exec < 1.0:
            raise WorkloadError(f"phase {self.name!r}: cpi_exec must be >= 1")
        if self.mlp < 1.0:
            raise WorkloadError(f"phase {self.name!r}: mlp must be >= 1")
        for rate_name in ("l1_miss_rate", "l2_miss_rate", "divergence"):
            value = getattr(self, rate_name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"phase {self.name!r}: {rate_name} out of [0,1]")
        if self.active_warps < 1.0:
            raise WorkloadError(f"phase {self.name!r}: active_warps must be >= 1")

    @property
    def memory_fraction(self) -> float:
        """Fraction of instructions that access global memory."""
        return self.mix.get("load", 0.0) + self.mix.get("store", 0.0)

    @property
    def load_fraction(self) -> float:
        """Fraction of instructions that are global loads."""
        return self.mix.get("load", 0.0)

    @property
    def store_fraction(self) -> float:
        """Fraction of instructions that are global stores."""
        return self.mix.get("store", 0.0)

    @property
    def branch_fraction(self) -> float:
        """Fraction of instructions that are branches."""
        return self.mix.get("branch", 0.0)

    def scaled(self, instructions: int) -> "Phase":
        """Copy of this phase with a different instruction count."""
        return replace(self, instructions=instructions)


def make_mix(**fractions: float) -> dict[str, float]:
    """Build a full instruction mix from the given non-zero fractions.

    Unspecified classes get zero; the remainder (if any) after summing
    the given fractions is assigned to the ``int`` class so the mix
    always sums to one.

    >>> mix = make_mix(fp32=0.4, load=0.2, store=0.1, branch=0.1)
    >>> mix["int"]
    0.2
    """
    mix = {cls: 0.0 for cls in INSTRUCTION_CLASSES}
    for cls, value in fractions.items():
        if cls not in mix:
            raise WorkloadError(f"unknown instruction class {cls!r}")
        if value < 0:
            raise WorkloadError(f"negative fraction for {cls!r}")
        mix[cls] = float(value)
    total = sum(mix.values())
    if total > 1.0 + 1e-9:
        raise WorkloadError(f"mix fractions sum to {total:.4f} > 1")
    mix["int"] += 1.0 - total
    return mix


def compute_phase(name: str, instructions: int, *, warps: float = 48.0,
                  cpi: float = 1.6, divergence: float = 0.05) -> Phase:
    """A strongly compute-bound phase (dense FP32, few memory ops)."""
    return Phase(
        name=name,
        instructions=instructions,
        mix=make_mix(fp32=0.55, sfu=0.05, load=0.06, store=0.02,
                     shared=0.12, branch=0.05, sync=0.02),
        cpi_exec=cpi,
        mlp=3.0,
        l1_miss_rate=0.12,
        l2_miss_rate=0.25,
        active_warps=warps,
        divergence=divergence,
    )


def memory_phase(name: str, instructions: int, *, warps: float = 32.0,
                 l1_miss: float = 0.65, l2_miss: float = 0.6,
                 divergence: float = 0.1) -> Phase:
    """A strongly memory-bound phase (streaming loads, high miss rates)."""
    return Phase(
        name=name,
        instructions=instructions,
        mix=make_mix(fp32=0.18, load=0.30, store=0.10, shared=0.04,
                     branch=0.08, sync=0.02),
        cpi_exec=2.2,
        mlp=4.0,
        l1_miss_rate=l1_miss,
        l2_miss_rate=l2_miss,
        active_warps=warps,
        divergence=divergence,
    )


def balanced_phase(name: str, instructions: int, *, warps: float = 40.0,
                   divergence: float = 0.12) -> Phase:
    """A mixed compute/memory phase."""
    return Phase(
        name=name,
        instructions=instructions,
        mix=make_mix(fp32=0.34, sfu=0.03, load=0.17, store=0.06,
                     shared=0.08, branch=0.09, sync=0.02),
        cpi_exec=1.9,
        mlp=2.5,
        l1_miss_rate=0.35,
        l2_miss_rate=0.45,
        active_warps=warps,
        divergence=divergence,
    )


def divergent_phase(name: str, instructions: int, *, warps: float = 24.0,
                    divergence: float = 0.5) -> Phase:
    """An irregular, control-divergent phase (graph traversal style)."""
    return Phase(
        name=name,
        instructions=instructions,
        mix=make_mix(fp32=0.10, int=0.30, load=0.24, store=0.06,
                     branch=0.24, sync=0.02, shared=0.04),
        cpi_exec=3.0,
        mlp=1.8,
        l1_miss_rate=0.55,
        l2_miss_rate=0.65,
        active_warps=warps,
        divergence=divergence,
    )
