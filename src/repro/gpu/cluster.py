"""Per-cluster execution engine.

A :class:`ClusterState` advances one SM cluster through its kernel in
variable-length *quanta*: within a quantum the workload position stays
inside one phase segment and one noise chunk, so the interval model's
stationarity assumption holds exactly.  The cluster accumulates an
:class:`EpochActivity` record per DVFS epoch; the simulator turns that
into performance counters and power numbers.

Hot-path layout
---------------
The epoch loop accumulates into a preallocated numpy *activity vector*
(:data:`NUM_ACTIVITY_SLOTS` slots) instead of ~25 scalar dataclass
fields: each quantum contributes ``step_vector * instructions`` (one
fused multiply + add) where the per-instruction step vector depends
only on ``(phase, solution)`` and is therefore memoised alongside the
interval-model solution in the :class:`~repro.gpu.interval_model.
SolutionCache`.  :func:`build_counters_matrix` then turns a stack of
activity vectors into the 47-counter schema for all clusters at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from .arch import GPUArchConfig
from .counters import COUNTER_NAMES, NUM_COUNTERS, CounterSet
from .interval_model import (PP_ACTIVE_WARPS, PP_CLASS_SLICE, PP_L1_MISS,
                             PP_L2_MISS, PP_LOAD_FRAC, PP_STORE_FRAC,
                             BatchSolution, SolutionCache, ThroughputSolution,
                             solve_throughput)
from .kernels import KernelCursor, KernelProfile
from .noise import WorkloadNoise
from .phases import INSTRUCTION_CLASSES

# ---------------------------------------------------------------------------
# Activity-vector layout
# ---------------------------------------------------------------------------
#: Slot indices of the accumulated activity vector.  Slots 1..27 scale
#: with the quantum's instruction count; slots 0 and 28 scale with the
#: quantum's wall-clock time and are accumulated separately.
A_BUSY_S = 0
A_CYCLES = 1
A_INSTRUCTIONS = 2
A_CLASS0 = 3                       # 9 instruction classes: slots 3..11
_N_CLASSES = len(INSTRUCTION_CLASSES)
A_ISSUE_SLOTS = A_CLASS0 + _N_CLASSES          # 12
A_STALL_MEM_LOAD = 13
A_STALL_MEM_OTHER = 14
A_STALL_CONTROL = 15
A_STALL_SYNC = 16
A_STALL_DATA = 17
A_STALL_IDLE = 18
A_L1_READ_ACCESS = 19
A_L1_READ_MISS = 20
A_L1_WRITE_ACCESS = 21
A_L1_WRITE_MISS = 22
A_L2_ACCESS = 23
A_L2_MISS = 24
A_DRAM_BYTES = 25
A_WARP_INST = 26
A_MEM_LATENCY = 27
A_BW_UTIL_TIME = 28
NUM_ACTIVITY_SLOTS = 29

_CLASS_SLICE = slice(A_CLASS0, A_CLASS0 + _N_CLASSES)

#: *Quantum rows* extend the activity step vector with the two solver
#: outputs the epoch loop itself consumes — sustained IPC (stepping) and
#: bandwidth utilisation (busy-time weighting) — so one cached row per
#: solve serves both the scalar loop and the batched engine without
#: touching :class:`~repro.gpu.interval_model.ThroughputSolution`
#: objects on the hot path.
QR_IPC = NUM_ACTIVITY_SLOTS        # 29
QR_BW_UTIL = NUM_ACTIVITY_SLOTS + 1  # 30
QROW_WIDTH = NUM_ACTIVITY_SLOTS + 2


def step_vector_for(arch: GPUArchConfig, phase, solution: ThroughputSolution
                    ) -> np.ndarray:
    """Per-instruction activity contributions of one (phase, solution).

    Multiplying this vector by a quantum's instruction count yields the
    quantum's contribution to every instruction-proportional activity
    slot; the time-proportional slots (busy time, bandwidth-utilisation
    time) are zero here and handled by the epoch loop.
    """
    v = np.zeros(NUM_ACTIVITY_SLOTS, dtype=np.float64)
    cpi = solution.cycles_per_instruction
    v[A_CYCLES] = cpi
    v[A_INSTRUCTIONS] = 1.0
    mix = phase.mix
    for offset, cls in enumerate(INSTRUCTION_CLASSES):
        v[A_CLASS0 + offset] = mix.get(cls, 0.0)
    v[A_ISSUE_SLOTS] = cpi * arch.issue_width
    v[A_STALL_MEM_LOAD] = solution.stall_mem_load
    v[A_STALL_MEM_OTHER] = solution.stall_mem_other
    v[A_STALL_CONTROL] = solution.stall_control
    v[A_STALL_SYNC] = solution.stall_sync
    v[A_STALL_DATA] = solution.stall_data
    v[A_STALL_IDLE] = solution.stall_idle
    loads = phase.load_fraction
    stores = phase.store_fraction
    l1_read_miss = loads * phase.l1_miss_rate
    l1_write_miss = stores * 0.9  # write-through-ish global stores
    l2_access = l1_read_miss + l1_write_miss
    l2_miss = l2_access * phase.l2_miss_rate
    v[A_L1_READ_ACCESS] = loads
    v[A_L1_READ_MISS] = l1_read_miss
    v[A_L1_WRITE_ACCESS] = stores
    v[A_L1_WRITE_MISS] = l1_write_miss
    v[A_L2_ACCESS] = l2_access
    v[A_L2_MISS] = l2_miss
    v[A_DRAM_BYTES] = l2_miss * arch.cache_line_bytes
    v[A_WARP_INST] = phase.active_warps
    v[A_MEM_LATENCY] = solution.mem_latency_cycles
    return v


def quantum_row_for(arch: GPUArchConfig, phase, solution: ThroughputSolution
                    ) -> np.ndarray:
    """Per-instruction quantum row of one (phase, solution).

    The first :data:`NUM_ACTIVITY_SLOTS` entries are exactly
    :func:`step_vector_for`; the trailing two carry the solution's IPC
    and bandwidth utilisation.  This is the default
    :class:`~repro.gpu.interval_model.SolutionCache` payload: both the
    scalar epoch loop and the vectorised batch engine read it.
    """
    row = np.empty(QROW_WIDTH, dtype=np.float64)
    row[:NUM_ACTIVITY_SLOTS] = step_vector_for(arch, phase, solution)
    row[QR_IPC] = solution.ipc
    row[QR_BW_UTIL] = solution.bandwidth_utilization
    return row


def quantum_rows_batch(arch: GPUArchConfig, params: np.ndarray,
                       solutions: BatchSolution,
                       out: np.ndarray | None = None) -> np.ndarray:
    """Vectorised :func:`quantum_row_for` over a solved batch.

    ``params`` is the ``(n, NUM_PHASE_PARAMS)`` phase-parameter matrix
    the batch was solved from; every column replicates the scalar
    builder's expression (elementwise ops only), so row ``j`` is
    bit-identical to ``quantum_row_for`` on element ``j``.
    """
    n = params.shape[0]
    rows = out if out is not None else np.empty((n, QROW_WIDTH),
                                                dtype=np.float64)
    cpi = solutions.cycles_per_instruction
    rows[:, A_BUSY_S] = 0.0
    rows[:, A_CYCLES] = cpi
    rows[:, A_INSTRUCTIONS] = 1.0
    rows[:, _CLASS_SLICE] = params[:, PP_CLASS_SLICE]
    rows[:, A_ISSUE_SLOTS] = cpi * arch.issue_width
    rows[:, A_STALL_MEM_LOAD] = solutions.stall_mem_load
    rows[:, A_STALL_MEM_OTHER] = solutions.stall_mem_other
    rows[:, A_STALL_CONTROL] = solutions.stall_control
    rows[:, A_STALL_SYNC] = solutions.stall_sync
    rows[:, A_STALL_DATA] = solutions.stall_data
    rows[:, A_STALL_IDLE] = solutions.stall_idle
    loads = params[:, PP_LOAD_FRAC]
    stores = params[:, PP_STORE_FRAC]
    l1_read_miss = loads * params[:, PP_L1_MISS]
    l1_write_miss = stores * 0.9  # write-through-ish global stores
    l2_access = l1_read_miss + l1_write_miss
    l2_miss = l2_access * params[:, PP_L2_MISS]
    rows[:, A_L1_READ_ACCESS] = loads
    rows[:, A_L1_READ_MISS] = l1_read_miss
    rows[:, A_L1_WRITE_ACCESS] = stores
    rows[:, A_L1_WRITE_MISS] = l1_write_miss
    rows[:, A_L2_ACCESS] = l2_access
    rows[:, A_L2_MISS] = l2_miss
    rows[:, A_DRAM_BYTES] = l2_miss * arch.cache_line_bytes
    rows[:, A_WARP_INST] = params[:, PP_ACTIVE_WARPS]
    rows[:, A_MEM_LATENCY] = solutions.mem_latency_cycles
    rows[:, A_BW_UTIL_TIME] = 0.0
    rows[:, QR_IPC] = solutions.ipc
    rows[:, QR_BW_UTIL] = solutions.bandwidth_utilization
    return rows


@dataclass
class EpochActivity:
    """Aggregated microarchitectural activity of one cluster epoch."""

    duration_s: float = 0.0
    busy_s: float = 0.0
    frequency_hz: float = 0.0
    voltage_v: float = 0.0
    cycles: float = 0.0
    instructions: float = 0.0
    inst_by_class: dict[str, float] = field(
        default_factory=lambda: {cls: 0.0 for cls in INSTRUCTION_CLASSES})
    issue_slots: float = 0.0
    stall_mem_load: float = 0.0
    stall_mem_other: float = 0.0
    stall_control: float = 0.0
    stall_sync: float = 0.0
    stall_data: float = 0.0
    stall_idle: float = 0.0
    l1_read_access: float = 0.0
    l1_read_miss: float = 0.0
    l1_write_access: float = 0.0
    l1_write_miss: float = 0.0
    l2_access: float = 0.0
    l2_miss: float = 0.0
    dram_bytes: float = 0.0
    warp_inst_weighted: float = 0.0
    mem_latency_weighted: float = 0.0
    bandwidth_util_time: float = 0.0
    finished: bool = False
    #: Cached activity vector (filled by the epoch loop; ``None`` for
    #: activities built field-by-field, e.g. by the detailed model).
    vector: np.ndarray | None = field(default=None, compare=False,
                                      repr=False)

    @classmethod
    def from_vector(cls, vector: np.ndarray, *, duration_s: float,
                    frequency_hz: float, voltage_v: float,
                    finished: bool) -> "EpochActivity":
        """Build an activity record around an accumulated vector."""
        v = vector
        return cls(
            duration_s=duration_s,
            busy_s=float(v[A_BUSY_S]),
            frequency_hz=frequency_hz,
            voltage_v=voltage_v,
            cycles=float(v[A_CYCLES]),
            instructions=float(v[A_INSTRUCTIONS]),
            inst_by_class=dict(zip(INSTRUCTION_CLASSES,
                                   v[_CLASS_SLICE].tolist())),
            issue_slots=float(v[A_ISSUE_SLOTS]),
            stall_mem_load=float(v[A_STALL_MEM_LOAD]),
            stall_mem_other=float(v[A_STALL_MEM_OTHER]),
            stall_control=float(v[A_STALL_CONTROL]),
            stall_sync=float(v[A_STALL_SYNC]),
            stall_data=float(v[A_STALL_DATA]),
            stall_idle=float(v[A_STALL_IDLE]),
            l1_read_access=float(v[A_L1_READ_ACCESS]),
            l1_read_miss=float(v[A_L1_READ_MISS]),
            l1_write_access=float(v[A_L1_WRITE_ACCESS]),
            l1_write_miss=float(v[A_L1_WRITE_MISS]),
            l2_access=float(v[A_L2_ACCESS]),
            l2_miss=float(v[A_L2_MISS]),
            dram_bytes=float(v[A_DRAM_BYTES]),
            warp_inst_weighted=float(v[A_WARP_INST]),
            mem_latency_weighted=float(v[A_MEM_LATENCY]),
            bandwidth_util_time=float(v[A_BW_UTIL_TIME]),
            finished=finished,
            vector=vector,
        )

    def as_vector(self) -> np.ndarray:
        """The activity vector (cached, or rebuilt from the fields)."""
        if self.vector is not None:
            return self.vector
        v = np.zeros(NUM_ACTIVITY_SLOTS, dtype=np.float64)
        v[A_BUSY_S] = self.busy_s
        v[A_CYCLES] = self.cycles
        v[A_INSTRUCTIONS] = self.instructions
        for offset, cls in enumerate(INSTRUCTION_CLASSES):
            v[A_CLASS0 + offset] = self.inst_by_class.get(cls, 0.0)
        v[A_ISSUE_SLOTS] = self.issue_slots
        v[A_STALL_MEM_LOAD] = self.stall_mem_load
        v[A_STALL_MEM_OTHER] = self.stall_mem_other
        v[A_STALL_CONTROL] = self.stall_control
        v[A_STALL_SYNC] = self.stall_sync
        v[A_STALL_DATA] = self.stall_data
        v[A_STALL_IDLE] = self.stall_idle
        v[A_L1_READ_ACCESS] = self.l1_read_access
        v[A_L1_READ_MISS] = self.l1_read_miss
        v[A_L1_WRITE_ACCESS] = self.l1_write_access
        v[A_L1_WRITE_MISS] = self.l1_write_miss
        v[A_L2_ACCESS] = self.l2_access
        v[A_L2_MISS] = self.l2_miss
        v[A_DRAM_BYTES] = self.dram_bytes
        v[A_WARP_INST] = self.warp_inst_weighted
        v[A_MEM_LATENCY] = self.mem_latency_weighted
        v[A_BW_UTIL_TIME] = self.bandwidth_util_time
        return v

    @property
    def stall_mem(self) -> float:
        """Total memory-hazard stall slots."""
        return self.stall_mem_load + self.stall_mem_other

    @property
    def stall_total(self) -> float:
        """All stall slots in the epoch."""
        return (self.stall_mem_load + self.stall_mem_other + self.stall_control
                + self.stall_sync + self.stall_data + self.stall_idle)

    @property
    def ipc(self) -> float:
        """Instructions per core cycle over the epoch."""
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    @property
    def avg_active_warps(self) -> float:
        """Instruction-weighted mean of schedulable warps."""
        if self.instructions <= 0:
            return 0.0
        return self.warp_inst_weighted / self.instructions

    @property
    def avg_mem_latency(self) -> float:
        """Instruction-weighted mean memory latency (core cycles)."""
        if self.instructions <= 0:
            return 0.0
        return self.mem_latency_weighted / self.instructions

    @property
    def avg_bandwidth_utilization(self) -> float:
        """Busy-time-weighted DRAM bandwidth utilisation."""
        if self.busy_s <= 0:
            return 0.0
        return self.bandwidth_util_time / self.busy_s


class ClusterState:
    """One independently clocked SM cluster executing a kernel."""

    def __init__(self, arch: GPUArchConfig, kernel: KernelProfile,
                 noise: WorkloadNoise, cluster_id: int = 0,
                 skew_instructions: float = 0.0,
                 solution_cache: SolutionCache | None = None) -> None:
        self.arch = arch
        self.cluster_id = int(cluster_id)
        self.cursor = KernelCursor(kernel, skew_instructions=skew_instructions)
        self.noise = noise
        self.level = arch.vf_table.default_level
        self.solution_cache = solution_cache
        self._pending_transition_s = 0.0
        self._acc = np.zeros(NUM_ACTIVITY_SLOTS, dtype=np.float64)
        self._scratch = np.empty(NUM_ACTIVITY_SLOTS, dtype=np.float64)

    # ------------------------------------------------------------------
    # DVFS control
    # ------------------------------------------------------------------
    def set_level(self, level: int) -> None:
        """Switch the cluster to operating point ``level``.

        Switching to a *different* level charges the IVR transition dead
        time at the start of the next quantum.
        """
        clamped = self.arch.vf_table.clamp(level)
        if clamped != level:
            raise SimulationError(
                f"V/f level {level} out of range for {self.arch.name}"
            )
        if clamped != self.level:
            self._pending_transition_s += self.arch.dvfs_transition_ns * 1e-9
        self.level = clamped

    @property
    def finished(self) -> bool:
        """True once the cluster's kernel has fully executed."""
        return self.cursor.finished

    @property
    def instructions_done(self) -> float:
        """Instructions completed by this cluster since kernel start."""
        return self.cursor.global_instructions_done

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _solve_current(self) -> tuple[ThroughputSolution, np.ndarray]:
        """Interval-model solution and step vector at the cursor position.

        Served from the shared :class:`SolutionCache` when one is
        attached; the uncached path computes the identical values, so
        caching never changes results.
        """
        phase = self.cursor.current_phase
        chunk = self.noise.chunk_of(self.cursor.global_instructions_done)
        warp_m, miss_m, cpi_m = self.noise.multipliers(chunk)
        frequency_hz = self.arch.vf_table[self.level].frequency_hz
        cache = self.solution_cache
        if cache is not None:
            return cache.solve(self.arch, phase, frequency_hz,
                               warp_m, miss_m, cpi_m)
        solution = solve_throughput(
            self.arch, phase, frequency_hz,
            warp_multiplier=warp_m, miss_multiplier=miss_m,
            cpi_multiplier=cpi_m,
        )
        return solution, step_vector_for(self.arch, phase, solution)

    def run_epoch(self, epoch_s: float) -> EpochActivity:
        """Advance the cluster by ``epoch_s`` seconds of wall-clock time.

        Returns the epoch's activity record.  A finished cluster idles:
        time and cycles elapse, nothing executes.
        """
        if epoch_s <= 0:
            raise SimulationError("epoch duration must be positive")
        point = self.arch.vf_table[self.level]
        acc = self._acc
        scratch = self._scratch
        acc.fill(0.0)
        busy_s = 0.0
        bw_util_time = 0.0

        elapsed = 0.0
        # IVR transition dead time: leakage burns, nothing issues.
        if self._pending_transition_s > 0:
            dead = min(self._pending_transition_s, epoch_s)
            self._pending_transition_s -= dead
            elapsed += dead
            acc[A_CYCLES] += dead * point.frequency_hz

        # The quantum loop runs once per (phase segment x noise chunk x
        # epoch) slice — tens of thousands of times per simulated
        # second — so cursor and noise state are kept in locals and
        # written back once at the end.  The level (hence frequency) is
        # fixed for the whole epoch: set_level only runs between epochs.
        cursor = self.cursor
        kernel = cursor.kernel
        num_segments = kernel.num_segments
        seg_index = cursor.segment_index
        inst_done = cursor.instructions_done
        completed = cursor._completed_instructions
        noise = self.noise
        chunk_insts = noise.chunk_instructions
        frequency_hz = point.frequency_hz
        arch = self.arch
        cache = self.solution_cache
        phase = kernel.segment(seg_index) if seg_index < num_segments else None

        while elapsed < epoch_s - 1e-15 and seg_index < num_segments:
            position = completed + inst_done
            chunk = int(position // chunk_insts)
            warp_m, miss_m, cpi_m = noise.multipliers(chunk)
            if cache is not None:
                solution, step_vec = cache.solve(arch, phase, frequency_hz,
                                                 warp_m, miss_m, cpi_m)
            else:
                solution = solve_throughput(
                    arch, phase, frequency_hz,
                    warp_multiplier=warp_m, miss_multiplier=miss_m,
                    cpi_multiplier=cpi_m,
                )
                step_vec = step_vector_for(arch, phase, solution)
            to_chunk_end = float((chunk + 1) * chunk_insts) - position
            boundary = min(phase.instructions - inst_done, to_chunk_end)
            time_left = epoch_s - elapsed
            time_to_boundary = solution.time_for_instructions(boundary)
            if time_to_boundary <= time_left:
                step_insts = boundary
                step_time = time_to_boundary
            else:
                step_insts = solution.instructions_in_time(time_left)
                step_time = time_left
            if step_insts <= 0:
                # Degenerate: throughput too low to make progress in the
                # remaining slice; account for the idle tail and stop.
                break
            # Inline cursor.advance(step_insts): the step never crosses a
            # segment boundary (it is bounded by the remaining segment
            # instructions above), so one add plus a completion check.
            inst_done += step_insts
            if inst_done >= phase.instructions - 1e-9:
                completed += phase.instructions
                seg_index += 1
                inst_done = 0.0
                phase = (kernel.segment(seg_index)
                         if seg_index < num_segments else None)
            elapsed += step_time
            # Cached payloads may be QROW_WIDTH wide (quantum rows); only
            # the activity slots accumulate here.
            np.multiply(step_vec[:NUM_ACTIVITY_SLOTS], step_insts,
                        out=scratch)
            acc += scratch
            busy_s += step_time
            bw_util_time += step_time * solution.bandwidth_utilization

        cursor.segment_index = seg_index
        cursor.instructions_done = inst_done
        cursor._completed_instructions = completed

        # Idle tail (kernel finished or no progress possible).
        if elapsed < epoch_s:
            idle = epoch_s - elapsed
            acc[A_CYCLES] += idle * point.frequency_hz

        acc[A_BUSY_S] = busy_s
        acc[A_BW_UTIL_TIME] = bw_util_time
        return EpochActivity.from_vector(
            acc.copy(),
            duration_s=epoch_s,
            frequency_hz=point.frequency_hz,
            voltage_v=point.voltage_v,
            finished=seg_index >= num_segments,
        )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def clone(self) -> "ClusterState":
        """Independent copy sharing the (immutable-for-replay) arch,
        noise track and solution cache, with private cursor/level state.
        """
        other = ClusterState.__new__(ClusterState)
        other.arch = self.arch
        other.cluster_id = self.cluster_id
        other.cursor = self.cursor.clone()
        other.noise = self.noise
        other.level = self.level
        other.solution_cache = self.solution_cache
        other._pending_transition_s = self._pending_transition_s
        other._acc = np.zeros(NUM_ACTIVITY_SLOTS, dtype=np.float64)
        other._scratch = np.empty(NUM_ACTIVITY_SLOTS, dtype=np.float64)
        return other

    def snapshot(self) -> dict:
        """Capture the replayable state of this cluster."""
        return {
            "cursor": self.cursor.clone(),
            "level": self.level,
            "pending_transition_s": self._pending_transition_s,
        }

    def restore(self, state: dict) -> None:
        """Restore a snapshot taken with :meth:`snapshot`."""
        self.cursor = state["cursor"].clone()
        self.level = state["level"]
        self._pending_transition_s = state["pending_transition_s"]


# ---------------------------------------------------------------------------
# Counter building (vectorised over clusters)
# ---------------------------------------------------------------------------
_CIDX = {name: index for index, name in enumerate(COUNTER_NAMES)}
_INST_CLASS_COUNTERS = ("inst_fp32", "inst_fp64", "inst_int", "inst_sfu",
                        "inst_load", "inst_store", "inst_shared",
                        "inst_branch", "inst_sync")
#: Counter columns that mirror instruction-class activity slots, in
#: :data:`INSTRUCTION_CLASSES` order.
_INST_CLASS_COLUMNS = np.array([_CIDX[name]
                                for name in _INST_CLASS_COUNTERS])


def build_counters_matrix(activity: np.ndarray,
                          arch: GPUArchConfig) -> np.ndarray:
    """Turn stacked activity vectors into 47-counter rows.

    ``activity`` has shape ``(clusters, NUM_ACTIVITY_SLOTS)``; the
    result has shape ``(clusters, NUM_COUNTERS)`` in
    :data:`~repro.gpu.counters.COUNTER_NAMES` order.  Power counters are
    filled separately by the simulator once the power model has been
    evaluated for the epoch.  Guards mirror the scalar accounting:
    ratio counters stay zero when their denominator is zero.
    """
    a = np.asarray(activity, dtype=np.float64)
    if a.ndim != 2 or a.shape[1] != NUM_ACTIVITY_SLOTS:
        raise SimulationError(
            f"expected activity of shape (n, {NUM_ACTIVITY_SLOTS}), "
            f"got {a.shape}"
        )
    n = a.shape[0]
    out = np.zeros((n, NUM_COUNTERS), dtype=np.float64)

    inst = a[:, A_INSTRUCTIONS]
    cycles = a[:, A_CYCLES]
    has_inst = inst > 0
    safe_inst = np.where(has_inst, inst, 1.0)

    out[:, _CIDX["inst_total"]] = inst
    out[:, _CIDX["ipc"]] = np.where(cycles > 0,
                                    inst / np.where(cycles > 0, cycles, 1.0),
                                    0.0)
    out[:, _INST_CLASS_COLUMNS] = a[:, _CLASS_SLICE]
    out[:, _CIDX["frac_fp32"]] = np.where(
        has_inst, a[:, A_CLASS0 + 0] / safe_inst, 0.0)
    out[:, _CIDX["frac_fp64"]] = np.where(
        has_inst, a[:, A_CLASS0 + 1] / safe_inst, 0.0)
    mem_inst = (a[:, A_CLASS0 + INSTRUCTION_CLASSES.index("load")]
                + a[:, A_CLASS0 + INSTRUCTION_CLASSES.index("store")])
    out[:, _CIDX["frac_mem"]] = np.where(has_inst, mem_inst / safe_inst, 0.0)
    out[:, _CIDX["frac_branch"]] = np.where(
        has_inst,
        a[:, A_CLASS0 + INSTRUCTION_CLASSES.index("branch")] / safe_inst,
        0.0)
    avg_warps = np.where(has_inst, a[:, A_WARP_INST] / safe_inst, 0.0)
    out[:, _CIDX["inst_per_warp"]] = np.where(
        has_inst, inst / np.maximum(1.0, avg_warps), 0.0)
    issue_slots = a[:, A_ISSUE_SLOTS]
    out[:, _CIDX["issue_slots"]] = issue_slots

    stall_total = (a[:, A_STALL_MEM_LOAD] + a[:, A_STALL_MEM_OTHER]
                   + a[:, A_STALL_CONTROL] + a[:, A_STALL_SYNC]
                   + a[:, A_STALL_DATA] + a[:, A_STALL_IDLE])
    stall_mem = a[:, A_STALL_MEM_LOAD] + a[:, A_STALL_MEM_OTHER]
    out[:, _CIDX["stall_total"]] = stall_total
    out[:, _CIDX["stall_mem_hazard"]] = stall_mem
    out[:, _CIDX["stall_mem_hazard_load"]] = a[:, A_STALL_MEM_LOAD]
    out[:, _CIDX["stall_mem_hazard_nonload"]] = a[:, A_STALL_MEM_OTHER]
    out[:, _CIDX["stall_control"]] = a[:, A_STALL_CONTROL]
    out[:, _CIDX["stall_sync"]] = a[:, A_STALL_SYNC]
    out[:, _CIDX["stall_data"]] = a[:, A_STALL_DATA]
    out[:, _CIDX["stall_idle"]] = a[:, A_STALL_IDLE]
    has_stall = stall_total > 0
    safe_stall = np.where(has_stall, stall_total, 1.0)
    out[:, _CIDX["frac_stall_mem"]] = np.where(
        has_stall, stall_mem / safe_stall, 0.0)
    out[:, _CIDX["frac_stall_control"]] = np.where(
        has_stall, a[:, A_STALL_CONTROL] / safe_stall, 0.0)
    out[:, _CIDX["avg_mem_latency"]] = np.where(
        has_inst, a[:, A_MEM_LATENCY] / safe_inst, 0.0)
    has_slots = issue_slots > 0
    safe_slots = np.where(has_slots, issue_slots, 1.0)
    stalled_share = np.where(has_slots, stall_total / safe_slots, 0.0)
    out[:, _CIDX["eligible_warps"]] = avg_warps * (1.0 - stalled_share)
    out[:, _CIDX["warp_issue_efficiency"]] = np.where(
        has_slots, inst / safe_slots, 0.0)

    l1_read_access = a[:, A_L1_READ_ACCESS]
    l1_read_miss = a[:, A_L1_READ_MISS]
    out[:, _CIDX["l1_read_access"]] = l1_read_access
    out[:, _CIDX["l1_read_miss"]] = l1_read_miss
    out[:, _CIDX["l1_read_hit"]] = l1_read_access - l1_read_miss
    has_l1 = l1_read_access > 0
    out[:, _CIDX["l1_read_miss_rate"]] = np.where(
        has_l1, l1_read_miss / np.where(has_l1, l1_read_access, 1.0), 0.0)
    out[:, _CIDX["l1_write_access"]] = a[:, A_L1_WRITE_ACCESS]
    out[:, _CIDX["l1_write_miss"]] = a[:, A_L1_WRITE_MISS]
    l2_access = a[:, A_L2_ACCESS]
    out[:, _CIDX["l2_access"]] = l2_access
    out[:, _CIDX["l2_miss"]] = a[:, A_L2_MISS]
    has_l2 = l2_access > 0
    out[:, _CIDX["l2_miss_rate"]] = np.where(
        has_l2, a[:, A_L2_MISS] / np.where(has_l2, l2_access, 1.0), 0.0)
    out[:, _CIDX["dram_bytes"]] = a[:, A_DRAM_BYTES]

    out[:, _CIDX["active_warps"]] = avg_warps
    out[:, _CIDX["occupancy"]] = avg_warps / arch.max_warps_per_cluster
    busy = a[:, A_BUSY_S]
    has_busy = busy > 0
    out[:, _CIDX["bandwidth_utilization"]] = np.where(
        has_busy, a[:, A_BW_UTIL_TIME] / np.where(has_busy, busy, 1.0), 0.0)
    return out


def build_counters(activity: EpochActivity, arch: GPUArchConfig) -> CounterSet:
    """Turn one activity record into the 47-counter schema.

    Scalar wrapper around :func:`build_counters_matrix`; power counters
    are filled separately by the simulator once the power model has been
    evaluated for the epoch.
    """
    row = build_counters_matrix(activity.as_vector()[None, :], arch)[0]
    return CounterSet.from_vector(row)
