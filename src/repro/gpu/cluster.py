"""Per-cluster execution engine.

A :class:`ClusterState` advances one SM cluster through its kernel in
variable-length *quanta*: within a quantum the workload position stays
inside one phase segment and one noise chunk, so the interval model's
stationarity assumption holds exactly.  The cluster accumulates an
:class:`EpochActivity` record per DVFS epoch; the simulator turns that
into performance counters and power numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from .arch import GPUArchConfig
from .counters import CounterSet
from .interval_model import ThroughputSolution, solve_throughput
from .kernels import KernelCursor, KernelProfile
from .noise import WorkloadNoise
from .phases import INSTRUCTION_CLASSES


@dataclass
class EpochActivity:
    """Aggregated microarchitectural activity of one cluster epoch."""

    duration_s: float = 0.0
    busy_s: float = 0.0
    frequency_hz: float = 0.0
    voltage_v: float = 0.0
    cycles: float = 0.0
    instructions: float = 0.0
    inst_by_class: dict[str, float] = field(
        default_factory=lambda: {cls: 0.0 for cls in INSTRUCTION_CLASSES})
    issue_slots: float = 0.0
    stall_mem_load: float = 0.0
    stall_mem_other: float = 0.0
    stall_control: float = 0.0
    stall_sync: float = 0.0
    stall_data: float = 0.0
    stall_idle: float = 0.0
    l1_read_access: float = 0.0
    l1_read_miss: float = 0.0
    l1_write_access: float = 0.0
    l1_write_miss: float = 0.0
    l2_access: float = 0.0
    l2_miss: float = 0.0
    dram_bytes: float = 0.0
    warp_inst_weighted: float = 0.0
    mem_latency_weighted: float = 0.0
    bandwidth_util_time: float = 0.0
    finished: bool = False

    @property
    def stall_mem(self) -> float:
        """Total memory-hazard stall slots."""
        return self.stall_mem_load + self.stall_mem_other

    @property
    def stall_total(self) -> float:
        """All stall slots in the epoch."""
        return (self.stall_mem_load + self.stall_mem_other + self.stall_control
                + self.stall_sync + self.stall_data + self.stall_idle)

    @property
    def ipc(self) -> float:
        """Instructions per core cycle over the epoch."""
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    @property
    def avg_active_warps(self) -> float:
        """Instruction-weighted mean of schedulable warps."""
        if self.instructions <= 0:
            return 0.0
        return self.warp_inst_weighted / self.instructions

    @property
    def avg_mem_latency(self) -> float:
        """Instruction-weighted mean memory latency (core cycles)."""
        if self.instructions <= 0:
            return 0.0
        return self.mem_latency_weighted / self.instructions

    @property
    def avg_bandwidth_utilization(self) -> float:
        """Busy-time-weighted DRAM bandwidth utilisation."""
        if self.busy_s <= 0:
            return 0.0
        return self.bandwidth_util_time / self.busy_s


class ClusterState:
    """One independently clocked SM cluster executing a kernel."""

    def __init__(self, arch: GPUArchConfig, kernel: KernelProfile,
                 noise: WorkloadNoise, cluster_id: int = 0,
                 skew_instructions: float = 0.0) -> None:
        self.arch = arch
        self.cluster_id = int(cluster_id)
        self.cursor = KernelCursor(kernel, skew_instructions=skew_instructions)
        self.noise = noise
        self.level = arch.vf_table.default_level
        self._pending_transition_s = 0.0

    # ------------------------------------------------------------------
    # DVFS control
    # ------------------------------------------------------------------
    def set_level(self, level: int) -> None:
        """Switch the cluster to operating point ``level``.

        Switching to a *different* level charges the IVR transition dead
        time at the start of the next quantum.
        """
        clamped = self.arch.vf_table.clamp(level)
        if clamped != level:
            raise SimulationError(
                f"V/f level {level} out of range for {self.arch.name}"
            )
        if clamped != self.level:
            self._pending_transition_s += self.arch.dvfs_transition_ns * 1e-9
        self.level = clamped

    @property
    def finished(self) -> bool:
        """True once the cluster's kernel has fully executed."""
        return self.cursor.finished

    @property
    def instructions_done(self) -> float:
        """Instructions completed by this cluster since kernel start."""
        return self.cursor.global_instructions_done

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _solve_current(self) -> ThroughputSolution:
        phase = self.cursor.current_phase
        chunk = self.noise.chunk_of(self.cursor.global_instructions_done)
        warp_m, miss_m, cpi_m = self.noise.multipliers(chunk)
        point = self.arch.vf_table[self.level]
        return solve_throughput(
            self.arch, phase, point.frequency_hz,
            warp_multiplier=warp_m, miss_multiplier=miss_m,
            cpi_multiplier=cpi_m,
        )

    def run_epoch(self, epoch_s: float) -> EpochActivity:
        """Advance the cluster by ``epoch_s`` seconds of wall-clock time.

        Returns the epoch's activity record.  A finished cluster idles:
        time and cycles elapse, nothing executes.
        """
        if epoch_s <= 0:
            raise SimulationError("epoch duration must be positive")
        point = self.arch.vf_table[self.level]
        activity = EpochActivity(
            duration_s=epoch_s,
            frequency_hz=point.frequency_hz,
            voltage_v=point.voltage_v,
        )

        elapsed = 0.0
        # IVR transition dead time: leakage burns, nothing issues.
        if self._pending_transition_s > 0:
            dead = min(self._pending_transition_s, epoch_s)
            self._pending_transition_s -= dead
            elapsed += dead
            activity.cycles += dead * point.frequency_hz

        while elapsed < epoch_s - 1e-15 and not self.cursor.finished:
            solution = self._solve_current()
            phase = self.cursor.current_phase
            position = self.cursor.global_instructions_done
            chunk = self.noise.chunk_of(position)
            to_chunk_end = self.noise.chunk_end(chunk) - position
            boundary = min(self.cursor.instructions_remaining_in_segment,
                           to_chunk_end)
            time_left = epoch_s - elapsed
            time_to_boundary = solution.time_for_instructions(boundary)
            if time_to_boundary <= time_left:
                step_insts = boundary
                step_time = time_to_boundary
            else:
                step_insts = solution.instructions_in_time(time_left)
                step_time = time_left
            if step_insts <= 0:
                # Degenerate: throughput too low to make progress in the
                # remaining slice; account for the idle tail and stop.
                break
            self.cursor.advance(step_insts)
            elapsed += step_time
            self._accumulate(activity, phase, solution, step_insts, step_time)

        # Idle tail (kernel finished or no progress possible).
        if elapsed < epoch_s:
            idle = epoch_s - elapsed
            activity.cycles += idle * point.frequency_hz

        activity.finished = self.cursor.finished
        return activity

    def _accumulate(self, activity: EpochActivity, phase, solution,
                    instructions: float, step_time: float) -> None:
        arch = self.arch
        activity.busy_s += step_time
        activity.cycles += instructions * solution.cycles_per_instruction
        activity.instructions += instructions
        for cls, fraction in phase.mix.items():
            activity.inst_by_class[cls] += instructions * fraction
        activity.issue_slots += (instructions * solution.cycles_per_instruction
                                 * arch.issue_width)
        activity.stall_mem_load += instructions * solution.stall_mem_load
        activity.stall_mem_other += instructions * solution.stall_mem_other
        activity.stall_control += instructions * solution.stall_control
        activity.stall_sync += instructions * solution.stall_sync
        activity.stall_data += instructions * solution.stall_data
        activity.stall_idle += instructions * solution.stall_idle

        loads = instructions * phase.load_fraction
        stores = instructions * phase.store_fraction
        l1_read_miss = loads * phase.l1_miss_rate
        l1_write_miss = stores * 0.9  # write-through-ish global stores
        l2_access = l1_read_miss + l1_write_miss
        l2_miss = l2_access * phase.l2_miss_rate
        activity.l1_read_access += loads
        activity.l1_read_miss += l1_read_miss
        activity.l1_write_access += stores
        activity.l1_write_miss += l1_write_miss
        activity.l2_access += l2_access
        activity.l2_miss += l2_miss
        activity.dram_bytes += l2_miss * arch.cache_line_bytes

        activity.warp_inst_weighted += instructions * phase.active_warps
        activity.mem_latency_weighted += (instructions
                                          * solution.mem_latency_cycles)
        activity.bandwidth_util_time += (step_time
                                         * solution.bandwidth_utilization)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Capture the replayable state of this cluster."""
        return {
            "cursor": self.cursor.clone(),
            "level": self.level,
            "pending_transition_s": self._pending_transition_s,
        }

    def restore(self, state: dict) -> None:
        """Restore a snapshot taken with :meth:`snapshot`."""
        self.cursor = state["cursor"].clone()
        self.level = state["level"]
        self._pending_transition_s = state["pending_transition_s"]


def build_counters(activity: EpochActivity, arch: GPUArchConfig) -> CounterSet:
    """Turn an activity record into the 47-counter schema.

    Power counters are filled separately by the simulator once the power
    model has been evaluated for the epoch.
    """
    counters = CounterSet()
    inst = activity.instructions
    counters["inst_total"] = inst
    counters["ipc"] = activity.ipc
    counters["inst_fp32"] = activity.inst_by_class["fp32"]
    counters["inst_fp64"] = activity.inst_by_class["fp64"]
    counters["inst_int"] = activity.inst_by_class["int"]
    counters["inst_sfu"] = activity.inst_by_class["sfu"]
    counters["inst_load"] = activity.inst_by_class["load"]
    counters["inst_store"] = activity.inst_by_class["store"]
    counters["inst_shared"] = activity.inst_by_class["shared"]
    counters["inst_branch"] = activity.inst_by_class["branch"]
    counters["inst_sync"] = activity.inst_by_class["sync"]
    if inst > 0:
        counters["frac_fp32"] = activity.inst_by_class["fp32"] / inst
        counters["frac_fp64"] = activity.inst_by_class["fp64"] / inst
        counters["frac_mem"] = (activity.inst_by_class["load"]
                                + activity.inst_by_class["store"]) / inst
        counters["frac_branch"] = activity.inst_by_class["branch"] / inst
        warps = max(1.0, activity.avg_active_warps)
        counters["inst_per_warp"] = inst / warps
    counters["issue_slots"] = activity.issue_slots

    counters["stall_total"] = activity.stall_total
    counters["stall_mem_hazard"] = activity.stall_mem
    counters["stall_mem_hazard_load"] = activity.stall_mem_load
    counters["stall_mem_hazard_nonload"] = activity.stall_mem_other
    counters["stall_control"] = activity.stall_control
    counters["stall_sync"] = activity.stall_sync
    counters["stall_data"] = activity.stall_data
    counters["stall_idle"] = activity.stall_idle
    if activity.stall_total > 0:
        counters["frac_stall_mem"] = activity.stall_mem / activity.stall_total
        counters["frac_stall_control"] = (activity.stall_control
                                          / activity.stall_total)
    counters["avg_mem_latency"] = activity.avg_mem_latency
    stalled_share = (activity.stall_total / activity.issue_slots
                     if activity.issue_slots > 0 else 0.0)
    counters["eligible_warps"] = activity.avg_active_warps * (1.0 - stalled_share)
    if activity.issue_slots > 0:
        counters["warp_issue_efficiency"] = inst / activity.issue_slots

    counters["l1_read_access"] = activity.l1_read_access
    counters["l1_read_miss"] = activity.l1_read_miss
    counters["l1_read_hit"] = activity.l1_read_access - activity.l1_read_miss
    if activity.l1_read_access > 0:
        counters["l1_read_miss_rate"] = (activity.l1_read_miss
                                         / activity.l1_read_access)
    counters["l1_write_access"] = activity.l1_write_access
    counters["l1_write_miss"] = activity.l1_write_miss
    counters["l2_access"] = activity.l2_access
    counters["l2_miss"] = activity.l2_miss
    if activity.l2_access > 0:
        counters["l2_miss_rate"] = activity.l2_miss / activity.l2_access
    counters["dram_bytes"] = activity.dram_bytes

    counters["active_warps"] = activity.avg_active_warps
    counters["occupancy"] = (activity.avg_active_warps
                             / arch.max_warps_per_cluster)
    counters["bandwidth_utilization"] = activity.avg_bandwidth_utilization
    return counters
