"""GPU architecture configuration.

A :class:`GPUArchConfig` carries every microarchitectural constant the
interval model and the power model need.  The preset
:func:`titan_x_config` approximates the NVIDIA GeForce GTX Titan X
(Maxwell GM200) the paper simulates: 24 SM clusters, 128 CUDA cores per
SM, 250 W TDP.

Clock domains
-------------
Core-side latencies (``*_cycles``) are constant in *cycles* — their
wall-clock cost scales as ``1/f``.  Memory-side latencies (``*_ns``)
are constant in *nanoseconds* — their cost at the core, measured in
core cycles, grows proportionally with ``f``.  This split is what makes
memory-bound code frequency-insensitive and is the entire physical
basis of DVFS energy savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from .vf import VFTable, titan_x_vf_table


@dataclass(frozen=True)
class GPUArchConfig:
    """Microarchitectural constants of the simulated GPU.

    Attributes
    ----------
    name:
        Human-readable architecture name.
    num_clusters:
        Number of independently clocked SM clusters (per-cluster DVFS).
    issue_width:
        Peak warp instructions issued per cluster per core cycle.
    max_warps_per_cluster:
        Hardware warp slots per cluster.
    warp_size:
        Threads per warp.
    l1_hit_latency_cycles:
        L1 data-cache hit latency (core clock domain).
    l2_latency_ns:
        L1-miss-to-L2 round trip (memory clock domain).
    dram_latency_ns:
        L2-miss-to-DRAM round trip (memory clock domain).
    dram_bandwidth_bytes_per_s:
        Aggregate DRAM bandwidth shared by all clusters.
    cache_line_bytes:
        Line size used to convert miss counts to traffic.
    vf_table:
        Selectable V/f operating points (slowest first).
    dvfs_transition_ns:
        Dead time when a cluster switches operating point; integrated
        voltage regulators make this sub-microsecond (paper §I).
    """

    name: str = "generic-gpu"
    num_clusters: int = 24
    issue_width: float = 4.0
    max_warps_per_cluster: int = 64
    warp_size: int = 32
    l1_hit_latency_cycles: float = 28.0
    l2_latency_ns: float = 180.0
    dram_latency_ns: float = 320.0
    dram_bandwidth_bytes_per_s: float = 336e9
    cache_line_bytes: int = 128
    vf_table: VFTable = field(default_factory=titan_x_vf_table)
    dvfs_transition_ns: float = 100.0

    def __post_init__(self) -> None:
        if self.num_clusters <= 0:
            raise ConfigError("num_clusters must be positive")
        if self.issue_width <= 0:
            raise ConfigError("issue_width must be positive")
        if self.max_warps_per_cluster <= 0:
            raise ConfigError("max_warps_per_cluster must be positive")
        if self.l1_hit_latency_cycles < 0:
            raise ConfigError("l1_hit_latency_cycles cannot be negative")
        if min(self.l2_latency_ns, self.dram_latency_ns) < 0:
            raise ConfigError("memory latencies cannot be negative")
        if self.dram_bandwidth_bytes_per_s <= 0:
            raise ConfigError("dram bandwidth must be positive")
        if self.cache_line_bytes <= 0:
            raise ConfigError("cache_line_bytes must be positive")

    @property
    def default_frequency_hz(self) -> float:
        """Core frequency of the default operating point."""
        return self.vf_table[self.vf_table.default_level].frequency_hz

    @property
    def cluster_bandwidth_bytes_per_s(self) -> float:
        """Fair-share DRAM bandwidth per cluster."""
        return self.dram_bandwidth_bytes_per_s / self.num_clusters

    def memory_latency_cycles(self, l1_miss_rate: float, l2_miss_rate: float,
                              frequency_hz: float) -> float:
        """Average load-to-use latency in *core cycles* at ``frequency_hz``.

        L1 hits cost a fixed number of core cycles; L2 and DRAM round
        trips are fixed in nanoseconds, so their cycle cost scales with
        the core frequency.
        """
        if not 0.0 <= l1_miss_rate <= 1.0:
            raise ConfigError(f"l1_miss_rate out of [0,1]: {l1_miss_rate}")
        if not 0.0 <= l2_miss_rate <= 1.0:
            raise ConfigError(f"l2_miss_rate out of [0,1]: {l2_miss_rate}")
        beyond_l1_ns = self.l2_latency_ns + l2_miss_rate * self.dram_latency_ns
        beyond_l1_cycles = beyond_l1_ns * 1e-9 * frequency_hz
        return self.l1_hit_latency_cycles + l1_miss_rate * beyond_l1_cycles


def titan_x_config() -> GPUArchConfig:
    """GTX Titan X (GM200) preset used throughout the paper (§V.A)."""
    return GPUArchConfig(
        name="gtx-titan-x",
        num_clusters=24,
        issue_width=4.0,
        max_warps_per_cluster=64,
        warp_size=32,
        l1_hit_latency_cycles=28.0,
        l2_latency_ns=180.0,
        dram_latency_ns=320.0,
        dram_bandwidth_bytes_per_s=336e9,
        cache_line_bytes=128,
        vf_table=titan_x_vf_table(),
        dvfs_transition_ns=100.0,
    )


def small_test_config(num_clusters: int = 2) -> GPUArchConfig:
    """A reduced configuration for fast unit tests."""
    return GPUArchConfig(
        name="small-test-gpu",
        num_clusters=num_clusters,
        issue_width=4.0,
        max_warps_per_cluster=48,
        warp_size=32,
        l1_hit_latency_cycles=20.0,
        l2_latency_ns=150.0,
        dram_latency_ns=300.0,
        dram_bandwidth_bytes_per_s=48e9 * num_clusters,
        cache_line_bytes=128,
        vf_table=titan_x_vf_table(),
        dvfs_transition_ns=100.0,
    )
