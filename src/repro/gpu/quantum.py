"""Vectorised quantum kernel: prefetched schedules, stacked solves.

:func:`run_epoch_batch` advances *many* :class:`~repro.gpu.cluster.
ClusterState` objects through one DVFS epoch where the scalar
:meth:`~repro.gpu.cluster.ClusterState.run_epoch` loop runs ~30 Python
statements per quantum per cluster.  The engine exploits a structural
property of the quantum loop: quantum *boundaries* are determined
purely by workload position (phase segment ends and noise-chunk ends),
never by wall-clock time.  Each cluster's upcoming quanta — boundary,
phase length, noise multipliers, post-quantum cursor state — are
enumerated ahead of time by a cheap Python shadow cursor, and the
interval-model solves for a whole *wave* of quanta across all clusters
are resolved through one batched cache probe plus one
:func:`~repro.gpu.interval_model.solve_throughput_batch` call for the
misses.  Stepping then consumes each cluster's prefetched schedule in
one pass: a running-sum (``np.cumsum``) over the quantum times finds
how many quanta fit in the epoch budget, and the cluster's cursor
jumps straight to the enumerated post-state of the last full quantum.
Time only enters at the epoch boundary: the one quantum cut short by
the budget is stepped with scalar arithmetic, and it invalidates the
cluster's prefetched tail, which is re-enumerated from real state if
ever needed (rare: the epoch ends right there).

Bit-stability rules
-------------------
Every arithmetic stage replicates the scalar loop's expression with the
same operand order.  The enumeration pass *is* the scalar code:
positions, chunk indices (CPython ``float.__floordiv__`` is not
``floor(x / y)`` in all edge cases, so ``//`` stays in Python),
boundaries and segment completions are computed on Python floats
exactly as ``run_epoch`` computes them.  The stepping pass uses only
elementwise numpy ops (add/sub/mul/div/where/comparisons) — correctly
rounded per element — plus ``np.cumsum``, which accumulates strictly
left-to-right and therefore reproduces the scalar loop's running
``elapsed`` / activity sums bit-for-bit.  ``np.sum``/``np.add.reduce``
(pairwise/unrolled grouping) and matrix products are banned from this
module; per-task reductions stay with the callers (simulator / fused
engine) on contiguous row slices, which keeps BLAS out of the quantum
path entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from .cluster import (A_BW_UTIL_TIME, A_BUSY_S, A_CYCLES, A_INSTRUCTIONS,
                      NUM_ACTIVITY_SLOTS, QR_BW_UTIL, QR_IPC, QROW_WIDTH,
                      ClusterState, quantum_row_for, quantum_rows_batch)
from .interval_model import (NUM_PHASE_PARAMS, PP_INSTRUCTIONS,
                             arch_solve_key_cached, phase_params_row,
                             phase_solve_key_cached, solve_throughput_batch)

#: Epoch-boundary slack, identical to the scalar loop's.
_EPOCH_EPS = 1e-15
#: Segment-completion slack, identical to the scalar loop's.
_SEGMENT_EPS = 1e-9
#: Quanta enumerated per cluster on a mid-epoch refill.  The first wave
#: is sized from the cluster's consumption last epoch (``_quanta_hint``)
#: so steady-state epochs resolve in one or two waves.
_REFILL_QUANTA = 16
#: First-wave size for clusters with no consumption history yet.
_DEFAULT_HINT = 6
#: Upper bound on the remembered per-epoch consumption hint.  Generous:
#: over-enumerated quanta cost one wasted (cached) solve each at epoch
#: end, while an undershot hint costs a whole extra refill wave — and
#: long control epochs run hundreds of quanta per cluster.
_MAX_HINT = 1024


@dataclass
class BatchEpochResult:
    """Per-cluster outcome of one batched epoch.

    ``matrix`` holds the accumulated activity vectors (``(n,
    NUM_ACTIVITY_SLOTS)``, row order = cluster order); it is ``None``
    in advance-only mode.  ``instructions`` counts instructions
    executed this epoch and ``finished`` flags clusters whose kernel
    has fully executed — both are tracked in every mode.
    """

    matrix: np.ndarray | None
    instructions: np.ndarray
    finished: np.ndarray


def run_epoch_batch(clusters: list[ClusterState], epoch_s: float, *,
                    accumulate: bool = True,
                    matrix_out: np.ndarray | None = None) -> BatchEpochResult:
    """Advance every cluster by ``epoch_s`` seconds in lockstep.

    Bit-identical to calling ``cluster.run_epoch(epoch_s)`` on each
    cluster in turn (see the module docstring for why); cursor, noise
    and pending-transition state are written back exactly as the
    scalar loop would leave them.  With ``accumulate=False`` the
    activity matrix is skipped (state still advances — the datagen
    replay protocol uses this for its reference/tail scans, whose
    counters are never read).  ``matrix_out``, when given, must be a
    ``(n, NUM_ACTIVITY_SLOTS)`` float64 buffer; it is zeroed and
    reused instead of allocating the result matrix.

    Clusters may carry different solution caches, architectures,
    kernels and noise tracks; solves are grouped per (cache, arch).
    Any attached cache must use the :func:`~repro.gpu.cluster.
    quantum_row_for` payload builder (the default), because batched
    probes copy payload rows straight into the wave's row matrix.
    """
    if epoch_s <= 0:
        raise SimulationError("epoch duration must be positive")
    n = len(clusters)
    if accumulate:
        if matrix_out is not None:
            if matrix_out.shape != (n, NUM_ACTIVITY_SLOTS):
                raise SimulationError(
                    f"matrix_out must have shape ({n}, {NUM_ACTIVITY_SLOTS}),"
                    f" got {matrix_out.shape}")
            acc = matrix_out
            acc.fill(0.0)
        else:
            acc = np.zeros((n, NUM_ACTIVITY_SLOTS), dtype=np.float64)
    else:
        acc = None
    if n == 0:
        return BatchEpochResult(
            matrix=acc,
            instructions=np.zeros(0, dtype=np.float64),
            finished=np.zeros(0, dtype=bool),
        )

    # ------------------------------------------------------------------
    # Gather per-cluster state into arrays / parallel lists.
    # ------------------------------------------------------------------
    caches = [c.solution_cache for c in clusters]
    arches = [c.arch for c in clusters]
    noises = [c.noise for c in clusters]
    kernels = [c.cursor.kernel for c in clusters]
    num_segments = [k.num_segments for k in kernels]
    seg_index = [c.cursor.segment_index for c in clusters]
    chunk_ints = [c.noise.chunk_instructions for c in clusters]
    freq_list = [float(c.arch.vf_table[c.level].frequency_hz)
                 for c in clusters]
    freq = np.array(freq_list, dtype=np.float64)
    pending = np.array([c._pending_transition_s for c in clusters],
                       dtype=np.float64)
    inst_done = [c.cursor.instructions_done for c in clusters]
    completed = [c.cursor._completed_instructions for c in clusters]
    runnable = [seg_index[i] < num_segments[i] for i in range(n)]

    # Solve groups: clusters sharing (cache, arch) probe and solve as
    # one stack.  The common case is a single group.
    group_slot: dict[tuple[int, int], int] = {}
    group_info: list[tuple] = []
    group_of = np.empty(n, dtype=np.intp)
    ak_list: list[tuple | None] = [None] * n
    for i in range(n):
        cache = caches[i]
        if cache is not None:
            if cache.payload_builder is not quantum_row_for:
                raise SimulationError(
                    "run_epoch_batch requires solution caches built with "
                    "the quantum_row_for payload builder")
            ak_list[i] = arch_solve_key_cached(arches[i])
        gk = (id(cache), id(arches[i]))
        g = group_slot.get(gk)
        if g is None:
            g = len(group_info)
            group_slot[gk] = g
            group_info.append((cache, arches[i]))
        group_of[i] = g
    multi_group = len(group_info) > 1

    # ------------------------------------------------------------------
    # Prefetch state.  A Python shadow cursor per cluster (``e_*``)
    # enumerates upcoming quanta ahead of the stepping pass; resolved
    # quanta live in flat parallel stores addressed through per-cluster
    # lists of contiguous ``(start, stop)`` ranges (a cluster's quanta
    # within one wave are enumerated back to back, so a refill
    # contributes exactly one range — stepping then works on array
    # *slices*, never gather indices).  ``q_rows`` holds the solved
    # quantum rows, ``q_t`` the quantum times, ``q_contrib`` the
    # per-quantum state-row contributions (activity slots, busy time,
    # bandwidth-util time and elapsed time — precomputed once per wave
    # with the same elementwise ops the scalar loop applies per
    # quantum), ``q_ph`` the phase lengths,
    # and ``q_post`` the enumerated post-quantum cursor state
    # (instructions done / completed / segment) the real cursor jumps
    # to after a full consumption.
    # ------------------------------------------------------------------
    e_seg = list(seg_index)
    e_done = list(inst_done)
    e_comp = list(completed)
    e_live = [False] * n
    e_params: list[np.ndarray | None] = [None] * n
    e_ph = [0.0] * n
    e_key: list[tuple | None] = [None] * n
    # All clusters start dirty: the first refill syncs the shadow
    # cursor from real state through the same path that recovers from
    # a flushed prefetch.
    dirty = [True] * n

    queues: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    rptr = [0] * n   # index of the current range in queues[i]
    roff = [0] * n   # consumed quanta within that range
    ncons = [0] * n  # fully consumed quanta this epoch (sizes the hint)
    q_total = 0
    q_rows: np.ndarray | None = None
    q_t: np.ndarray | None = None
    q_contrib: np.ndarray | None = None
    q_ph: list[float] = []
    # Post-quantum cursor state per quantum: (inst_done, completed, seg).
    q_post: list[tuple[float, float, int]] = []
    hints = [getattr(c, "_quanta_hint", _DEFAULT_HINT) for c in clusters]
    primed = [False] * n

    def _resync(i: int) -> None:
        e_seg[i] = seg_index[i]
        e_done[i] = inst_done[i]
        e_comp[i] = completed[i]
        live = seg_index[i] < num_segments[i]
        e_live[i] = live
        if live:
            phase = kernels[i].segment(seg_index[i])
            row = phase_params_row(phase)
            e_params[i] = row
            e_ph[i] = float(row[PP_INSTRUCTIONS])
            if caches[i] is not None:
                e_key[i] = phase_solve_key_cached(phase)
        dirty[i] = False

    def _refill(targets: list[int]) -> None:
        nonlocal q_rows, q_t, q_contrib, q_total
        # Enumerate the next wave of quanta for every target with the
        # scalar loop's own Python-float arithmetic, then resolve all
        # of them in one batched probe/solve/row pass per (cache, arch)
        # group.
        # One tuple per quantum, unzipped below (fewer hot-loop appends
        # than parallel lists): (cluster, boundary, phase_insts, warp_m,
        # miss_m, cpi_m, params_row, key).
        wave: list[tuple] = []
        wave_append = wave.append
        post_append = q_post.append
        base = q_total
        for i in targets:
            if dirty[i]:
                _resync(i)
            cached_i = caches[i] is not None
            akv = ak_list[i]
            pkv = e_key[i]
            fv = freq_list[i]
            # Noise-track lookups are inlined (list indexing with an
            # extend-on-demand fallback) — a method call per quantum
            # costs more than the lookup itself.
            noise = noises[i]
            flat = noise.sigma == 0.0
            tr0, tr1, tr2 = noise.tracks()
            extend = noise._extend_to
            ci = chunk_ints[i]
            want = _REFILL_QUANTA if primed[i] else hints[i]
            primed[i] = True
            done_i = e_done[i]
            comp_i = e_comp[i]
            seg_i = e_seg[i]
            ph_i = e_ph[i]
            params_i = e_params[i]
            live_i = e_live[i]
            rstart = base + len(wave)
            produced = 0
            while produced < want and live_i:
                pos = comp_i + done_i
                chunk = int(pos // ci)
                if flat:
                    m0 = m1 = m2 = 1.0
                else:
                    if chunk >= len(tr0):
                        extend(chunk)
                    m0 = tr0[chunk]
                    m1 = tr1[chunk]
                    m2 = tr2[chunk]
                b = min(ph_i - done_i, float((chunk + 1) * ci) - pos)
                wave_append((i, b, ph_i, m0, m1, m2, params_i,
                             (akv, pkv, fv, m0, m1, m2)
                             if cached_i else None))
                done_i += b
                if done_i >= ph_i - _SEGMENT_EPS:
                    comp_i += ph_i
                    done_i = 0.0
                    seg_i += 1
                    if seg_i < num_segments[i]:
                        phase = kernels[i].segment(seg_i)
                        row = phase_params_row(phase)
                        params_i = row
                        ph_i = float(row[PP_INSTRUCTIONS])
                        if cached_i:
                            pkv = phase_solve_key_cached(phase)
                            e_key[i] = pkv
                    else:
                        live_i = False
                post_append((done_i, comp_i, seg_i))
                produced += 1
            rstop = base + len(wave)
            if rstop > rstart:
                queues[i].append((rstart, rstop))
            e_done[i] = done_i
            e_comp[i] = comp_i
            e_seg[i] = seg_i
            e_ph[i] = ph_i
            e_params[i] = params_i
            e_live[i] = live_i

        m = len(wave)
        if m == 0:
            return
        (wave_i, wave_b, wave_ph, wave_w, wave_m, wave_c, wave_params,
         wave_keys) = zip(*wave)
        wi = np.array(wave_i, dtype=np.intp)
        ww = np.array(wave_w, dtype=np.float64)
        wm_ = np.array(wave_m, dtype=np.float64)
        wc = np.array(wave_c, dtype=np.float64)
        wfreq = freq[wi]
        # Rows are freshly allocated per wave because store_batch
        # memoises views into the miss-row matrix.
        wrows = np.empty((m, QROW_WIDTH), dtype=np.float64)
        wgroups = group_of[wi]
        for g, (cache, garch) in enumerate(group_info):
            if multi_group:
                gsel = np.flatnonzero(wgroups == g)
                if gsel.size == 0:
                    continue
                sel_list = gsel.tolist()
                gw, gm, gc = ww[gsel], wm_[gsel], wc[gsel]
                gfreq = wfreq[gsel]
                gkeys = [wave_keys[j] for j in sel_list]
                target = np.empty((gsel.size, QROW_WIDTH), dtype=np.float64)
            else:
                gsel = None
                sel_list = None
                gw, gm, gc = ww, wm_, wc
                gfreq = wfreq
                gkeys = wave_keys
                target = wrows
            if cache is None:
                if sel_list is None:
                    gparams = np.stack(wave_params)
                else:
                    gparams = np.stack([wave_params[j] for j in sel_list])
                sol = solve_throughput_batch(garch, gparams, gfreq,
                                             gw, gm, gc)
                quantum_rows_batch(garch, gparams, sol, out=target)
            else:
                missing = cache.probe_batch(gkeys, target)
                if missing:
                    if sel_list is None:
                        mparams = np.stack(
                            [wave_params[j] for j, _ in missing])
                    else:
                        mparams = np.stack(
                            [wave_params[sel_list[j]] for j, _ in missing])
                    midx = np.array([j for j, _ in missing], dtype=np.intp)
                    msol = solve_throughput_batch(
                        garch, mparams, gfreq[midx],
                        gw[midx], gm[midx], gc[midx])
                    mrows = quantum_rows_batch(garch, mparams, msol)
                    target[midx] = mrows
                    cache.store_batch(missing, msol, mrows)
            if gsel is not None:
                wrows[gsel] = target
        # Per-wave precomputation of quantum times and state-row
        # contributions.  Elementwise ops over the same operands the
        # scalar loop uses per quantum, just batched across the wave:
        # ``t = (b / ipc) / f`` and ``contrib = [row * b, t, t * bw, t]``
        # (accumulate) or ``[b, t]`` (advance-only).
        wb = np.array(wave_b, dtype=np.float64)
        wt = (wb / wrows[:, QR_IPC]) / wfreq
        contrib = np.empty((m, state_width), dtype=np.float64)
        if accumulate:
            np.multiply(wrows[:, :NUM_ACTIVITY_SLOTS], wb[:, None],
                        out=contrib[:, :NUM_ACTIVITY_SLOTS])
            contrib[:, _BUSY_COL] = wt
            np.multiply(wt, wrows[:, QR_BW_UTIL],
                        out=contrib[:, _BW_COL])
        else:
            contrib[:, 0] = wb
        contrib[:, _E_COL] = wt
        if q_rows is None:
            q_rows = wrows
            q_t = wt
            q_contrib = contrib
        else:
            q_rows = np.concatenate((q_rows, wrows))
            q_t = np.concatenate((q_t, wt))
            q_contrib = np.concatenate((q_contrib, contrib))
        q_total += m
        q_ph.extend(wave_ph)

    # ------------------------------------------------------------------
    # IVR transition dead time (scalar loop: ``dead = min(pending,
    # epoch_s)`` charged as idle cycles before any quantum runs).
    # ------------------------------------------------------------------
    dead = np.minimum(pending, epoch_s)
    pending -= dead
    pend_list = pending.tolist()
    elapsed = dead.tolist()
    # All running sums live in one per-cluster state row so a range
    # consumption is a single seeded matrix cumsum: activity slots,
    # busy time and bandwidth-util time (accumulate mode) or the
    # instruction count (advance-only), plus the elapsed epoch time in
    # the last column.  Columns accumulate independently, so fusing
    # them changes nothing per column.
    if accumulate:
        state_width = NUM_ACTIVITY_SLOTS + 3
        _BUSY_COL = NUM_ACTIVITY_SLOTS
        _BW_COL = NUM_ACTIVITY_SLOTS + 1
    else:
        state_width = 2
    _E_COL = state_width - 1
    state = np.zeros((n, state_width), dtype=np.float64)
    if accumulate:
        state[:, A_CYCLES] = dead * freq
    state[:, _E_COL] = dead
    limit = epoch_s - _EPOCH_EPS

    def _consume(i: int) -> bool:
        """Step cluster ``i`` through its prefetched quanta.

        Walks the cluster's contiguous ranges; every numpy operand is a
        *slice* of the flat per-wave stores (no gather copies).
        Returns True when the cluster consumed its whole queue but the
        epoch budget has not run out — the caller refills and calls
        again.  All arithmetic replicates the scalar loop: quantum
        times and contribution rows were formed elementwise per wave,
        running sums are seeded cumsums (left-to-right over the same
        operands), the cursor jumps to enumerated post-states for
        fully-consumed quanta, and the final partial quantum is stepped
        with the scalar expressions directly.
        """
        ranges = queues[i]
        while True:
            ri = rptr[i]
            if ri >= len(ranges):
                return runnable[i] and elapsed[i] < limit
            start, stop = ranges[ri]
            lo = start + roff[i]
            k = stop - lo
            if k == 0:
                rptr[i] = ri + 1
                roff[i] = 0
                continue
            # One seeded matrix cumsum advances every running sum at
            # once: row 0 is the cluster's current state row (so a
            # later range, or a refilled queue, continues the same
            # left-associative add sequence the scalar loop performs)
            # and the elapsed column carries exactly the bits the
            # scalar ``elapsed += step_time`` sequence would hold.
            # Rows past the cut-off are computed in vain but a cumsum
            # prefix never depends on later rows, so the kept rows are
            # exact.
            sums = np.empty((k + 1, state_width), dtype=np.float64)
            sums[0] = state[i]
            sums[1:] = q_contrib[lo:stop]
            sums.cumsum(axis=0, out=sums)
            ecol = sums[:, _E_COL]
            elapsed_before = ecol[:k]
            t = q_t[lo:stop]
            time_left = epoch_s - elapsed_before
            fits = (t <= time_left) & (elapsed_before < limit)
            if fits.all():
                full = k
            else:
                full = int(fits.argmin())

            if full:
                inst_done[i], completed[i], s = q_post[lo + full - 1]
                seg_index[i] = s
                if s >= num_segments[i]:
                    runnable[i] = False
                state[i] = sums[full]
                ncons[i] += full
                elapsed[i] = float(ecol[full])

            if full == k:
                # Whole range consumed; move on while the kernel and
                # the epoch budget both have room.
                rptr[i] = ri + 1
                roff[i] = 0
                if runnable[i] and elapsed[i] < limit:
                    continue
                return False

            # The next quantum does not fit: advance the cursor past
            # the consumed prefix, then step the partial remainder
            # exactly as the scalar else-branch does and invalidate the
            # prefetched tail (the shadow cursor ran ahead of state the
            # cluster never reached).
            roff[i] = lo + full - start
            pos = lo + full
            if elapsed_before[full] < limit and runnable[i]:
                tl = time_left[full]
                si = (tl * freq_list[i]) * q_rows[pos, QR_IPC]
                if si > 0:
                    inst_done[i] = float(inst_done[i] + si)
                    if accumulate:
                        row = q_rows[pos]
                        state[i, :NUM_ACTIVITY_SLOTS] += (
                            row[:NUM_ACTIVITY_SLOTS] * si)
                        state[i, _BUSY_COL] += tl
                        state[i, _BW_COL] += tl * row[QR_BW_UTIL]
                    else:
                        state[i, 0] += si
                    ph = q_ph[pos]
                    if inst_done[i] >= ph - _SEGMENT_EPS:
                        completed[i] = float(completed[i] + ph)
                        inst_done[i] = 0.0
                        s = seg_index[i] + 1
                        seg_index[i] = s
                        if s >= num_segments[i]:
                            runnable[i] = False
                    e2 = float(elapsed_before[full] + tl)
                    elapsed[i] = e2
                    state[i, _E_COL] = e2
                    del ranges[ri:]
                    roff[i] = 0
                    dirty[i] = True
                # si <= 0: the scalar loop breaks without touching state.
            return False

    # ------------------------------------------------------------------
    # Outer passes: refill every dry cluster in one batched wave, then
    # let each cluster consume as far as its queue (or the epoch
    # budget) allows.  Steady state resolves in one or two passes.
    # ------------------------------------------------------------------
    todo = [i for i in range(n) if runnable[i] and elapsed[i] < limit]
    while todo:
        dry = [i for i in todo if rptr[i] >= len(queues[i])]
        if dry:
            _refill(dry)
        todo = [i for i in todo if _consume(i)]

    # Idle tails (scalar loop: remaining epoch time at current
    # frequency charged as idle cycles), time-proportional slots, and
    # the copy-out from the fused state matrix into the result matrix.
    if accumulate:
        for i in range(n):
            e = elapsed[i]
            if e < epoch_s:
                state[i, A_CYCLES] += (epoch_s - e) * freq_list[i]
        state[:, A_BUSY_S] = state[:, _BUSY_COL]
        state[:, A_BW_UTIL_TIME] = state[:, _BW_COL]
        acc[:] = state[:, :NUM_ACTIVITY_SLOTS]

    # Write state back to the cluster objects; remember this epoch's
    # consumption so the next epoch's first wave is sized to resolve
    # the whole schedule at once.
    for i, cluster in enumerate(clusters):
        cursor = cluster.cursor
        cursor.segment_index = seg_index[i]
        cursor.instructions_done = float(inst_done[i])
        cursor._completed_instructions = float(completed[i])
        cluster._pending_transition_s = pend_list[i]
        cluster._quanta_hint = min(_MAX_HINT, max(2, ncons[i] + 2))

    instructions = (acc[:, A_INSTRUCTIONS].copy() if accumulate
                    else state[:, 0].copy())
    return BatchEpochResult(
        matrix=acc,
        instructions=instructions,
        finished=np.array([not r for r in runnable], dtype=bool),
    )
