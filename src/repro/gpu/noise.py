"""Behavioural noise for the interval model.

Real kernels do not execute with perfectly stationary statistics inside
a phase: occupancy ripples, miss rates wander with the working set, and
the scheduler's instantaneous mix fluctuates.  We model this with a
multiplicative AR(1) (Ornstein–Uhlenbeck-like) process per perturbed
quantity.  The process is mean-one, mean-reverting, clipped away from
zero, and fully determined by its RNG stream, so simulations replay
bit-identically from a snapshot.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError


class AR1Jitter:
    """Mean-one multiplicative AR(1) noise.

    ``x[t] = 1 + rho * (x[t-1] - 1) + sigma * eps``, clipped to
    ``[1 - clip, 1 + clip]``.

    Parameters
    ----------
    rng:
        Source generator (its state is part of simulator snapshots).
    sigma:
        Innovation standard deviation; 0 produces the constant 1.
    rho:
        Mean-reversion coefficient in [0, 1).
    clip:
        Hard clip half-width; keeps multipliers physically plausible.
    """

    def __init__(self, rng: np.random.Generator, sigma: float,
                 rho: float = 0.85, clip: float = 0.5) -> None:
        if sigma < 0:
            raise SimulationError("jitter sigma cannot be negative")
        if not 0.0 <= rho < 1.0:
            raise SimulationError("jitter rho must be in [0, 1)")
        if not 0.0 < clip < 1.0:
            raise SimulationError("jitter clip must be in (0, 1)")
        self._rng = rng
        self.sigma = float(sigma)
        self.rho = float(rho)
        self.clip = float(clip)
        self.value = 1.0

    def step(self) -> float:
        """Advance one quantum and return the current multiplier."""
        if self.sigma == 0.0:
            return 1.0
        innovation = self.sigma * float(self._rng.standard_normal())
        self.value = 1.0 + self.rho * (self.value - 1.0) + innovation
        low, high = 1.0 - self.clip, 1.0 + self.clip
        self.value = min(high, max(low, self.value))
        return self.value

    def state(self) -> tuple[float, dict]:
        """Snapshot: current value and the RNG bit-generator state."""
        return self.value, self._rng.bit_generator.state

    def restore(self, state: tuple[float, dict]) -> None:
        """Restore a snapshot taken with :meth:`state`."""
        self.value, rng_state = state
        self._rng.bit_generator.state = rng_state


class WorkloadNoise:
    """Workload-position-indexed behavioural noise.

    Data generation replays the *same* stretch of a kernel at several
    operating points; for the measured performance losses to be clean
    labels, the workload's behavioural wobble must be attached to the
    *instruction position*, not to wall-clock time.  This class exposes
    AR(1) multiplier triples ``(warps, miss, cpi)`` indexed by workload
    chunk: chunk ``k`` covers instructions ``[k*chunk, (k+1)*chunk)``.
    Values are generated lazily but deterministically from the RNG
    stream, so any replay — at any frequency, from any snapshot — sees
    identical multipliers at identical workload positions.
    """

    #: Instructions covered by one noise chunk.
    DEFAULT_CHUNK = 2048

    def __init__(self, rng: np.random.Generator, sigma: float,
                 rho: float = 0.85, clip: float = 0.45,
                 chunk_instructions: int = DEFAULT_CHUNK) -> None:
        if sigma < 0:
            raise SimulationError("noise sigma cannot be negative")
        if chunk_instructions <= 0:
            raise SimulationError("chunk_instructions must be positive")
        self._rng = rng
        self.sigma = float(sigma)
        self.rho = float(rho)
        self.clip = float(clip)
        self.chunk_instructions = int(chunk_instructions)
        # Three independent AR(1) tracks, grown lazily and never mutated.
        self._tracks: list[list[float]] = [[], [], []]

    def chunk_of(self, instruction_index: float) -> int:
        """Chunk index covering the given global instruction position."""
        return int(instruction_index // self.chunk_instructions)

    def chunk_end(self, chunk: int) -> float:
        """First instruction index after ``chunk``."""
        return float((chunk + 1) * self.chunk_instructions)

    #: Chunks materialised per extension beyond the requested index.
    #: numpy's ``standard_normal(n)`` consumes the bit stream exactly
    #: like ``n`` scalar draws, so batching (and over-extending) changes
    #: neither the draw sequence nor any track value — only how often
    #: the RNG is entered.
    _EXTEND_BLOCK = 16

    def _extend_to(self, chunk: int) -> None:
        have = len(self._tracks[0])
        if have > chunk:
            return
        low, high = 1.0 - self.clip, 1.0 + self.clip
        count = max(chunk + 1 - have, self._EXTEND_BLOCK)
        draws = (self.sigma * self._rng.standard_normal(3 * count)).tolist()
        rho = self.rho
        track0, track1, track2 = self._tracks
        append0, append1, append2 = (track0.append, track1.append,
                                     track2.append)
        p0 = track0[-1] if track0 else 1.0
        p1 = track1[-1] if track1 else 1.0
        p2 = track2[-1] if track2 else 1.0
        d = 0
        # Branches replicate ``min(high, max(low, value))`` exactly for
        # the finite values produced here.
        for _ in range(count):
            v = 1.0 + rho * (p0 - 1.0) + draws[d]
            if v > high:
                v = high
            elif v < low:
                v = low
            p0 = v
            append0(v)
            v = 1.0 + rho * (p1 - 1.0) + draws[d + 1]
            if v > high:
                v = high
            elif v < low:
                v = low
            p1 = v
            append1(v)
            v = 1.0 + rho * (p2 - 1.0) + draws[d + 2]
            if v > high:
                v = high
            elif v < low:
                v = low
            p2 = v
            append2(v)
            d += 3

    def tracks(self) -> list[list[float]]:
        """The three raw multiplier tracks (warp, miss, cpi).

        Batching hook for the vectorised epoch engine: hot loops index
        the lists directly (after :meth:`ensure`-ing coverage via
        :meth:`multipliers`) instead of paying a method call per
        quantum.  Only meaningful when ``sigma > 0``; the lists must be
        treated as append-only.
        """
        return self._tracks

    def multipliers(self, chunk: int) -> tuple[float, float, float]:
        """Return ``(warp, miss, cpi)`` multipliers for ``chunk``."""
        if chunk < 0:
            raise SimulationError("chunk index cannot be negative")
        if self.sigma == 0.0:
            return (1.0, 1.0, 1.0)
        tracks = self._tracks
        track0 = tracks[0]
        if chunk >= len(track0):
            self._extend_to(chunk)
        return (track0[chunk], tracks[1][chunk], tracks[2][chunk])
