"""Voltage/frequency operating points.

The paper uses six V/f operating points for the GTX Titan X, taken from
Guerreiro et al. (HPCA 2018): (1.0 V, 683 MHz) up to (1.155 V,
1165 MHz).  DVFS decisions are indices ("levels") into this table, with
level 0 the slowest point and the last level the default/maximum.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import mhz


@dataclass(frozen=True)
class OperatingPoint:
    """One V/f operating point.

    Attributes
    ----------
    voltage_v:
        Supply voltage in volts.
    frequency_hz:
        Core clock frequency in hertz.
    """

    voltage_v: float
    frequency_hz: float

    def __post_init__(self) -> None:
        if self.voltage_v <= 0:
            raise ConfigError(f"voltage must be positive, got {self.voltage_v}")
        if self.frequency_hz <= 0:
            raise ConfigError(f"frequency must be positive, got {self.frequency_hz}")

    @property
    def frequency_mhz(self) -> float:
        """Frequency in MHz (for display)."""
        return self.frequency_hz / 1e6


class VFTable:
    """An ordered table of operating points (slowest first).

    The table validates monotonicity: both voltage and frequency must be
    non-decreasing with level, matching how real V/f curves are built.
    """

    def __init__(self, points: list[OperatingPoint]) -> None:
        if len(points) < 2:
            raise ConfigError("a V/f table needs at least two operating points")
        for lower, upper in zip(points, points[1:]):
            if upper.frequency_hz <= lower.frequency_hz:
                raise ConfigError("operating-point frequencies must strictly increase")
            if upper.voltage_v < lower.voltage_v:
                raise ConfigError("operating-point voltages must be non-decreasing")
        self._points = tuple(points)

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def __getitem__(self, level: int) -> OperatingPoint:
        if not 0 <= level < len(self._points):
            raise ConfigError(
                f"V/f level {level} out of range [0, {len(self._points) - 1}]"
            )
        return self._points[level]

    @property
    def points(self) -> tuple[OperatingPoint, ...]:
        """All operating points, slowest first."""
        return self._points

    @property
    def num_levels(self) -> int:
        """Number of selectable levels."""
        return len(self._points)

    @property
    def default_level(self) -> int:
        """The default operating point: the highest level (paper §V.A)."""
        return len(self._points) - 1

    @property
    def min_level(self) -> int:
        """The slowest operating point."""
        return 0

    def level_of_frequency(self, frequency_hz: float) -> int:
        """Return the level whose frequency matches ``frequency_hz``.

        Raises :class:`ConfigError` when no point matches (within
        0.5 MHz, to absorb float round-trips).
        """
        for level, point in enumerate(self._points):
            if abs(point.frequency_hz - frequency_hz) < 0.5e6:
                return level
        raise ConfigError(f"no operating point at {frequency_hz / 1e6:.1f} MHz")

    def clamp(self, level: int) -> int:
        """Clamp an arbitrary integer onto a valid level."""
        return max(0, min(len(self._points) - 1, int(level)))

    def frequencies_hz(self) -> list[float]:
        """List of frequencies, slowest first."""
        return [p.frequency_hz for p in self._points]

    def relative_speed(self, level: int) -> float:
        """Frequency of ``level`` relative to the default level."""
        return self[level].frequency_hz / self[self.default_level].frequency_hz


def interpolated_vf_table(base: VFTable, num_levels: int) -> VFTable:
    """Resample a V/f curve to ``num_levels`` points (granularity study).

    Endpoints are preserved; intermediate points interpolate frequency
    linearly along the curve and take the voltage of the nearest base
    point at or above the interpolated frequency (voltages are set by
    the silicon's Vmin at each frequency, so rounding *up* is the safe
    direction a vendor table would choose).
    """
    if num_levels < 2:
        raise ConfigError("need at least two operating points")
    freqs = base.frequencies_hz()
    f_min, f_max = freqs[0], freqs[-1]
    points = []
    for index in range(num_levels):
        fraction = index / (num_levels - 1)
        frequency = f_min + fraction * (f_max - f_min)
        voltage = base.points[-1].voltage_v
        for point in base.points:
            if point.frequency_hz >= frequency - 0.5e6:
                voltage = point.voltage_v
                break
        points.append(OperatingPoint(voltage, frequency))
    return VFTable(points)


def titan_x_vf_table() -> VFTable:
    """The six GTX Titan X operating points used in the paper (§V.A)."""
    return VFTable(
        [
            OperatingPoint(1.000, mhz(683)),
            OperatingPoint(1.000, mhz(780)),
            OperatingPoint(1.000, mhz(878)),
            OperatingPoint(1.000, mhz(975)),
            OperatingPoint(1.100, mhz(1100)),
            OperatingPoint(1.155, mhz(1165)),
        ]
    )
