"""Interval (quantum) throughput model.

This is the analytical core of the GPGPU-Sim surrogate.  For a cluster
executing a stationary :class:`~repro.gpu.phases.Phase` at a given core
frequency, it computes sustained IPC and a stall-slot breakdown using
Hong–Kim-style MWP/CWP reasoning:

* A single warp completes one instruction every
  ``c_solo = cpi_exec_eff + m * L(f) / mlp`` cycles, where ``m`` is the
  memory-instruction fraction, ``L(f)`` the average memory latency in
  core cycles, and ``mlp`` the per-warp memory-level parallelism.
* ``W`` concurrent warps overlap their latencies, so the cluster issues
  ``min(issue_width, W / c_solo)`` instructions per cycle.
* DRAM bandwidth caps the achievable rate: miss traffic cannot exceed
  the cluster's fair share of DRAM bandwidth.

Because ``L(f)`` contains the memory-domain latency *in nanoseconds*
converted at the core clock, lowering the frequency shrinks the memory
wait measured in cycles: memory-bound phases lose almost no wall-clock
performance at low V/f points, which is exactly the headroom every DVFS
policy in the paper competes to exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from .arch import GPUArchConfig
from .phases import INSTRUCTION_CLASSES, Phase

#: Extra issue cost per unit of divergence, as a fraction of cpi_exec.
_DIVERGENCE_CPI_FACTOR = 0.6
#: Cycles of re-convergence / barrier wait charged per sync instruction.
_SYNC_COST_CYCLES = 8.0
#: Fraction of a store's miss latency that write buffering cannot hide.
_STORE_EXPOSURE = 0.45


@dataclass(frozen=True)
class ThroughputSolution:
    """Solved steady-state behaviour of one phase at one frequency.

    All per-instruction quantities are in core cycles at the solved
    frequency.  ``stall_*`` values are *issue-slot* counts per executed
    instruction, so ``issued + sum(stalls) == issue_width / ipc``.
    """

    frequency_hz: float
    ipc: float
    cycles_per_instruction: float
    mem_latency_cycles: float
    bandwidth_utilization: float
    bandwidth_limited: bool
    stall_mem_load: float
    stall_mem_other: float
    stall_control: float
    stall_sync: float
    stall_data: float
    stall_idle: float

    @property
    def stall_mem_total(self) -> float:
        """All memory-hazard stall slots per instruction."""
        return self.stall_mem_load + self.stall_mem_other

    @property
    def total_stall_slots(self) -> float:
        """All stall slots per instruction (every non-issued slot)."""
        return (self.stall_mem_load + self.stall_mem_other + self.stall_control
                + self.stall_sync + self.stall_data + self.stall_idle)

    def time_for_instructions(self, instructions: float) -> float:
        """Wall-clock seconds to execute ``instructions`` at this rate."""
        if instructions < 0:
            raise SimulationError("instruction count cannot be negative")
        cycles = instructions / self.ipc
        return cycles / self.frequency_hz

    def instructions_in_time(self, seconds: float) -> float:
        """Instructions executed in ``seconds`` at this rate."""
        if seconds < 0:
            raise SimulationError("time cannot be negative")
        return seconds * self.frequency_hz * self.ipc


def effective_cpi(phase: Phase, cpi_multiplier: float = 1.0) -> float:
    """Per-warp issue cost including divergence inflation."""
    base = phase.cpi_exec * cpi_multiplier
    return base * (1.0 + _DIVERGENCE_CPI_FACTOR * phase.divergence)


def solve_throughput(arch: GPUArchConfig, phase: Phase, frequency_hz: float,
                     *, warp_multiplier: float = 1.0,
                     miss_multiplier: float = 1.0,
                     cpi_multiplier: float = 1.0) -> ThroughputSolution:
    """Solve the steady-state throughput of ``phase`` at ``frequency_hz``.

    The three ``*_multiplier`` arguments inject behavioural jitter (from
    :class:`~repro.gpu.noise.AR1Jitter`); they default to the noiseless
    case.  Raises :class:`SimulationError` on non-physical inputs.
    """
    if frequency_hz <= 0:
        raise SimulationError(f"frequency must be positive, got {frequency_hz}")
    if min(warp_multiplier, miss_multiplier, cpi_multiplier) <= 0:
        raise SimulationError("jitter multipliers must be positive")

    warps = min(arch.max_warps_per_cluster,
                max(1.0, phase.active_warps * warp_multiplier))
    l1_miss = min(1.0, phase.l1_miss_rate * miss_multiplier)
    l2_miss = min(1.0, phase.l2_miss_rate)
    cpi = effective_cpi(phase, cpi_multiplier)

    mem_latency = arch.memory_latency_cycles(l1_miss, l2_miss, frequency_hz)
    load_wait = phase.load_fraction * mem_latency / phase.mlp
    store_wait = (phase.store_fraction * mem_latency * _STORE_EXPOSURE
                  / phase.mlp)
    sync_wait = phase.mix.get("sync", 0.0) * _SYNC_COST_CYCLES
    c_solo = cpi + load_wait + store_wait + sync_wait

    ipc_overlap = min(arch.issue_width, warps / c_solo)

    # DRAM bandwidth cap: only traffic that misses L2 reaches DRAM.
    # Loads miss L1 then L2; ~90 % of global stores write through L1
    # (see cluster accounting) and miss L2 at the phase's L2 miss rate.
    bytes_per_inst = (phase.load_fraction * l1_miss * l2_miss
                      + phase.store_fraction * 0.9 * l2_miss
                      ) * arch.cache_line_bytes
    if bytes_per_inst > 0:
        ipc_bandwidth = (arch.cluster_bandwidth_bytes_per_s
                         / (frequency_hz * bytes_per_inst))
    else:
        ipc_bandwidth = float("inf")

    bandwidth_limited = ipc_bandwidth < ipc_overlap
    ipc = max(1e-9, min(ipc_overlap, ipc_bandwidth))
    cycles_per_instruction = 1.0 / ipc

    traffic = ipc * frequency_hz * bytes_per_inst
    bandwidth_utilization = min(1.0, traffic / arch.cluster_bandwidth_bytes_per_s)

    # --- stall-slot attribution -------------------------------------
    # Total issue slots consumed per executed instruction:
    slots_per_inst = arch.issue_width * cycles_per_instruction
    stall_total = max(0.0, slots_per_inst - 1.0)

    control_contrib = (cpi * _DIVERGENCE_CPI_FACTOR * phase.divergence
                       / (1.0 + _DIVERGENCE_CPI_FACTOR * phase.divergence)
                       + phase.branch_fraction)
    data_contrib = max(0.0, cpi - control_contrib - 1.0)
    mem_load_contrib = load_wait
    mem_other_contrib = store_wait
    if bandwidth_limited:
        # Queueing time beyond the raw latency shows up as extra memory
        # stalls; charge it proportionally to load/store traffic.
        extra = max(0.0, (1.0 / ipc_bandwidth - 1.0 / ipc_overlap)) * warps
        load_share = phase.load_fraction * l1_miss * l2_miss
        store_share = phase.store_fraction * 0.9 * l2_miss
        denom = load_share + store_share
        if denom > 0:
            mem_load_contrib += extra * load_share / denom
            mem_other_contrib += extra * store_share / denom
    sync_contrib = sync_wait
    contribs = (mem_load_contrib, mem_other_contrib, control_contrib,
                sync_contrib, data_contrib)
    contrib_sum = sum(contribs)

    if contrib_sum <= 0:
        parts = (0.0, 0.0, 0.0, 0.0, 0.0)
        idle = stall_total
    else:
        # `hidden` share: with ample warps much of the latency is
        # overlapped and shows up as *idle-free* issue; the observable
        # stall slots are distributed by contribution.
        parts = tuple(stall_total * c / contrib_sum * 0.92 for c in contribs)
        idle = stall_total - sum(parts)

    return ThroughputSolution(
        frequency_hz=frequency_hz,
        ipc=ipc,
        cycles_per_instruction=cycles_per_instruction,
        mem_latency_cycles=mem_latency,
        bandwidth_utilization=bandwidth_utilization,
        bandwidth_limited=bandwidth_limited,
        stall_mem_load=parts[0],
        stall_mem_other=parts[1],
        stall_control=parts[2],
        stall_sync=parts[3],
        stall_data=parts[4],
        stall_idle=max(0.0, idle),
    )


def _arch_solve_key(arch: GPUArchConfig) -> tuple:
    """The subset of architecture constants that determine a solve."""
    return (
        arch.issue_width,
        arch.max_warps_per_cluster,
        arch.l1_hit_latency_cycles,
        arch.l2_latency_ns,
        arch.dram_latency_ns,
        arch.cluster_bandwidth_bytes_per_s,
        arch.cache_line_bytes,
    )


def _phase_solve_key(phase: Phase) -> tuple:
    """The subset of phase fields that determine a solve."""
    mix = phase.mix
    return (
        phase.cpi_exec,
        phase.mlp,
        phase.l1_miss_rate,
        phase.l2_miss_rate,
        phase.active_warps,
        phase.divergence,
    ) + tuple(mix.get(cls, 0.0) for cls in INSTRUCTION_CLASSES)


class SolutionCache:
    """Memoises :func:`solve_throughput` results (plus a derived payload).

    The epoch engine solves the interval model once per quantum, yet its
    inputs are drawn from small discrete sets: the kernel's phase
    segments, the V/f table's frequencies, and the workload-position-
    indexed noise multiplier triples (deterministic per position, so a
    replay sees the exact same floats).  Replays of the same workload
    stretch — the datagen protocol replays every ~100 µs segment at all
    six operating points, plus feature-level variants — therefore
    re-solve identical inputs many times over.  Keys use the exact
    multiplier values rather than a rounded lattice: rounding the key
    but not the solve input would let near-miss inputs alias to one
    entry and break bit-identity between cached and uncached runs.

    The cache key is ``(arch key, phase key, frequency, warp/miss/cpi
    multipliers)`` where the arch/phase keys are derived from exactly
    the fields :func:`solve_throughput` reads.  Because the key captures
    *every* input bit-exactly, a hit returns the identical
    :class:`ThroughputSolution` the solver would have produced: cached
    and uncached simulations are bit-identical by construction.

    ``payload_builder(arch, phase, solution)``, when given, is evaluated
    once per miss and memoised alongside the solution — the cluster
    engine uses it to cache the per-instruction accumulation vector
    derived from each solution.
    """

    #: Entry budget; the cache is cleared wholesale when it fills
    #: (epoch-engine keys recur heavily, so anything smarter than a
    #: periodic flush buys nothing).
    DEFAULT_MAX_ENTRIES = 1 << 16

    def __init__(self, payload_builder=None,
                 max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries <= 0:
            raise SimulationError("cache max_entries must be positive")
        self.payload_builder = payload_builder
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: dict[tuple, tuple] = {}
        # id() -> (object, key): holding the object keeps its id from
        # being reused by a different arch/phase after garbage collection.
        self._arch_keys: dict[int, tuple] = {}
        self._phase_keys: dict[int, tuple] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def lookups(self) -> int:
        """Total solve requests served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop all memoised solutions (stats are kept)."""
        self._entries.clear()

    def export_entries(self) -> dict[tuple, tuple]:
        """Snapshot the memoised entries for transport to other caches.

        Keys are plain value tuples (derived from the arch/phase fields
        the solver reads, never object identities) and entries are
        ``(solution, payload)`` pairs, so the export pickles cleanly and
        imports into any cache regardless of which objects produced it.
        """
        return dict(self._entries)

    def import_entries(self, entries: dict[tuple, tuple]) -> int:
        """Warm this cache from another cache's :meth:`export_entries`.

        Because keys capture every solver input bit-exactly, imported
        entries can only ever turn misses into hits — they never change
        a solve result.  Imports respect ``max_entries``; the number of
        entries actually added is returned.
        """
        added = 0
        for key, entry in entries.items():
            if len(self._entries) >= self.max_entries:
                break
            if key not in self._entries:
                self._entries[key] = entry
                added += 1
        return added

    def _key_for(self, memo: dict, obj, derive) -> tuple:
        cached = memo.get(id(obj))
        if cached is not None and cached[0] is obj:
            return cached[1]
        key = derive(obj)
        memo[id(obj)] = (obj, key)
        return key

    def solve(self, arch: GPUArchConfig, phase: Phase, frequency_hz: float,
              warp_multiplier: float, miss_multiplier: float,
              cpi_multiplier: float) -> tuple:
        """Cached :func:`solve_throughput`; returns (solution, payload)."""
        key = (
            self._key_for(self._arch_keys, arch, _arch_solve_key),
            self._key_for(self._phase_keys, phase, _phase_solve_key),
            frequency_hz, warp_multiplier, miss_multiplier, cpi_multiplier,
        )
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            return entry
        self.misses += 1
        solution = solve_throughput(
            arch, phase, frequency_hz,
            warp_multiplier=warp_multiplier,
            miss_multiplier=miss_multiplier,
            cpi_multiplier=cpi_multiplier,
        )
        payload = (self.payload_builder(arch, phase, solution)
                   if self.payload_builder is not None else None)
        if len(self._entries) >= self.max_entries:
            self.evictions += len(self._entries)
            self._entries.clear()
        entry = (solution, payload)
        self._entries[key] = entry
        return entry


def frequency_sensitivity(arch: GPUArchConfig, phase: Phase,
                          frequency_from_hz: float,
                          frequency_to_hz: float) -> float:
    """Relative slowdown moving ``phase`` between two frequencies.

    Returns ``T(to) / T(from)`` for a fixed instruction count.  A value
    of 1.0 means the phase is completely frequency-insensitive
    (memory-bound); ``f_from / f_to`` is the fully compute-bound limit.
    """
    sol_from = solve_throughput(arch, phase, frequency_from_hz)
    sol_to = solve_throughput(arch, phase, frequency_to_hz)
    work = float(phase.instructions)
    return sol_to.time_for_instructions(work) / sol_from.time_for_instructions(work)
