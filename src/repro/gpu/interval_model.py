"""Interval (quantum) throughput model.

This is the analytical core of the GPGPU-Sim surrogate.  For a cluster
executing a stationary :class:`~repro.gpu.phases.Phase` at a given core
frequency, it computes sustained IPC and a stall-slot breakdown using
Hong–Kim-style MWP/CWP reasoning:

* A single warp completes one instruction every
  ``c_solo = cpi_exec_eff + m * L(f) / mlp`` cycles, where ``m`` is the
  memory-instruction fraction, ``L(f)`` the average memory latency in
  core cycles, and ``mlp`` the per-warp memory-level parallelism.
* ``W`` concurrent warps overlap their latencies, so the cluster issues
  ``min(issue_width, W / c_solo)`` instructions per cycle.
* DRAM bandwidth caps the achievable rate: miss traffic cannot exceed
  the cluster's fair share of DRAM bandwidth.

Because ``L(f)`` contains the memory-domain latency *in nanoseconds*
converted at the core clock, lowering the frequency shrinks the memory
wait measured in cycles: memory-bound phases lose almost no wall-clock
performance at low V/f points, which is exactly the headroom every DVFS
policy in the paper competes to exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from .arch import GPUArchConfig
from .phases import INSTRUCTION_CLASSES, Phase

#: Extra issue cost per unit of divergence, as a fraction of cpi_exec.
_DIVERGENCE_CPI_FACTOR = 0.6
#: Cycles of re-convergence / barrier wait charged per sync instruction.
_SYNC_COST_CYCLES = 8.0
#: Fraction of a store's miss latency that write buffering cannot hide.
_STORE_EXPOSURE = 0.45


@dataclass(frozen=True)
class ThroughputSolution:
    """Solved steady-state behaviour of one phase at one frequency.

    All per-instruction quantities are in core cycles at the solved
    frequency.  ``stall_*`` values are *issue-slot* counts per executed
    instruction, so ``issued + sum(stalls) == issue_width / ipc``.
    """

    frequency_hz: float
    ipc: float
    cycles_per_instruction: float
    mem_latency_cycles: float
    bandwidth_utilization: float
    bandwidth_limited: bool
    stall_mem_load: float
    stall_mem_other: float
    stall_control: float
    stall_sync: float
    stall_data: float
    stall_idle: float

    @property
    def stall_mem_total(self) -> float:
        """All memory-hazard stall slots per instruction."""
        return self.stall_mem_load + self.stall_mem_other

    @property
    def total_stall_slots(self) -> float:
        """All stall slots per instruction (every non-issued slot)."""
        return (self.stall_mem_load + self.stall_mem_other + self.stall_control
                + self.stall_sync + self.stall_data + self.stall_idle)

    def time_for_instructions(self, instructions: float) -> float:
        """Wall-clock seconds to execute ``instructions`` at this rate."""
        if instructions < 0:
            raise SimulationError("instruction count cannot be negative")
        cycles = instructions / self.ipc
        return cycles / self.frequency_hz

    def instructions_in_time(self, seconds: float) -> float:
        """Instructions executed in ``seconds`` at this rate."""
        if seconds < 0:
            raise SimulationError("time cannot be negative")
        return seconds * self.frequency_hz * self.ipc


def effective_cpi(phase: Phase, cpi_multiplier: float = 1.0) -> float:
    """Per-warp issue cost including divergence inflation."""
    base = phase.cpi_exec * cpi_multiplier
    return base * (1.0 + _DIVERGENCE_CPI_FACTOR * phase.divergence)


def solve_throughput(arch: GPUArchConfig, phase: Phase, frequency_hz: float,
                     *, warp_multiplier: float = 1.0,
                     miss_multiplier: float = 1.0,
                     cpi_multiplier: float = 1.0) -> ThroughputSolution:
    """Solve the steady-state throughput of ``phase`` at ``frequency_hz``.

    The three ``*_multiplier`` arguments inject behavioural jitter (from
    :class:`~repro.gpu.noise.AR1Jitter`); they default to the noiseless
    case.  Raises :class:`SimulationError` on non-physical inputs.
    """
    if frequency_hz <= 0:
        raise SimulationError(f"frequency must be positive, got {frequency_hz}")
    if min(warp_multiplier, miss_multiplier, cpi_multiplier) <= 0:
        raise SimulationError("jitter multipliers must be positive")

    warps = min(arch.max_warps_per_cluster,
                max(1.0, phase.active_warps * warp_multiplier))
    l1_miss = min(1.0, phase.l1_miss_rate * miss_multiplier)
    l2_miss = min(1.0, phase.l2_miss_rate)
    cpi = effective_cpi(phase, cpi_multiplier)

    mem_latency = arch.memory_latency_cycles(l1_miss, l2_miss, frequency_hz)
    load_wait = phase.load_fraction * mem_latency / phase.mlp
    store_wait = (phase.store_fraction * mem_latency * _STORE_EXPOSURE
                  / phase.mlp)
    sync_wait = phase.mix.get("sync", 0.0) * _SYNC_COST_CYCLES
    c_solo = cpi + load_wait + store_wait + sync_wait

    ipc_overlap = min(arch.issue_width, warps / c_solo)

    # DRAM bandwidth cap: only traffic that misses L2 reaches DRAM.
    # Loads miss L1 then L2; ~90 % of global stores write through L1
    # (see cluster accounting) and miss L2 at the phase's L2 miss rate.
    bytes_per_inst = (phase.load_fraction * l1_miss * l2_miss
                      + phase.store_fraction * 0.9 * l2_miss
                      ) * arch.cache_line_bytes
    if bytes_per_inst > 0:
        ipc_bandwidth = (arch.cluster_bandwidth_bytes_per_s
                         / (frequency_hz * bytes_per_inst))
    else:
        ipc_bandwidth = float("inf")

    bandwidth_limited = ipc_bandwidth < ipc_overlap
    ipc = max(1e-9, min(ipc_overlap, ipc_bandwidth))
    cycles_per_instruction = 1.0 / ipc

    traffic = ipc * frequency_hz * bytes_per_inst
    bandwidth_utilization = min(1.0, traffic / arch.cluster_bandwidth_bytes_per_s)

    # --- stall-slot attribution -------------------------------------
    # Total issue slots consumed per executed instruction:
    slots_per_inst = arch.issue_width * cycles_per_instruction
    stall_total = max(0.0, slots_per_inst - 1.0)

    control_contrib = (cpi * _DIVERGENCE_CPI_FACTOR * phase.divergence
                       / (1.0 + _DIVERGENCE_CPI_FACTOR * phase.divergence)
                       + phase.branch_fraction)
    data_contrib = max(0.0, cpi - control_contrib - 1.0)
    mem_load_contrib = load_wait
    mem_other_contrib = store_wait
    if bandwidth_limited:
        # Queueing time beyond the raw latency shows up as extra memory
        # stalls; charge it proportionally to load/store traffic.
        extra = max(0.0, (1.0 / ipc_bandwidth - 1.0 / ipc_overlap)) * warps
        load_share = phase.load_fraction * l1_miss * l2_miss
        store_share = phase.store_fraction * 0.9 * l2_miss
        denom = load_share + store_share
        if denom > 0:
            mem_load_contrib += extra * load_share / denom
            mem_other_contrib += extra * store_share / denom
    sync_contrib = sync_wait
    contribs = (mem_load_contrib, mem_other_contrib, control_contrib,
                sync_contrib, data_contrib)
    contrib_sum = sum(contribs)

    if contrib_sum <= 0:
        parts = (0.0, 0.0, 0.0, 0.0, 0.0)
        idle = stall_total
    else:
        # `hidden` share: with ample warps much of the latency is
        # overlapped and shows up as *idle-free* issue; the observable
        # stall slots are distributed by contribution.
        parts = tuple(stall_total * c / contrib_sum * 0.92 for c in contribs)
        idle = stall_total - sum(parts)

    return ThroughputSolution(
        frequency_hz=frequency_hz,
        ipc=ipc,
        cycles_per_instruction=cycles_per_instruction,
        mem_latency_cycles=mem_latency,
        bandwidth_utilization=bandwidth_utilization,
        bandwidth_limited=bandwidth_limited,
        stall_mem_load=parts[0],
        stall_mem_other=parts[1],
        stall_control=parts[2],
        stall_sync=parts[3],
        stall_data=parts[4],
        stall_idle=max(0.0, idle),
    )


# ---------------------------------------------------------------------------
# Batched (vectorised) solver
# ---------------------------------------------------------------------------
#: Column layout of a *phase-parameter row*: every phase field the
#: solver (and the per-instruction activity row) reads, flattened to
#: float64 so a stack of phases becomes a ``(n, NUM_PHASE_PARAMS)``
#: matrix that :func:`solve_throughput_batch` consumes directly.
PP_CPI_EXEC = 0
PP_MLP = 1
PP_L1_MISS = 2
PP_L2_MISS = 3
PP_ACTIVE_WARPS = 4
PP_DIVERGENCE = 5
PP_INSTRUCTIONS = 6
PP_LOAD_FRAC = 7
PP_STORE_FRAC = 8
PP_BRANCH_FRAC = 9
PP_SYNC_FRAC = 10
PP_CLASS0 = 11                     # 9 instruction classes: columns 11..19
NUM_PHASE_PARAMS = PP_CLASS0 + len(INSTRUCTION_CLASSES)

PP_CLASS_SLICE = slice(PP_CLASS0, PP_CLASS0 + len(INSTRUCTION_CLASSES))

#: id() -> (phase, row): holding the phase pins its id, exactly like the
#: SolutionCache key memos.  Bounded: cleared wholesale when it grows
#: past a few thousand distinct phase objects.
_PHASE_PARAM_ROWS: dict[int, tuple] = {}
_PHASE_PARAM_ROWS_MAX = 4096


def phase_params_row(phase: Phase) -> np.ndarray:
    """The phase's solver inputs as one float64 row (memoised, read-only
    by convention)."""
    cached = _PHASE_PARAM_ROWS.get(id(phase))
    if cached is not None and cached[0] is phase:
        return cached[1]
    row = np.empty(NUM_PHASE_PARAMS, dtype=np.float64)
    mix = phase.mix
    row[PP_CPI_EXEC] = phase.cpi_exec
    row[PP_MLP] = phase.mlp
    row[PP_L1_MISS] = phase.l1_miss_rate
    row[PP_L2_MISS] = phase.l2_miss_rate
    row[PP_ACTIVE_WARPS] = phase.active_warps
    row[PP_DIVERGENCE] = phase.divergence
    row[PP_INSTRUCTIONS] = phase.instructions
    row[PP_LOAD_FRAC] = phase.load_fraction
    row[PP_STORE_FRAC] = phase.store_fraction
    row[PP_BRANCH_FRAC] = phase.branch_fraction
    row[PP_SYNC_FRAC] = mix.get("sync", 0.0)
    for offset, cls in enumerate(INSTRUCTION_CLASSES):
        row[PP_CLASS0 + offset] = mix.get(cls, 0.0)
    if len(_PHASE_PARAM_ROWS) >= _PHASE_PARAM_ROWS_MAX:
        _PHASE_PARAM_ROWS.clear()
    _PHASE_PARAM_ROWS[id(phase)] = (phase, row)
    return row


@dataclass
class BatchSolution:
    """Struct-of-arrays result of :func:`solve_throughput_batch`.

    Each field is a ``(n,)`` array; element ``j`` is bit-identical to
    the corresponding :class:`ThroughputSolution` field the scalar
    solver returns for input ``j``.
    """

    frequency_hz: np.ndarray
    ipc: np.ndarray
    cycles_per_instruction: np.ndarray
    mem_latency_cycles: np.ndarray
    bandwidth_utilization: np.ndarray
    bandwidth_limited: np.ndarray
    stall_mem_load: np.ndarray
    stall_mem_other: np.ndarray
    stall_control: np.ndarray
    stall_sync: np.ndarray
    stall_data: np.ndarray
    stall_idle: np.ndarray

    def solution_at(self, index: int) -> ThroughputSolution:
        """Materialise element ``index`` as a scalar solution object."""
        return ThroughputSolution(
            frequency_hz=float(self.frequency_hz[index]),
            ipc=float(self.ipc[index]),
            cycles_per_instruction=float(self.cycles_per_instruction[index]),
            mem_latency_cycles=float(self.mem_latency_cycles[index]),
            bandwidth_utilization=float(self.bandwidth_utilization[index]),
            bandwidth_limited=bool(self.bandwidth_limited[index]),
            stall_mem_load=float(self.stall_mem_load[index]),
            stall_mem_other=float(self.stall_mem_other[index]),
            stall_control=float(self.stall_control[index]),
            stall_sync=float(self.stall_sync[index]),
            stall_data=float(self.stall_data[index]),
            stall_idle=float(self.stall_idle[index]),
        )


def solve_throughput_batch(arch: GPUArchConfig, params: np.ndarray,
                           frequency_hz: np.ndarray,
                           warp_multiplier: np.ndarray,
                           miss_multiplier: np.ndarray,
                           cpi_multiplier: np.ndarray) -> BatchSolution:
    """Vectorised :func:`solve_throughput` over a stack of solve inputs.

    ``params`` is a ``(n, NUM_PHASE_PARAMS)`` matrix of
    :func:`phase_params_row` rows; the other arguments are ``(n,)``
    arrays.  Every element of the result is bit-identical to the scalar
    solver because each intermediate replicates the scalar expression's
    operand order exactly: IEEE-754 elementwise add/sub/mul/div/min/max
    are correctly rounded, so an array op applies the *same* rounding
    per element as the equivalent chain of Python float ops.  (There are
    no reductions or matrix products here — those are the only numpy
    stages whose grouping can differ from scalar evaluation.)
    """
    p = np.asarray(params, dtype=np.float64)
    f = np.asarray(frequency_hz, dtype=np.float64)
    wm = np.asarray(warp_multiplier, dtype=np.float64)
    mm = np.asarray(miss_multiplier, dtype=np.float64)
    cm = np.asarray(cpi_multiplier, dtype=np.float64)
    if p.ndim != 2 or p.shape[1] != NUM_PHASE_PARAMS:
        raise SimulationError(
            f"expected params of shape (n, {NUM_PHASE_PARAMS}), got {p.shape}")
    if f.size and f.min() <= 0:
        raise SimulationError("frequency must be positive")
    if wm.size and min(wm.min(), mm.min(), cm.min()) <= 0:
        raise SimulationError("jitter multipliers must be positive")

    warps = np.minimum(float(arch.max_warps_per_cluster),
                       np.maximum(1.0, p[:, PP_ACTIVE_WARPS] * wm))
    l1_miss = np.minimum(1.0, p[:, PP_L1_MISS] * mm)
    l2_miss = np.minimum(1.0, p[:, PP_L2_MISS])
    div_term = 1.0 + _DIVERGENCE_CPI_FACTOR * p[:, PP_DIVERGENCE]
    cpi = (p[:, PP_CPI_EXEC] * cm) * div_term

    beyond_l1_ns = arch.l2_latency_ns + l2_miss * arch.dram_latency_ns
    beyond_l1_cycles = beyond_l1_ns * 1e-9 * f
    mem_latency = arch.l1_hit_latency_cycles + l1_miss * beyond_l1_cycles
    load_wait = p[:, PP_LOAD_FRAC] * mem_latency / p[:, PP_MLP]
    store_wait = (p[:, PP_STORE_FRAC] * mem_latency * _STORE_EXPOSURE
                  / p[:, PP_MLP])
    sync_wait = p[:, PP_SYNC_FRAC] * _SYNC_COST_CYCLES
    c_solo = cpi + load_wait + store_wait + sync_wait

    ipc_overlap = np.minimum(float(arch.issue_width), warps / c_solo)

    load_share = p[:, PP_LOAD_FRAC] * l1_miss * l2_miss
    store_share = p[:, PP_STORE_FRAC] * 0.9 * l2_miss
    bytes_per_inst = (load_share + store_share) * arch.cache_line_bytes
    has_bytes = bytes_per_inst > 0
    safe_bw_denom = np.where(has_bytes, f * bytes_per_inst, 1.0)
    ipc_bandwidth = np.where(
        has_bytes, arch.cluster_bandwidth_bytes_per_s / safe_bw_denom, np.inf)

    bandwidth_limited = ipc_bandwidth < ipc_overlap
    ipc = np.maximum(1e-9, np.minimum(ipc_overlap, ipc_bandwidth))
    cycles_per_instruction = 1.0 / ipc

    traffic = ipc * f * bytes_per_inst
    bandwidth_utilization = np.minimum(
        1.0, traffic / arch.cluster_bandwidth_bytes_per_s)

    slots_per_inst = arch.issue_width * cycles_per_instruction
    stall_total = np.maximum(0.0, slots_per_inst - 1.0)

    control_contrib = (cpi * _DIVERGENCE_CPI_FACTOR * p[:, PP_DIVERGENCE]
                       / div_term + p[:, PP_BRANCH_FRAC])
    data_contrib = np.maximum(0.0, cpi - control_contrib - 1.0)
    # 1/inf == 0.0 exactly, so the unlimited elements contribute no
    # queueing term and the mask below discards them anyway.
    extra = np.maximum(0.0, 1.0 / ipc_bandwidth - 1.0 / ipc_overlap) * warps
    denom = load_share + store_share
    limited = bandwidth_limited & (denom > 0)
    safe_denom = np.where(limited, denom, 1.0)
    mem_load_contrib = np.where(
        limited, load_wait + extra * load_share / safe_denom, load_wait)
    mem_other_contrib = np.where(
        limited, store_wait + extra * store_share / safe_denom, store_wait)
    sync_contrib = sync_wait
    contrib_sum = (mem_load_contrib + mem_other_contrib + control_contrib
                   + sync_contrib + data_contrib)

    positive = contrib_sum > 0
    safe_sum = np.where(positive, contrib_sum, 1.0)
    part_mem_load = np.where(
        positive, stall_total * mem_load_contrib / safe_sum * 0.92, 0.0)
    part_mem_other = np.where(
        positive, stall_total * mem_other_contrib / safe_sum * 0.92, 0.0)
    part_control = np.where(
        positive, stall_total * control_contrib / safe_sum * 0.92, 0.0)
    part_sync = np.where(
        positive, stall_total * sync_contrib / safe_sum * 0.92, 0.0)
    part_data = np.where(
        positive, stall_total * data_contrib / safe_sum * 0.92, 0.0)
    idle = np.where(
        positive,
        stall_total - (part_mem_load + part_mem_other + part_control
                       + part_sync + part_data),
        stall_total)

    return BatchSolution(
        frequency_hz=f,
        ipc=ipc,
        cycles_per_instruction=cycles_per_instruction,
        mem_latency_cycles=mem_latency,
        bandwidth_utilization=bandwidth_utilization,
        bandwidth_limited=bandwidth_limited,
        stall_mem_load=part_mem_load,
        stall_mem_other=part_mem_other,
        stall_control=part_control,
        stall_sync=part_sync,
        stall_data=part_data,
        stall_idle=np.maximum(0.0, idle),
    )


def _arch_solve_key(arch: GPUArchConfig) -> tuple:
    """The subset of architecture constants that determine a solve."""
    return (
        arch.issue_width,
        arch.max_warps_per_cluster,
        arch.l1_hit_latency_cycles,
        arch.l2_latency_ns,
        arch.dram_latency_ns,
        arch.cluster_bandwidth_bytes_per_s,
        arch.cache_line_bytes,
    )


def _phase_solve_key(phase: Phase) -> tuple:
    """The subset of phase fields that determine a solve."""
    mix = phase.mix
    return (
        phase.cpi_exec,
        phase.mlp,
        phase.l1_miss_rate,
        phase.l2_miss_rate,
        phase.active_warps,
        phase.divergence,
    ) + tuple(mix.get(cls, 0.0) for cls in INSTRUCTION_CLASSES)


#: Process-local interning of the derived arch/phase key tuples.  Cache
#: keys embed the *interned id* (a small int) instead of the 7/21-float
#: tuple itself: the epoch engine hashes a cache key per quantum, and
#: hashing two nested float tuples dominates the dict costs on the hot
#: path, while an int id hashes for free.  The registry is append-only
#: and bijective for the life of the process (a handful of arch/phase
#: values exist per run), so ids translate back to value tuples on
#: export and forward again on import — cross-process transport still
#: moves plain value tuples.
_SOLVE_KEY_IDS: dict[tuple, int] = {}
_SOLVE_KEY_TUPLES: list[tuple] = []


def intern_solve_key(key: tuple) -> int:
    """Return the process-local id of a derived arch/phase key tuple."""
    kid = _SOLVE_KEY_IDS.get(key)
    if kid is None:
        kid = len(_SOLVE_KEY_TUPLES)
        _SOLVE_KEY_IDS[key] = kid
        _SOLVE_KEY_TUPLES.append(key)
    return kid


#: Module-level id-pinned memos for the interned key ids, shared by
#: every cache (ids intern by value, so which memo derived them is
#: irrelevant — equal objects produce equal ids).  The batch engine
#: uses these to key clusters that may carry *different* cache objects.
_ARCH_KEY_MEMO: dict[int, tuple] = {}
_PHASE_KEY_MEMO: dict[int, tuple] = {}
_KEY_MEMO_MAX = 4096


def arch_solve_key_cached(arch: GPUArchConfig) -> int:
    """Memoised, interned :func:`_arch_solve_key` (id-pinned)."""
    cached = _ARCH_KEY_MEMO.get(id(arch))
    if cached is not None and cached[0] is arch:
        return cached[1]
    key = intern_solve_key(_arch_solve_key(arch))
    if len(_ARCH_KEY_MEMO) >= _KEY_MEMO_MAX:
        _ARCH_KEY_MEMO.clear()
    _ARCH_KEY_MEMO[id(arch)] = (arch, key)
    return key


def phase_solve_key_cached(phase: Phase) -> int:
    """Memoised, interned :func:`_phase_solve_key` (id-pinned)."""
    cached = _PHASE_KEY_MEMO.get(id(phase))
    if cached is not None and cached[0] is phase:
        return cached[1]
    key = intern_solve_key(_phase_solve_key(phase))
    if len(_PHASE_KEY_MEMO) >= _KEY_MEMO_MAX:
        _PHASE_KEY_MEMO.clear()
    _PHASE_KEY_MEMO[id(phase)] = (phase, key)
    return key


class SolutionCache:
    """Memoises :func:`solve_throughput` results (plus a derived payload).

    The epoch engine solves the interval model once per quantum, yet its
    inputs are drawn from small discrete sets: the kernel's phase
    segments, the V/f table's frequencies, and the workload-position-
    indexed noise multiplier triples (deterministic per position, so a
    replay sees the exact same floats).  Replays of the same workload
    stretch — the datagen protocol replays every ~100 µs segment at all
    six operating points, plus feature-level variants — therefore
    re-solve identical inputs many times over.  Keys use the exact
    multiplier values rather than a rounded lattice: rounding the key
    but not the solve input would let near-miss inputs alias to one
    entry and break bit-identity between cached and uncached runs.

    The cache key is ``(arch key, phase key, frequency, warp/miss/cpi
    multipliers)`` where the arch/phase keys are derived from exactly
    the fields :func:`solve_throughput` reads (stored as interned ids —
    see :func:`intern_solve_key` — so the per-quantum hash touches two
    ints and four floats instead of ~28 nested floats).  Because the
    key captures *every* input bit-exactly, a hit returns the identical
    :class:`ThroughputSolution` the solver would have produced: cached
    and uncached simulations are bit-identical by construction.

    ``payload_builder(arch, phase, solution)``, when given, is evaluated
    once per miss and memoised alongside the solution — the cluster
    engine uses it to cache the per-instruction accumulation vector
    derived from each solution.
    """

    #: Entry budget; the cache is cleared wholesale when it fills
    #: (epoch-engine keys recur heavily, so anything smarter than a
    #: periodic flush buys nothing).
    DEFAULT_MAX_ENTRIES = 1 << 16

    def __init__(self, payload_builder=None,
                 max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries <= 0:
            raise SimulationError("cache max_entries must be positive")
        self.payload_builder = payload_builder
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Batched-lookup slices of the hit/miss totals (probe_batch also
        # counts into hits/misses, so hit_rate covers both paths).
        self.batch_hits = 0
        self.batch_misses = 0
        self._entries: dict[tuple, tuple] = {}
        # id() -> (object, key): holding the object keeps its id from
        # being reused by a different arch/phase after garbage collection.
        self._arch_keys: dict[int, tuple] = {}
        self._phase_keys: dict[int, tuple] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def lookups(self) -> int:
        """Total solve requests served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop all memoised solutions (stats are kept)."""
        self._entries.clear()

    def export_entries(self) -> dict[tuple, tuple]:
        """Snapshot the memoised entries for transport to other caches.

        Exported keys are plain value tuples (the interned arch/phase
        ids are translated back to the tuples they intern, never object
        identities or process-local ids) and entries are ``(solution,
        payload)`` pairs, so the export pickles cleanly and imports into
        any cache regardless of which objects — or process — produced
        it.  Batch-stored entries keep their solution lazy (a reference
        into the batch result) until first scalar use; the export
        materialises them so importers receive plain solution objects.
        Probe slots an aborted batch left unfilled are skipped.
        """
        tuples = _SOLVE_KEY_TUPLES
        out: dict[tuple, tuple] = {}
        for key, entry in self._entries.items():
            solution = entry[0]
            if solution is None:
                continue
            if type(solution) is tuple:
                batch, j = solution
                solution = batch.solution_at(j)
                entry[0] = solution
            out[(tuples[key[0]], tuples[key[1]]) + key[2:]] = (
                solution, entry[1])
        return out

    def import_entries(self, entries: dict[tuple, tuple]) -> int:
        """Warm this cache from another cache's :meth:`export_entries`.

        Because keys capture every solver input bit-exactly, imported
        entries can only ever turn misses into hits — they never change
        a solve result.  The exported value-tuple keys are re-interned
        into this process's ids.  Imports respect ``max_entries``; the
        number of entries actually added is returned.
        """
        added = 0
        for key, entry in entries.items():
            if len(self._entries) >= self.max_entries:
                break
            ikey = (intern_solve_key(key[0]),
                    intern_solve_key(key[1])) + key[2:]
            if ikey not in self._entries:
                self._entries[ikey] = entry
                added += 1
        return added

    def _key_for(self, memo: dict, obj, derive) -> int:
        cached = memo.get(id(obj))
        if cached is not None and cached[0] is obj:
            return cached[1]
        key = intern_solve_key(derive(obj))
        memo[id(obj)] = (obj, key)
        return key

    def solve(self, arch: GPUArchConfig, phase: Phase, frequency_hz: float,
              warp_multiplier: float, miss_multiplier: float,
              cpi_multiplier: float) -> tuple:
        """Cached :func:`solve_throughput`; returns (solution, payload)."""
        key = (
            self._key_for(self._arch_keys, arch, _arch_solve_key),
            self._key_for(self._phase_keys, phase, _phase_solve_key),
            frequency_hz, warp_multiplier, miss_multiplier, cpi_multiplier,
        )
        entry = self._entries.get(key)
        if entry is not None and entry[0] is not None:
            self.hits += 1
            solution = entry[0]
            if type(solution) is tuple:
                # Batch-stored entry: materialise the scalar solution on
                # first scalar use and rewrite the (mutable) entry.
                batch, j = solution
                solution = batch.solution_at(j)
                entry[0] = solution
            return (solution, entry[1])
        # entry[0] is None marks a probe slot an aborted batch never
        # filled — fall through and overwrite it with a real solve.
        self.misses += 1
        solution = solve_throughput(
            arch, phase, frequency_hz,
            warp_multiplier=warp_multiplier,
            miss_multiplier=miss_multiplier,
            cpi_multiplier=cpi_multiplier,
        )
        payload = (self.payload_builder(arch, phase, solution)
                   if self.payload_builder is not None else None)
        if len(self._entries) >= self.max_entries:
            self.evictions += len(self._entries)
            self._entries.clear()
        entry = (solution, payload)
        self._entries[key] = entry
        return entry

    # ------------------------------------------------------------------
    # Batched lookups (vectorised quantum kernel)
    # ------------------------------------------------------------------
    def probe_batch(self, keys: list, out: np.ndarray) -> list:
        """Copy the payload rows of cached ``keys`` into ``out`` rows.

        ``keys`` are full solve keys (as built from
        :func:`arch_solve_key_cached` / :func:`phase_solve_key_cached`
        plus the exact frequency/multiplier floats — value-equal to the
        keys :meth:`solve` builds, so scalar and batched lookups share
        entries).  Returns ``(index, slot)`` pairs for the keys that
        missed; the caller solves those in one batch and hands the list
        back to :meth:`store_batch`.  Each miss *pre-inserts* an empty
        ``[None, None]`` slot that store fills in place — the key is
        hashed exactly once per miss instead of once to probe and again
        to store.  A pending slot re-encountered before its fill (a
        duplicate key within one wave, or a slot left behind by an
        aborted batch) counts as a fresh miss and is simply re-solved.
        Only valid when the memoised payload is a row of ``out``'s
        width (the quantum-row payload builder).
        """
        entries = self._entries
        max_entries = self.max_entries
        missing: list = []
        append = missing.append
        for index, key in enumerate(keys):
            entry = entries.get(key)
            if entry is None:
                if len(entries) >= max_entries:
                    self.evictions += len(entries)
                    entries.clear()
                slot = [None, None]
                entries[key] = slot
                append((index, slot))
            elif entry[0] is None:
                append((index, entry))
            else:
                out[index] = entry[1]
        hit_count = len(keys) - len(missing)
        self.hits += hit_count
        self.batch_hits += hit_count
        self.misses += len(missing)
        self.batch_misses += len(missing)
        return missing

    def store_batch(self, missing: list, solutions: BatchSolution,
                    rows: np.ndarray) -> None:
        """Fill the probe slots of a batch-solved miss set.

        ``missing`` is :meth:`probe_batch`'s return value; element ``j``
        of ``solutions`` and ``rows[j]`` must describe the solve for the
        ``j``-th missing key.  ``rows`` must match what
        ``payload_builder`` would produce per element, so scalar hits on
        these entries see the exact payload they would have built.
        Counting and capacity eviction happened in :meth:`probe_batch`;
        this only fills the pre-inserted slots (no key hashing at all).
        The scalar solution is stored *lazily* as a ``(solutions, j)``
        reference — batched stepping only ever reads the payload row, so
        materialising a solution object per miss would be pure overhead;
        :meth:`solve` and :meth:`export_entries` materialise on first
        scalar use (``solution_at`` is bit-exact, so laziness is
        invisible to results).
        """
        for j, (_, slot) in enumerate(missing):
            slot[0] = (solutions, j)
            slot[1] = rows[j]


def frequency_sensitivity(arch: GPUArchConfig, phase: Phase,
                          frequency_from_hz: float,
                          frequency_to_hz: float) -> float:
    """Relative slowdown moving ``phase`` between two frequencies.

    Returns ``T(to) / T(from)`` for a fixed instruction count.  A value
    of 1.0 means the phase is completely frequency-insensitive
    (memory-bound); ``f_from / f_to`` is the fully compute-bound limit.
    """
    sol_from = solve_throughput(arch, phase, frequency_from_hz)
    sol_to = solve_throughput(arch, phase, frequency_to_hz)
    work = float(phase.instructions)
    return sol_to.time_for_instructions(work) / sol_from.time_for_instructions(work)
