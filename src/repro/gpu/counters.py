"""Performance counters.

The paper's data-generation step collects **47 performance counters**
per feature-collection window, grouped into instruction metrics,
execution-stall metrics and power metrics (§III-B).  This module pins
down the exact counter schema the simulator produces and the feature
pipeline consumes.

Counter values are *raw per-epoch* quantities (counts, slot counts,
joules); normalisation (per-cycle, per-instruction) happens in
:mod:`repro.datagen.features` so the raw record stays faithful to what
a hardware counter file would contain.
"""

from __future__ import annotations

from enum import Enum
from typing import Mapping

import numpy as np

from ..errors import SimulationError


class CounterCategory(Enum):
    """Fine-grained counter grouping used by the feature pipeline."""

    INSTRUCTION = "instruction"
    STALL = "stall"
    CACHE = "cache"
    OCCUPANCY = "occupancy"
    POWER = "power"


#: The full 47-counter schema: name -> fine-grained category.
COUNTER_SCHEMA: dict[str, CounterCategory] = {
    # --- instruction metrics (17) -----------------------------------
    "inst_total": CounterCategory.INSTRUCTION,
    "ipc": CounterCategory.INSTRUCTION,
    "inst_fp32": CounterCategory.INSTRUCTION,
    "inst_fp64": CounterCategory.INSTRUCTION,
    "inst_int": CounterCategory.INSTRUCTION,
    "inst_sfu": CounterCategory.INSTRUCTION,
    "inst_load": CounterCategory.INSTRUCTION,
    "inst_store": CounterCategory.INSTRUCTION,
    "inst_shared": CounterCategory.INSTRUCTION,
    "inst_branch": CounterCategory.INSTRUCTION,
    "inst_sync": CounterCategory.INSTRUCTION,
    "frac_fp32": CounterCategory.INSTRUCTION,
    "frac_fp64": CounterCategory.INSTRUCTION,
    "frac_mem": CounterCategory.INSTRUCTION,
    "frac_branch": CounterCategory.INSTRUCTION,
    "inst_per_warp": CounterCategory.INSTRUCTION,
    "issue_slots": CounterCategory.INSTRUCTION,
    # --- execution stall metrics (13) -------------------------------
    "stall_total": CounterCategory.STALL,
    "stall_mem_hazard": CounterCategory.STALL,
    "stall_mem_hazard_load": CounterCategory.STALL,
    "stall_mem_hazard_nonload": CounterCategory.STALL,
    "stall_control": CounterCategory.STALL,
    "stall_sync": CounterCategory.STALL,
    "stall_data": CounterCategory.STALL,
    "stall_idle": CounterCategory.STALL,
    "frac_stall_mem": CounterCategory.STALL,
    "frac_stall_control": CounterCategory.STALL,
    "avg_mem_latency": CounterCategory.STALL,
    "eligible_warps": CounterCategory.STALL,
    "warp_issue_efficiency": CounterCategory.STALL,
    # --- cache metrics (10) ------------------------------------------
    "l1_read_access": CounterCategory.CACHE,
    "l1_read_hit": CounterCategory.CACHE,
    "l1_read_miss": CounterCategory.CACHE,
    "l1_read_miss_rate": CounterCategory.CACHE,
    "l1_write_access": CounterCategory.CACHE,
    "l1_write_miss": CounterCategory.CACHE,
    "l2_access": CounterCategory.CACHE,
    "l2_miss": CounterCategory.CACHE,
    "l2_miss_rate": CounterCategory.CACHE,
    "dram_bytes": CounterCategory.CACHE,
    # --- occupancy metrics (3) ---------------------------------------
    "active_warps": CounterCategory.OCCUPANCY,
    "occupancy": CounterCategory.OCCUPANCY,
    "bandwidth_utilization": CounterCategory.OCCUPANCY,
    # --- power metrics (4) -------------------------------------------
    "power_per_core": CounterCategory.POWER,
    "power_dynamic": CounterCategory.POWER,
    "power_static": CounterCategory.POWER,
    "energy_epoch": CounterCategory.POWER,
}

#: Ordered counter names (the canonical vectorisation order).
COUNTER_NAMES: tuple[str, ...] = tuple(COUNTER_SCHEMA)

#: Number of counters — the paper collects 47 (§III-B).
NUM_COUNTERS = len(COUNTER_NAMES)

#: Paper Table I short names for the headline counters.
PAPER_ALIASES = {
    "IPC": "ipc",
    "PPC": "power_per_core",
    "MH": "stall_mem_hazard",
    "MH\\L": "stall_mem_hazard_nonload",
    "L1CRM": "l1_read_miss",
}

#: Counters whose value directly expresses power (the paper's "direct
#: features"); everything else is an indirect feature (§III-B).
DIRECT_FEATURE_NAMES: tuple[str, ...] = tuple(
    name for name, cat in COUNTER_SCHEMA.items() if cat is CounterCategory.POWER
)

INDIRECT_FEATURE_NAMES: tuple[str, ...] = tuple(
    name for name, cat in COUNTER_SCHEMA.items()
    if cat is not CounterCategory.POWER
)


def paper_category(name: str) -> str:
    """Map a counter to the paper's three-way categorisation.

    Instruction metrics absorb occupancy; execution-stall metrics absorb
    cache hit/miss counters ("Execution stall metrics cover control
    hazards, memory hazards, and cache hit/miss rates", §III-B).
    """
    category = COUNTER_SCHEMA.get(name)
    if category is None:
        raise SimulationError(f"unknown counter {name!r}")
    if category in (CounterCategory.INSTRUCTION, CounterCategory.OCCUPANCY):
        return "instruction"
    if category in (CounterCategory.STALL, CounterCategory.CACHE):
        return "stall"
    return "power"


#: Counter name -> vector slot, shared by every :class:`CounterSet`.
COUNTER_INDEX: dict[str, int] = {name: index
                                 for index, name in enumerate(COUNTER_NAMES)}


class CounterSet:
    """One epoch's worth of counters for one cluster.

    Behaves like a read-mostly mapping with a fixed schema.  Missing
    counters default to zero so partially instrumented code paths (the
    detailed model instruments fewer events) still produce valid sets.

    Values live in one float64 vector in :data:`COUNTER_NAMES` order, so
    vectorising a set (or a stack of sets) is a copy, not 47 dict
    lookups.  The mapping-style interface is unchanged.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[str, float] | np.ndarray | None = None
                 ) -> None:
        if values is None:
            self._values = np.zeros(NUM_COUNTERS, dtype=np.float64)
        elif isinstance(values, np.ndarray):
            if values.shape != (NUM_COUNTERS,):
                raise SimulationError(
                    f"counter vector must have shape ({NUM_COUNTERS},), "
                    f"got {values.shape}"
                )
            self._values = values.astype(np.float64)
        else:
            unknown = set(values) - set(COUNTER_SCHEMA)
            if unknown:
                raise SimulationError(f"unknown counters: {sorted(unknown)}")
            self._values = np.zeros(NUM_COUNTERS, dtype=np.float64)
            for name, value in values.items():
                self._values[COUNTER_INDEX[name]] = float(value)

    @classmethod
    def from_vector(cls, vector: np.ndarray) -> "CounterSet":
        """Wrap a full counter vector (adopted, not copied)."""
        if vector.shape != (NUM_COUNTERS,):
            raise SimulationError(
                f"counter vector must have shape ({NUM_COUNTERS},), "
                f"got {vector.shape}"
            )
        instance = cls.__new__(cls)
        instance._values = np.ascontiguousarray(vector, dtype=np.float64)
        return instance

    @property
    def values(self) -> dict[str, float]:
        """Dict view of the non-zero counters (compatibility helper)."""
        return {name: float(value)
                for name, value in zip(COUNTER_NAMES, self._values)
                if value != 0.0}

    def __getitem__(self, name: str) -> float:
        index = COUNTER_INDEX.get(name)
        if index is None:
            raise SimulationError(f"unknown counter {name!r}")
        return float(self._values[index])

    def __setitem__(self, name: str, value: float) -> None:
        index = COUNTER_INDEX.get(name)
        if index is None:
            raise SimulationError(f"unknown counter {name!r}")
        self._values[index] = float(value)

    def __contains__(self, name: str) -> bool:
        return name in COUNTER_SCHEMA

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CounterSet):
            return NotImplemented
        return bool(np.array_equal(self._values, other._values))

    def __repr__(self) -> str:
        return f"CounterSet({self.values!r})"

    # Old pickles (and cross-version worker payloads) carry the dict
    # state of the former dataclass; accept both representations.
    def __getstate__(self) -> np.ndarray:
        return self._values

    def __setstate__(self, state) -> None:
        if isinstance(state, dict):
            if "_values" in state:
                state = state["_values"]
            else:
                state = CounterSet(state.get("values", {}))._values
        self._values = np.asarray(state, dtype=np.float64)

    def as_vector(self, names: tuple[str, ...] = COUNTER_NAMES) -> np.ndarray:
        """Vectorise the selected counters in the given order."""
        if names is COUNTER_NAMES:
            return self._values.copy()
        try:
            indices = [COUNTER_INDEX[name] for name in names]
        except KeyError as exc:
            raise SimulationError(f"unknown counter {exc.args[0]!r}") from exc
        return self._values[indices]

    def copy(self) -> "CounterSet":
        """Independent copy."""
        return CounterSet.from_vector(self._values.copy())

    @staticmethod
    def stack(sets: list["CounterSet"]) -> np.ndarray:
        """Stack many sets into an ``(n, NUM_COUNTERS)`` matrix."""
        if not sets:
            raise SimulationError("cannot stack an empty counter list")
        return np.stack([s._values for s in sets])

    @staticmethod
    def average(sets: list["CounterSet"]) -> "CounterSet":
        """Element-wise mean across clusters (the per-GPU counter view)."""
        if not sets:
            raise SimulationError("cannot average an empty counter list")
        return CounterSet.from_vector(CounterSet.stack(sets).mean(axis=0))

    @staticmethod
    def accumulate(sets: list["CounterSet"]) -> "CounterSet":
        """Element-wise sum (use for additive counters only)."""
        if not sets:
            raise SimulationError("cannot accumulate an empty counter list")
        return CounterSet.from_vector(CounterSet.stack(sets).sum(axis=0))
