"""Fused multi-campaign simulation engine.

Campaign workloads (datagen grids, Fig. 4 policy comparisons, fleet
phase-1 job simulation) are thousands of *independent* policy runs over
near-identical simulators.  The serial path executes each run's epoch
loop alone: every quantum pays one small counter-matrix build, one
small power evaluation and one small model forward pass per task, and
every task ships its own pickled copy of the model weights to its
worker process.

:class:`FusedCampaignEngine` co-simulates N such tasks in lockstep
instead.  Each quantum:

1. every live task's clusters advance one epoch (the identical
   per-cluster quantum loop the serial path runs, so RNG/noise/cursor
   state evolves bit-for-bit the same),
2. all tasks' activity vectors are stacked into one
   ``(total_clusters, slots)`` matrix feeding **one** counter-matrix
   build, with per-task power evaluated on each task's row slice,
3. eligible SSMDVFS controllers contribute their active-cluster rows to
   **one** cross-task Decision-maker/Calibrator forward pass (per-row
   working presets), via the controller's ``fused_prepare`` /
   ``fused_commit`` hooks.

Tasks that finish early are masked out of subsequent quanta (their
final record receives the same truncation/energy-refund adjustment the
serial run loop applies); heterogeneous epoch boundaries are handled by
each task's own time/epoch cursor — the engine never assumes tasks are
in the same epoch, only that they share the epoch *length*.

Bit-identity with the serial path is a hard invariant, maintained by
three rules established empirically against the BLAS kernels numpy
dispatches to:

* elementwise/rowwise stages (counter builds, scalers, activations,
  per-row argmax) are stacking-invariant — always safe to batch;
* row-slice *reductions* of a stacked matrix (per-task column sums,
  ``mean(axis=0)`` over a task's rows) match the standalone reduction —
  safe for per-task counter averaging and uncore accounting;
* matrix products are *not* generally stacking-invariant: single rows
  take a different BLAS code path (~1 ULP different rounding), and
  matrix-vector accumulation order varies with the row count.  Hence
  power (a per-class matvec) is evaluated per task slice, and a task
  joins a cross-task inference batch (pure GEMMs, which are row-stable
  for slices of >= 2 rows) only when it contributes >= 2 active rows —
  otherwise it runs its own forward pass, exactly like the serial
  controller.

The module also provides the shared-memory transport used to hand
read-only model weights and warm :class:`SolutionCache` contents to
worker processes once per campaign instead of pickling them per task:
:func:`dump_shared` externalises an object graph's numpy arrays into a
single ``multiprocessing.shared_memory`` block, and
:func:`load_shared` / :class:`SharedContextCache` reattach them as
read-only views on the worker side.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import SimulationError
from ..power.energy import EnergyAccount
from .cluster import A_BUSY_S, build_counters_matrix
from .counters import COUNTER_INDEX, CounterSet
from .quantum import run_epoch_batch
from .simulator import EpochRecord, GPUSimulator, RunResult

try:  # pragma: no cover - always present on CPython >= 3.8
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    resource_tracker = None
    shared_memory = None

#: Arrays below this many bytes stay inline in the pickle payload —
#: externalising them would cost more metadata than it saves.
SHARED_ARRAY_THRESHOLD_BYTES = 128

#: Segment names created by *this* process (the owner keeps its
#: resource-tracker registration; only attaching processes unregister).
_OWNED_SEGMENTS: set[str] = set()


# ----------------------------------------------------------------------
# Shared-memory object transport
# ----------------------------------------------------------------------
_SHM_TAG = "repro-shm-array"


@dataclass(frozen=True)
class SharedObjectRef:
    """Picklable handle to an object graph dumped by :func:`dump_shared`.

    ``shm_name`` is ``None`` in inline mode (no shared-memory segment —
    either the graph had no large arrays or the platform refused the
    allocation); the payload then contains everything.
    """

    shm_name: str | None
    arrays: tuple[tuple[int, tuple, str], ...]  # (offset, shape, dtype)
    payload: bytes

    @property
    def shared_bytes(self) -> int:
        """Bytes externalised into the shared-memory block."""
        return sum(int(np.prod(shape)) * np.dtype(dtype).itemsize
                   for _, shape, dtype in self.arrays)


class _ArrayPickler(pickle.Pickler):
    """Pickler externalising large ndarrays via persistent IDs."""

    def __init__(self, file, collected: list[np.ndarray],
                 threshold: int) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._collected = collected
        self._threshold = threshold

    def persistent_id(self, obj):
        if (isinstance(obj, np.ndarray) and obj.dtype != object
                and obj.size > 0 and obj.nbytes >= self._threshold):
            self._collected.append(np.ascontiguousarray(obj))
            return (_SHM_TAG, len(self._collected) - 1)
        return None


class _ArrayUnpickler(pickle.Unpickler):
    """Unpickler resolving persistent IDs to shared-memory views."""

    def __init__(self, file, views: list[np.ndarray]) -> None:
        super().__init__(file)
        self._views = views

    def persistent_load(self, pid):
        tag, index = pid
        if tag != _SHM_TAG:
            raise pickle.UnpicklingError(f"unknown persistent id {tag!r}")
        return self._views[index]


def dump_shared(obj, *, threshold_bytes: int = SHARED_ARRAY_THRESHOLD_BYTES):
    """Dump ``obj`` with its numpy arrays in one shared-memory block.

    Returns ``(ref, block)``: a picklable :class:`SharedObjectRef` to
    ship to workers, and the owning ``SharedMemory`` block (``None`` in
    inline mode) which the caller must keep alive for the campaign and
    release afterwards via :func:`release_shared`.  Falls back to a
    plain inline pickle when shared memory is unavailable or the
    allocation fails — same results, per-task copies again.
    """
    collected: list[np.ndarray] = []
    buffer = io.BytesIO()
    _ArrayPickler(buffer, collected, threshold_bytes).dump(obj)
    payload = buffer.getvalue()
    if not collected or shared_memory is None:
        if collected:  # shared memory unavailable: re-pickle inline
            payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        return SharedObjectRef(None, (), payload), None
    total = sum(array.nbytes for array in collected)
    try:
        block = shared_memory.SharedMemory(create=True, size=max(1, total))
    except (OSError, ValueError):
        return (SharedObjectRef(
            None, (), pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)),
            None)
    _OWNED_SEGMENTS.add(block.name)
    metas: list[tuple[int, tuple, str]] = []
    offset = 0
    for array in collected:
        view = np.ndarray(array.shape, array.dtype, buffer=block.buf,
                          offset=offset)
        view[...] = array
        metas.append((offset, array.shape, array.dtype.str))
        offset += array.nbytes
    return SharedObjectRef(block.name, tuple(metas), payload), block


def load_shared(ref: SharedObjectRef):
    """Rebuild an object dumped by :func:`dump_shared`.

    Returns ``(obj, block)``.  In shared-memory mode the object's large
    arrays are *read-only views* into the attached block; the caller
    must keep ``block`` (or the views) referenced while the object is
    in use.  In inline mode ``block`` is ``None``.
    """
    if ref.shm_name is None:
        return pickle.loads(ref.payload), None
    block = shared_memory.SharedMemory(name=ref.shm_name)
    # Python < 3.13 registers every *attach* with the resource tracker,
    # which then unlinks the segment when this process exits — stealing
    # it from the owner.  Only the creating process may keep its
    # registration (and unlink); an in-process load (serial campaigns)
    # must not unregister the owner's claim.
    if resource_tracker is not None and ref.shm_name not in _OWNED_SEGMENTS:
        try:
            resource_tracker.unregister(block._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker API drift
            pass
    views = []
    for offset, shape, dtype in ref.arrays:
        view = np.ndarray(shape, np.dtype(dtype), buffer=block.buf,
                          offset=offset)
        view.flags.writeable = False
        views.append(view)
    obj = _ArrayUnpickler(io.BytesIO(ref.payload), views).load()
    return obj, block


def release_shared(block) -> None:
    """Close and unlink a block returned by :func:`dump_shared`."""
    if block is None:
        return
    _OWNED_SEGMENTS.discard(block.name)
    try:
        block.close()
        block.unlink()
    except (OSError, FileNotFoundError):  # pragma: no cover
        pass


class SharedContextCache:
    """Per-process cache of loaded shared contexts (for pool workers).

    A campaign ships the same :class:`SharedObjectRef` inside every
    group task; each pool worker should attach and unpickle it once,
    not once per group.  Keyed by the segment name (unique per dump) or
    the payload digest in inline mode.  Eviction only drops our
    reference — numpy views keep the underlying mapping alive, so
    previously returned contexts stay valid.
    """

    def __init__(self, max_entries: int = 8) -> None:
        self.max_entries = int(max_entries)
        self._entries: dict[object, tuple] = {}

    def get(self, ref: SharedObjectRef):
        key = ref.shm_name if ref.shm_name is not None else hash(ref.payload)
        entry = self._entries.get(key)
        if entry is None:
            entry = load_shared(ref)
            if len(self._entries) >= self.max_entries:
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = entry
        return entry[0]


def fuse_groups(items: Sequence, width: int) -> list[list]:
    """Split an ordered task list into consecutive fused groups."""
    if width < 1:
        raise SimulationError("fuse width must be >= 1")
    return [list(items[i:i + width]) for i in range(0, len(items), width)]


# ----------------------------------------------------------------------
# The fused engine
# ----------------------------------------------------------------------
@dataclass
class _FusedTask:
    """One co-simulated campaign task and its accumulated run state."""

    task_id: object
    simulator: GPUSimulator
    policy: object
    max_epochs: int
    keep_records: bool
    account: EnergyAccount = field(default_factory=EnergyAccount)
    records: list[EpochRecord] = field(default_factory=list)
    epochs: int = 0
    done: bool = False
    result: RunResult | None = None


class FusedCampaignEngine:
    """Co-simulates N independent campaign tasks in lockstep.

    Tasks must share the architecture, epoch length and power-model
    configuration (validated at :meth:`add_task`); kernels, seeds and
    policies are free to differ per task.  :meth:`run` returns one
    :class:`RunResult` per task, bit-identical to running each task's
    ``simulator.run(policy)`` alone.

    The engine itself is picklable mid-campaign (simulators and
    policies are), so a paused engine can be serialised and resumed —
    the mid-campaign checkpoint primitive the group runners build on.
    """

    def __init__(self, stats_counters: dict[str, int] | None = None) -> None:
        self.tasks: list[_FusedTask] = []
        # ``is not None`` (not truthiness): callers hand in an *empty*
        # dict precisely so the engine fills it in place.
        self.counters: dict[str, int] = (stats_counters
                                         if stats_counters is not None
                                         else {})
        self._started = False

    def _count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    # ------------------------------------------------------------------
    def add_task(self, task_id, simulator: GPUSimulator, policy, *,
                 max_epochs: int = 100_000,
                 keep_records: bool = True) -> None:
        """Register one (simulator, policy) campaign task."""
        if self._started:
            raise SimulationError("cannot add tasks to a started engine")
        if self.tasks:
            first = self.tasks[0].simulator
            if simulator.epoch_s != first.epoch_s:
                raise SimulationError(
                    "fused tasks must share the epoch length "
                    f"({simulator.epoch_s!r} != {first.epoch_s!r})")
            if not (simulator.arch is first.arch
                    or simulator.arch == first.arch):
                raise SimulationError(
                    "fused tasks must share the architecture config")
            if simulator.power_model.config != first.power_model.config:
                raise SimulationError(
                    "fused tasks must share the power-model config")
        self.tasks.append(_FusedTask(task_id, simulator, policy,
                                     max_epochs, keep_records))
        self._count("fused_tasks")

    # ------------------------------------------------------------------
    def run(self) -> list[RunResult]:
        """Run every task to completion; results in task order."""
        if not self.tasks:
            return []
        if not self._started:
            self._started = True
            for task in self.tasks:
                task.policy.reset(task.simulator)
                if task.simulator.finished:
                    self._finalize(task)
        while any(not task.done for task in self.tasks):
            self.step_quantum()
        return [task.result for task in self.tasks]

    def _finalize(self, task: _FusedTask) -> None:
        task.done = True
        task.result = RunResult(
            policy_name=task.policy.name,
            kernel_name=task.simulator.workload_name,
            account=task.account,
            epochs=task.epochs,
            records=task.records,
        )

    # ------------------------------------------------------------------
    def step_quantum(self) -> None:
        """Advance every live task by one epoch with batched evaluation."""
        live = [task for task in self.tasks if not task.done]
        if not live:
            return
        self._count("fused_quanta")
        self._count("fused_task_epochs", len(live))

        arch = live[0].simulator.arch
        epoch_s = live[0].simulator.epoch_s

        # Phase 1: every live task's clusters advance one epoch.  When
        # every live simulator runs the vectorised quantum kernel, ALL
        # tasks' clusters go through **one** ``run_epoch_batch`` call —
        # the kernel steps each cluster independently (per-cluster
        # RNG/noise/cursor state advances bit-for-bit as it would
        # alone) while batching the interval-model solves across the
        # whole fleet of co-simulated tasks.  Otherwise every cluster
        # runs the identical serial quantum loop.
        vectorized = all(task.simulator._vectorized for task in live)
        spans: list[tuple[_FusedTask, int, int, list | None, list[int]]] = []
        batch_result = None
        durations = None
        if vectorized:
            self._count("fused_vectorized_quanta")
            all_clusters = []
            for task in live:
                sim = task.simulator
                if task.epochs >= task.max_epochs:
                    raise SimulationError(
                        f"run exceeded {task.max_epochs} epochs; kernel "
                        f"{sim.workload_name!r} may be too long for this "
                        f"budget"
                    )
                start = len(all_clusters)
                all_clusters.extend(sim.clusters)
                spans.append((task, start, len(all_clusters), None,
                              sim.levels))
            batch_result = run_epoch_batch(all_clusters, epoch_s)
            activity_matrix = batch_result.matrix
            durations = np.full(len(all_clusters), epoch_s,
                                dtype=np.float64)
        else:
            all_activities = []
            for task in live:
                sim = task.simulator
                if task.epochs >= task.max_epochs:
                    raise SimulationError(
                        f"run exceeded {task.max_epochs} epochs; kernel "
                        f"{sim.workload_name!r} may be too long for this "
                        f"budget"
                    )
                activities = [cluster.run_epoch(epoch_s)
                              for cluster in sim.clusters]
                start = len(all_activities)
                all_activities.extend(activities)
                spans.append((task, start, len(all_activities), activities,
                              sim.levels))
            activity_matrix = np.stack(
                [a.as_vector() for a in all_activities])

        # Phase 2: one stacked counter build over every live task's
        # clusters (all elementwise/rowwise — stacking-invariant), then
        # per-task power on each task's row slice.  Power is *not*
        # batched across tasks: its per-instruction-class energy is a
        # matrix-vector product whose accumulation order (and thus
        # final ULP) depends on the row count BLAS sees, so a
        # cross-task batch would differ from the serial per-task call.
        # The slice view is value-identical to the task's own stack, so
        # the per-slice call reproduces the serial bits exactly.
        counters_matrix = build_counters_matrix(activity_matrix, arch)
        self._count("fused_stacked_rows", activity_matrix.shape[0])
        energy_by_span: list[np.ndarray] = []
        for task, start, stop, activities, levels in spans:
            if activities is None:
                sim = task.simulator
                dynamic_w, static_w, energy_j = (
                    sim.power_model.cluster_power_batch(
                        None, matrix=activity_matrix[start:stop],
                        durations=durations[start:stop],
                        voltages=sim._voltage_by_level[levels]))
            else:
                dynamic_w, static_w, energy_j = (
                    task.simulator.power_model.cluster_power_batch(
                        activities, matrix=activity_matrix[start:stop]))
            sub = counters_matrix[start:stop]
            sub[:, COUNTER_INDEX["power_per_core"]] = dynamic_w + static_w
            sub[:, COUNTER_INDEX["power_dynamic"]] = dynamic_w
            sub[:, COUNTER_INDEX["power_static"]] = static_w
            sub[:, COUNTER_INDEX["energy_epoch"]] = energy_j
            energy_by_span.append(energy_j)

        # Phase 3: per-task record assembly from row slices (slice
        # reductions of the stacked matrices are bit-identical to the
        # standalone per-task reductions), then finish masking exactly
        # as the serial run loop: truncate + account, or account +
        # decide.
        pending: list[tuple[_FusedTask, EpochRecord]] = []
        for span_index, (task, start, stop, activities, levels) \
                in enumerate(spans):
            sim = task.simulator
            sub = counters_matrix[start:stop]
            uncore = sim.power_model.uncore_power(
                activities, epoch_s, matrix=activity_matrix[start:stop])
            if activities is None:
                cluster_counters = [CounterSet.from_vector(row)
                                    for row in sub]
                all_finished = all(
                    batch_result.finished[start:stop].tolist())
                finish_time = max(
                    activity_matrix[start:stop, A_BUSY_S].tolist(),
                    default=0.0)
                instructions = sum(
                    batch_result.instructions[start:stop].tolist())
            else:
                cluster_counters = [CounterSet.from_vector(row.copy())
                                    for row in sub]
                all_finished = all(a.finished for a in activities)
                finish_time = max((a.busy_s for a in activities),
                                  default=0.0)
                instructions = sum(a.instructions for a in activities)
            record = EpochRecord(
                index=sim.epoch_index,
                start_time_s=sim.time_s,
                duration_s=epoch_s,
                levels=levels,
                counters=CounterSet.from_vector(sub.mean(axis=0)),
                cluster_counters=cluster_counters,
                instructions=instructions,
                cluster_energy_j=float(energy_by_span[span_index].sum()),
                uncore_energy_j=uncore.energy_j,
                all_finished=all_finished,
                finish_time_s=finish_time,
            )
            sim.time_s += epoch_s
            sim.epoch_index += 1
            task.epochs += 1
            if record.all_finished:
                time_s, effective_energy = sim.truncate_final_record(record)
                task.account.add(effective_energy, time_s)
            else:
                task.account.add(record.energy_j, record.duration_s)
                pending.append((task, record))
            if task.keep_records:
                task.records.append(record)
            if record.all_finished:
                self._finalize(task)

        self._decide(pending)

    # ------------------------------------------------------------------
    def _decide(self, pending: list[tuple[_FusedTask, EpochRecord]]) -> None:
        """Policy decisions, batching SSMDVFS inference across tasks.

        Controllers exposing the ``fused_prepare``/``fused_commit``
        hooks and contributing >= 2 active rows are grouped by their
        (Decision-maker, Calibrator) object pair and evaluated in one
        forward pass with per-row working presets; everything else
        (static/heuristic baselines, guarded or faulty wrappers, scalar
        controllers, single-active-row epochs) decides solo — the exact
        serial code path.
        """
        batches: dict[tuple[int, int], list] = {}
        for task, record in pending:
            policy = task.policy
            prepare = getattr(policy, "fused_prepare", None)
            if not callable(prepare):
                task.simulator.apply_decision(policy.decide(record))
                self._count("fused_solo_decisions")
                continue
            rows = prepare(record)
            if rows is None:
                task.simulator.apply_decision(policy.fused_fallback(record))
                self._count("fused_solo_decisions")
                continue
            key = (id(policy.model.decision_maker),
                   id(policy.model.calibrator))
            batches.setdefault(key, []).append((task, record, rows))

        for members in batches.values():
            decision_maker = members[0][0].policy.model.decision_maker
            calibrator = members[0][0].policy.model.calibrator
            if len(members) == 1:
                task, record, rows = members[0]
                levels = decision_maker.predict_levels(
                    rows, task.policy.working_preset)
                insts = calibrator.predict_instructions_batch(rows, levels)
                task.simulator.apply_decision(
                    task.policy.fused_commit(record, levels, insts))
                self._count("fused_solo_decisions")
                continue
            all_rows = [row for _, _, rows in members for row in rows]
            presets = np.concatenate([
                np.full(len(rows), task.policy.working_preset)
                for task, _, rows in members])
            levels = decision_maker.predict_levels(all_rows, presets)
            insts = calibrator.predict_instructions_batch(all_rows, levels)
            offset = 0
            for task, record, rows in members:
                count = len(rows)
                task.simulator.apply_decision(task.policy.fused_commit(
                    record, levels[offset:offset + count],
                    insts[offset:offset + count]))
                offset += count
            self._count("fused_inference_groups")
            self._count("fused_inference_rows", len(all_rows))


def run_fused(entries: list[tuple], *,
              keep_records: bool = True,
              max_epochs: int = 100_000,
              stats_counters: dict[str, int] | None = None
              ) -> list[RunResult]:
    """Convenience wrapper: fuse ``(task_id, simulator, policy)`` tuples."""
    engine = FusedCampaignEngine(stats_counters=stats_counters)
    for task_id, simulator, policy in entries:
        engine.add_task(task_id, simulator, policy,
                        max_epochs=max_epochs, keep_records=keep_records)
    return engine.run()
