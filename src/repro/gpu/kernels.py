"""Kernel profiles.

A :class:`KernelProfile` is a sequence of :class:`~repro.gpu.phases.Phase`
objects repeated for a number of iterations — the iterative pattern
typical of GPGPU benchmarks (and the one PCSTALL's prediction model is
built on).  The profile is a *per-cluster* description; the simulator
instantiates one execution cursor per cluster with slight deterministic
skew so clusters are not artificially lock-stepped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import WorkloadError
from .phases import Phase


@dataclass(frozen=True)
class KernelProfile:
    """A kernel as a repeated sequence of phases.

    Attributes
    ----------
    name:
        Benchmark-style kernel name, e.g. ``"rodinia.hotspot"``.
    phases:
        One iteration's phase sequence.
    iterations:
        How many times the phase sequence repeats.
    suite:
        Originating suite tag (``rodinia`` / ``parboil`` / ``polybench``
        / ``synthetic``).
    jitter:
        Relative magnitude of the AR(1) behavioural noise applied at
        simulation time (0 disables noise).
    """

    name: str
    phases: tuple[Phase, ...]
    iterations: int = 1
    suite: str = "synthetic"
    jitter: float = 0.08

    def __init__(self, name: str, phases, iterations: int = 1,
                 suite: str = "synthetic", jitter: float = 0.08) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "phases", tuple(phases))
        object.__setattr__(self, "iterations", int(iterations))
        object.__setattr__(self, "suite", suite)
        object.__setattr__(self, "jitter", float(jitter))
        self._validate()
        # Cached: read several times per quantum in the epoch hot loop.
        object.__setattr__(self, "_num_segments",
                           len(self.phases) * self.iterations)

    def _validate(self) -> None:
        if not self.phases:
            raise WorkloadError(f"kernel {self.name!r} has no phases")
        if self.iterations < 1:
            raise WorkloadError(f"kernel {self.name!r}: iterations must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise WorkloadError(f"kernel {self.name!r}: jitter out of [0,1]")

    @property
    def num_segments(self) -> int:
        """Total number of phase segments across all iterations."""
        return self._num_segments

    @property
    def total_instructions(self) -> int:
        """Warp-instructions per cluster for the whole kernel."""
        per_iteration = sum(p.instructions for p in self.phases)
        return per_iteration * self.iterations

    def segment(self, index: int) -> Phase:
        """Phase of the ``index``-th segment (segments wrap per iteration)."""
        if not 0 <= index < self.num_segments:
            raise WorkloadError(
                f"kernel {self.name!r}: segment {index} out of range"
            )
        return self.phases[index % len(self.phases)]

    def with_iterations(self, iterations: int) -> "KernelProfile":
        """Copy of this kernel with a different iteration count."""
        return KernelProfile(self.name, self.phases, iterations,
                             self.suite, self.jitter)


@dataclass
class KernelCursor:
    """Execution position inside a kernel (per cluster).

    Tracks the current segment and how many of its instructions have
    completed.  The cursor is intentionally tiny so the simulator can
    snapshot and restore it cheaply during data generation.
    """

    kernel: KernelProfile
    segment_index: int = 0
    instructions_done: float = 0.0
    skew_instructions: float = field(default=0.0)

    def __post_init__(self) -> None:
        # Running float sum of completed segments' instructions, kept in
        # completion order so it matches the historical per-call loop
        # bit for bit while making `global_instructions_done` O(1) — it
        # is read twice per quantum in the epoch hot loop.
        self._completed_instructions = 0.0
        for index in range(min(self.segment_index, self.kernel.num_segments)):
            self._completed_instructions += self.kernel.segment(index).instructions
        if self.skew_instructions:
            # Deterministic per-cluster skew: advance the cursor by a
            # fraction of the first segment so clusters de-synchronise.
            self.advance(self.skew_instructions)

    @property
    def finished(self) -> bool:
        """True once every segment has fully executed."""
        return self.segment_index >= self.kernel.num_segments

    @property
    def current_phase(self) -> Phase:
        """Phase being executed at the cursor position."""
        if self.finished:
            raise WorkloadError(f"kernel {self.kernel.name!r} already finished")
        return self.kernel.segment(self.segment_index)

    @property
    def instructions_remaining_in_segment(self) -> float:
        """Instructions left in the current segment."""
        if self.finished:
            return 0.0
        return self.current_phase.instructions - self.instructions_done

    @property
    def global_instructions_done(self) -> float:
        """Instructions completed since the start of the kernel."""
        return self._completed_instructions + self.instructions_done

    def advance(self, instructions: float) -> float:
        """Consume up to ``instructions``; returns the amount consumed.

        Advancing across segment boundaries is handled; advancing a
        finished cursor consumes nothing.
        """
        if instructions < 0:
            raise WorkloadError("cannot advance a cursor by a negative amount")
        consumed = 0.0
        remaining = instructions
        while remaining > 0 and not self.finished:
            in_segment = self.instructions_remaining_in_segment
            step = min(remaining, in_segment)
            self.instructions_done += step
            consumed += step
            remaining -= step
            phase = self.current_phase
            if self.instructions_done >= phase.instructions - 1e-9:
                self._completed_instructions += phase.instructions
                self.segment_index += 1
                self.instructions_done = 0.0
        return consumed

    def clone(self) -> "KernelCursor":
        """Cheap deep copy for snapshot/restore."""
        copy = KernelCursor.__new__(KernelCursor)
        copy.kernel = self.kernel
        copy.segment_index = self.segment_index
        copy.instructions_done = self.instructions_done
        copy.skew_instructions = self.skew_instructions
        copy._completed_instructions = self._completed_instructions
        return copy
