"""Set-associative cache model (detailed validation substrate).

A straightforward LRU set-associative cache used by the per-cycle SM
model.  The interval model treats caches statistically (miss *rates*);
this model produces those rates from an actual address stream, which is
how the two levels of the simulator are cross-validated.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigError


class SetAssociativeCache:
    """LRU set-associative cache with hit/miss statistics."""

    def __init__(self, size_bytes: int, ways: int, line_bytes: int) -> None:
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ConfigError("cache geometry must be positive")
        if size_bytes % (ways * line_bytes) != 0:
            raise ConfigError("size must be divisible by ways * line size")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * line_bytes)
        # tags[set][way]; -1 = invalid.  LRU tracked by last-use stamp.
        self.tags = np.full((self.num_sets, ways), -1, dtype=np.int64)
        self.last_use = np.zeros((self.num_sets, ways), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Observed miss rate (0 when untouched)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def access(self, address: int) -> bool:
        """Access a byte address; returns True on hit.

        Misses allocate (write-allocate, no dirty tracking — the power
        and timing effects of write-backs are folded into constants).
        """
        if address < 0:
            raise ConfigError("addresses must be non-negative")
        self._clock += 1
        line = address // self.line_bytes
        set_index = line % self.num_sets
        tag = line // self.num_sets
        row = self.tags[set_index]
        hit_ways = np.nonzero(row == tag)[0]
        if hit_ways.size:
            self.hits += 1
            self.last_use[set_index, hit_ways[0]] = self._clock
            return True
        self.misses += 1
        victim = int(np.argmin(self.last_use[set_index]))
        self.tags[set_index, victim] = tag
        self.last_use[set_index, victim] = self._clock
        return False

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (contents retained)."""
        self.hits = 0
        self.misses = 0
