"""Cross-substrate policy validation.

Drives any DVFS policy on the *per-cycle* detailed model instead of the
interval model: each "epoch" simulates a fixed number of core cycles on
one SM, produces a policy-compatible :class:`EpochRecord` (the 47
counters synthesised from the detailed statistics plus the power
model), and feeds the policy's decision back as the next window's
frequency.

This is the transfer study the reproduction owes its readers: the
SSMDVFS models are *trained* on interval-model data, so running the
controller here checks that the learned mapping is a property of the
physics, not of the substrate that generated the dataset.

One detailed epoch is ~10^4x more expensive than an interval epoch, so
this runner is for validation windows, not experiment campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...errors import SimulationError
from ...power.model import PowerModel
from ..arch import GPUArchConfig
from ..counters import CounterSet
from ..cluster import EpochActivity
from ..kernels import KernelProfile
from ..phases import INSTRUCTION_CLASSES
from ..simulator import EpochRecord
from .sm import DetailedResult, DetailedSM


def counters_from_detailed(result: DetailedResult, arch: GPUArchConfig,
                           frequency_hz: float, voltage_v: float,
                           power_model: PowerModel,
                           l2_miss_rate: float) -> CounterSet:
    """Synthesise the 47-counter schema from detailed-SM statistics.

    Stall attribution is coarser than the interval model's (the
    detailed model only observes empty-issue cycles), so stall counters
    are derived from the issue-slot deficit with the memory share taken
    from the cache statistics.
    """
    duration_s = result.cycles / frequency_hz
    activity = EpochActivity(
        duration_s=duration_s,
        busy_s=duration_s,
        frequency_hz=frequency_hz,
        voltage_v=voltage_v,
        cycles=float(result.cycles),
        instructions=float(result.instructions),
    )
    for cls in INSTRUCTION_CLASSES:
        activity.inst_by_class[cls] = float(result.inst_by_class.get(cls, 0))
    activity.issue_slots = result.cycles * arch.issue_width
    slots_deficit = max(0.0, activity.issue_slots - activity.instructions)
    # Memory share of the stall deficit from observed cache behaviour.
    loads = activity.inst_by_class["load"]
    stores = activity.inst_by_class["store"]
    mem_weight = (loads + 0.45 * stores) * (1.0 + 2.0 * result.l1_miss_rate)
    other_weight = max(1.0, activity.instructions - loads - stores)
    mem_share = mem_weight / (mem_weight + 0.15 * other_weight)
    activity.stall_mem_load = slots_deficit * mem_share * (
        loads / max(1.0, loads + stores))
    activity.stall_mem_other = slots_deficit * mem_share * (
        stores / max(1.0, loads + stores))
    activity.stall_data = slots_deficit * (1.0 - mem_share)
    activity.l1_read_access = float(result.l1_accesses)
    activity.l1_read_miss = float(result.l1_misses)
    activity.l2_access = float(result.l1_misses)
    activity.l2_miss = float(result.l1_misses) * l2_miss_rate
    activity.dram_bytes = float(result.dram_bytes)
    activity.warp_inst_weighted = activity.instructions * 32.0

    from ..cluster import build_counters
    counters = build_counters(activity, arch)
    power = power_model.cluster_power(activity)
    counters["power_per_core"] = power.total_w
    counters["power_dynamic"] = power.dynamic_w
    counters["power_static"] = power.static_w
    counters["energy_epoch"] = power.energy_j
    return counters


@dataclass
class DetailedRunResult:
    """Outcome of a detailed-substrate policy run."""

    policy_name: str
    kernel_name: str
    time_s: float
    energy_j: float
    instructions: float
    levels: list[int] = field(default_factory=list)

    @property
    def edp(self) -> float:
        """Energy-delay product."""
        return self.energy_j * self.time_s


class _ClusterStub:
    """Never-finished cluster stand-in for the policy shim."""

    finished = False


class _PolicyShim:
    """Minimal simulator facade so policies can reset/calibrate.

    Policies only touch ``arch``, ``clusters[i].finished`` and
    ``set_all_levels`` — everything else stays on the real simulator.
    """

    def __init__(self, arch: GPUArchConfig) -> None:
        self.arch = arch
        self.clusters = [_ClusterStub()]

    def set_all_levels(self, level: int) -> None:
        """No-op: the runner applies decisions itself."""


class DetailedClusterRunner:
    """Run a policy on one detailed SM for a fixed instruction budget.

    The kernel's phases are walked in order; each epoch simulates
    ``epoch_cycles`` core cycles at the policy's chosen operating point.
    """

    def __init__(self, arch: GPUArchConfig, kernel: KernelProfile,
                 power_model: PowerModel | None = None,
                 epoch_cycles: int = 2000, seed: int = 0) -> None:
        if epoch_cycles <= 0:
            raise SimulationError("epoch_cycles must be positive")
        self.arch = arch
        self.kernel = kernel
        self.power_model = power_model or PowerModel.scaled_for(1)
        self.epoch_cycles = int(epoch_cycles)
        self.seed = seed

    def run(self, policy, max_epochs: int = 200) -> DetailedRunResult:
        """Execute until the kernel's instruction budget is consumed."""
        table = self.arch.vf_table
        level = table.default_level
        policy.reset(_PolicyShim(self.arch))
        segment = 0
        done_in_segment = 0.0
        time_s = 0.0
        energy_j = 0.0
        instructions = 0.0
        levels: list[int] = []
        epoch_index = 0
        sm: DetailedSM | None = None
        sm_level = -1

        while segment < self.kernel.num_segments:
            if epoch_index >= max_epochs:
                break
            phase = self.kernel.segment(segment)
            point = table[level]
            if sm is None or sm_level != level:
                sm = DetailedSM(self.arch, phase, point.frequency_hz,
                                seed=self.seed + segment)
                sm_level = level
            result = sm.run(self.epoch_cycles)
            counters = counters_from_detailed(
                result, self.arch, point.frequency_hz, point.voltage_v,
                self.power_model, phase.l2_miss_rate)
            duration = self.epoch_cycles / point.frequency_hz
            time_s += duration
            energy_j += counters["energy_epoch"]
            instructions += result.instructions
            levels.append(level)
            done_in_segment += result.instructions
            if done_in_segment >= phase.instructions:
                segment += 1
                done_in_segment = 0.0
                sm = None

            record = EpochRecord(
                index=epoch_index, start_time_s=time_s - duration,
                duration_s=duration, levels=[level], counters=counters,
                cluster_counters=[counters], instructions=result.instructions,
                cluster_energy_j=counters["energy_epoch"],
                uncore_energy_j=0.0, all_finished=False,
                finish_time_s=duration)
            decision = policy.decide(record)
            if isinstance(decision, (int, float)):
                level = table.clamp(int(decision))
            else:
                level = table.clamp(int(list(decision)[0]))
            epoch_index += 1

        return DetailedRunResult(
            policy_name=policy.name, kernel_name=self.kernel.name,
            time_s=time_s, energy_j=energy_j, instructions=instructions,
            levels=levels)
