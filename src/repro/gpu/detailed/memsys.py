"""Memory-subsystem timing for the detailed model.

L2 and DRAM latencies are fixed in *nanoseconds* (memory clock domain);
the SM converts them to core cycles at its current frequency.  DRAM
bandwidth is enforced with a simple token-bucket: each serviced miss
consumes a line's worth of bytes, and requests beyond the sustained
rate are delayed — the queueing the interval model's bandwidth cap
approximates analytically.
"""

from __future__ import annotations

from ...errors import ConfigError


class MemorySubsystem:
    """Latency + bandwidth model shared by one SM's memory requests."""

    def __init__(self, l2_latency_ns: float, dram_latency_ns: float,
                 bandwidth_bytes_per_s: float, line_bytes: int) -> None:
        if min(l2_latency_ns, dram_latency_ns) < 0:
            raise ConfigError("latencies cannot be negative")
        if bandwidth_bytes_per_s <= 0 or line_bytes <= 0:
            raise ConfigError("bandwidth and line size must be positive")
        self.l2_latency_ns = l2_latency_ns
        self.dram_latency_ns = dram_latency_ns
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self.line_bytes = line_bytes
        # Time (seconds) at which the DRAM channel next becomes free.
        self._channel_free_s = 0.0
        self.dram_bytes = 0

    def l2_request_ready_s(self, now_s: float) -> float:
        """Completion time of an L2 hit issued at ``now_s``."""
        return now_s + self.l2_latency_ns * 1e-9

    def dram_request_ready_s(self, now_s: float) -> float:
        """Completion time of a DRAM access issued at ``now_s``.

        Serialises on the bandwidth-limited channel: each line occupies
        the channel for ``line_bytes / bandwidth`` seconds.
        """
        service_s = self.line_bytes / self.bandwidth_bytes_per_s
        start_s = max(now_s, self._channel_free_s)
        self._channel_free_s = start_s + service_s
        self.dram_bytes += self.line_bytes
        latency_s = (self.l2_latency_ns + self.dram_latency_ns) * 1e-9
        return start_s + latency_s
