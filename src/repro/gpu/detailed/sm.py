"""Per-cycle SM model (detailed validation substrate).

Simulates one SM cluster cycle by cycle: a loose-round-robin scheduler
issues ready warps up to the issue width; each issued instruction draws
its class from the phase's mix and stalls its warp for the class's
execution latency; memory instructions walk an address stream through
an actual L1 cache and the latency/bandwidth memory subsystem.

This model is 3-4 orders of magnitude slower than the interval model,
so it only runs short windows — its job is to validate the interval
model's *trends* (IPC vs warps, frequency sensitivity, bandwidth
saturation), not to drive experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import SimulationError
from ..arch import GPUArchConfig
from ..phases import Phase
from .cache import SetAssociativeCache
from .memsys import MemorySubsystem

#: Execution latency per instruction class, in core cycles.
CLASS_LATENCY_CYCLES = {
    "fp32": 4, "fp64": 16, "int": 4, "sfu": 12,
    "load": 0, "store": 0,  # memory timing handled separately
    "shared": 24, "branch": 4, "sync": 8,
}


@dataclass
class DetailedResult:
    """Outcome of a detailed simulation window."""

    cycles: int
    instructions: int
    inst_by_class: dict[str, int]
    l1_accesses: int
    l1_misses: int
    stall_cycles: int
    dram_bytes: int

    @property
    def ipc(self) -> float:
        """Warp instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1_miss_rate(self) -> float:
        """Observed L1 miss rate."""
        return self.l1_misses / self.l1_accesses if self.l1_accesses else 0.0


class DetailedSM:
    """One SM cluster simulated cycle by cycle."""

    def __init__(self, arch: GPUArchConfig, phase: Phase, frequency_hz: float,
                 seed: int = 0, l1_size_bytes: int = 24 * 1024,
                 l1_ways: int = 6) -> None:
        if frequency_hz <= 0:
            raise SimulationError("frequency must be positive")
        self.arch = arch
        self.phase = phase
        self.frequency_hz = float(frequency_hz)
        self.rng = np.random.default_rng(seed)
        self.num_warps = int(min(arch.max_warps_per_cluster,
                                 max(1, round(phase.active_warps))))
        self.l1 = SetAssociativeCache(l1_size_bytes, l1_ways,
                                      arch.cache_line_bytes)
        self.memsys = MemorySubsystem(arch.l2_latency_ns,
                                      arch.dram_latency_ns,
                                      arch.cluster_bandwidth_bytes_per_s,
                                      arch.cache_line_bytes)
        # Per-warp state.
        self.ready_cycle = np.zeros(self.num_warps, dtype=np.int64)
        self.issued = np.zeros(self.num_warps, dtype=np.int64)
        # Per-warp streaming base addresses: separate regions so warps
        # conflict in cache realistically.
        footprint = 4 * 1024 * 1024
        self.stream_pos = self.rng.integers(0, footprint,
                                            size=self.num_warps)
        self._classes = list(self.phase.mix)
        self._probabilities = np.array([self.phase.mix[c]
                                        for c in self._classes])
        self._probabilities /= self._probabilities.sum()
        self._rotate = 0
        # Absolute cycle clock: run() windows continue where the last
        # one stopped, so in-flight warp wakeups survive window edges.
        self._now = 0

    def _ns_to_cycles(self, seconds: float) -> int:
        return int(np.ceil(seconds * self.frequency_hz))

    def _memory_latency_cycles(self, cycle: int, address: int) -> int:
        """Walk the cache hierarchy, returning the load-to-use latency."""
        if self.l1.access(int(address)):
            return int(self.arch.l1_hit_latency_cycles)
        now_s = cycle / self.frequency_hz
        # L2 hit/miss decided by the phase's L2 miss rate (modelling an
        # L2 shared with 23 other clusters statistically).
        if self.rng.random() < self.phase.l2_miss_rate:
            ready_s = self.memsys.dram_request_ready_s(now_s)
        else:
            ready_s = self.memsys.l2_request_ready_s(now_s)
        return max(int(self.arch.l1_hit_latency_cycles),
                   self._ns_to_cycles(ready_s - now_s))

    def _next_address(self, warp: int) -> int:
        """Mostly-streaming access pattern with re-use, tuned so the
        observed L1 miss rate tracks the phase's target."""
        # A miss-rate-r stream: advance to a new line with prob r,
        # otherwise re-touch the current line (guaranteed hit).
        if self.rng.random() < self.phase.l1_miss_rate:
            self.stream_pos[warp] += self.arch.cache_line_bytes
        return int(self.stream_pos[warp])

    def run(self, cycles: int) -> DetailedResult:
        """Simulate ``cycles`` core cycles; returns aggregate stats."""
        if cycles <= 0:
            raise SimulationError("cycle count must be positive")
        issue_width = int(self.arch.issue_width)
        inst_by_class = {c: 0 for c in self._classes}
        instructions = 0
        stall_cycles = 0
        divergence_extra = 1.0 + 0.6 * self.phase.divergence
        l1_accesses_before = self.l1.accesses
        l1_misses_before = self.l1.misses
        dram_before = self.memsys.dram_bytes

        start = self._now
        self._now += cycles
        for cycle in range(start, start + cycles):
            eligible = np.nonzero(self.ready_cycle <= cycle)[0]
            if eligible.size == 0:
                stall_cycles += 1
                continue
            # Loose round robin: rotate priority among eligible warps.
            order = np.roll(eligible, -self._rotate % eligible.size)
            self._rotate += 1
            for warp in order[:issue_width]:
                class_index = int(self.rng.choice(len(self._classes),
                                                  p=self._probabilities))
                cls = self._classes[class_index]
                inst_by_class[cls] += 1
                instructions += 1
                base = self.phase.cpi_exec * divergence_extra
                latency = CLASS_LATENCY_CYCLES[cls]
                if cls in ("load", "store"):
                    mem_cycles = self._memory_latency_cycles(
                        cycle, self._next_address(int(warp)))
                    if cls == "store":
                        mem_cycles = int(mem_cycles * 0.45)
                    # Per-warp MLP: overlapping requests hide a share.
                    latency = max(1, int(mem_cycles / self.phase.mlp))
                wait = max(1, int(round(base)) + latency // 2)
                self.ready_cycle[warp] = cycle + wait
                self.issued[warp] += 1

        return DetailedResult(
            cycles=cycles,
            instructions=instructions,
            inst_by_class=inst_by_class,
            l1_accesses=self.l1.accesses - l1_accesses_before,
            l1_misses=self.l1.misses - l1_misses_before,
            stall_cycles=stall_cycles,
            dram_bytes=self.memsys.dram_bytes - dram_before,
        )
