"""Per-cycle SM/cache/memory model for validating the interval model."""

from .cache import SetAssociativeCache
from .memsys import MemorySubsystem
from .runner import (DetailedClusterRunner, DetailedRunResult,
                     counters_from_detailed)
from .sm import CLASS_LATENCY_CYCLES, DetailedResult, DetailedSM

__all__ = [
    "SetAssociativeCache", "MemorySubsystem",
    "DetailedClusterRunner", "DetailedRunResult", "counters_from_detailed",
    "CLASS_LATENCY_CYCLES", "DetailedResult", "DetailedSM",
]
