"""Top-level GPU simulator.

Ties the per-cluster execution engine, the power model, and a DVFS
policy together into the 10 µs epoch loop of the paper:

1. every cluster runs one epoch at its current operating point,
2. counters and power are produced per cluster,
3. the policy observes the epoch record and returns the next operating
   point per cluster (or one level broadcast to all).

The simulator also provides the snapshot/restore and
run-until-instruction-mark primitives that the data-generation protocol
(§III-A) needs to replay the same 100 µs segment at each V/f point.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from ..errors import SimulationError, SnapshotError
from ..power.energy import EnergyAccount
from ..power.model import PowerModel
from ..rng import StreamFactory
from ..units import us
from .arch import GPUArchConfig
from .cluster import (A_BUSY_S, NUM_ACTIVITY_SLOTS, ClusterState,
                      EpochActivity, build_counters_matrix, quantum_row_for)
from .counters import COUNTER_INDEX, CounterSet
from .interval_model import SolutionCache
from .kernels import KernelProfile
from .noise import WorkloadNoise
from .quantum import run_epoch_batch

#: Default DVFS epoch length: the paper's 10 µs resolution.
DEFAULT_EPOCH_S = us(10.0)


@dataclass
class EpochRecord:
    """Everything observable at the end of one DVFS epoch."""

    index: int
    start_time_s: float
    duration_s: float
    levels: list[int]
    counters: CounterSet
    cluster_counters: list[CounterSet]
    instructions: float
    cluster_energy_j: float
    uncore_energy_j: float
    all_finished: bool
    finish_time_s: float

    @property
    def energy_j(self) -> float:
        """Total GPU energy of the epoch."""
        return self.cluster_energy_j + self.uncore_energy_j

    @property
    def end_time_s(self) -> float:
        """Wall-clock time at the end of this epoch."""
        return self.start_time_s + self.duration_s


class DVFSPolicy(Protocol):
    """Anything that can steer per-cluster V/f from epoch records."""

    name: str

    def reset(self, simulator: "GPUSimulator") -> None:
        """Called once before a run starts."""

    def decide(self, record: EpochRecord) -> int | Sequence[int]:
        """Return the level(s) for the next epoch."""


@dataclass
class RunResult:
    """Outcome of a full policy-driven run."""

    policy_name: str
    kernel_name: str
    account: EnergyAccount
    epochs: int
    records: list[EpochRecord] = field(default_factory=list)

    @property
    def time_s(self) -> float:
        """Total wall-clock time of the run.

        Equals the sum of the record durations: the run loop truncates
        the final partial epoch's record to the drain point.
        """
        return self.account.time_s

    @property
    def energy_j(self) -> float:
        """Total energy of the run."""
        return self.account.energy_j

    @property
    def edp(self) -> float:
        """Energy-delay product of the run."""
        return self.account.edp


class GPUSimulator:
    """Epoch-stepped multi-cluster GPU simulator with per-cluster DVFS."""

    def __init__(self, arch: GPUArchConfig,
                 kernel: KernelProfile | Sequence[KernelProfile],
                 power_model: PowerModel | None = None,
                 seed: int | None = None,
                 epoch_s: float = DEFAULT_EPOCH_S,
                 use_solution_cache: bool = True,
                 solution_cache: SolutionCache | None = None,
                 noise_cache: dict | None = None,
                 vectorized: bool = True) -> None:
        if epoch_s <= 0:
            raise SimulationError("epoch length must be positive")
        self.arch = arch
        # Heterogeneous (multi-tenant) mode: a list of kernels is dealt
        # round-robin across clusters — the scenario where *per-cluster*
        # DVFS pays off over any single chip-wide setting.
        if isinstance(kernel, KernelProfile):
            kernels = [kernel]
        else:
            kernels = list(kernel)
            if not kernels:
                raise SimulationError("need at least one kernel")
        self.kernel = kernels[0]
        self.kernels = kernels
        self.power_model = (power_model
                            or PowerModel.scaled_for(arch.num_clusters))
        self.epoch_s = float(epoch_s)
        self.seed = seed
        streams = StreamFactory() if seed is None else StreamFactory(seed)
        # One solution cache shared by every cluster: clusters running
        # the same kernel at the same operating point reuse each other's
        # solves (and datagen replays reuse everything).  Passing
        # ``solution_cache`` shares one cache *across* simulators — the
        # fused campaign engine's cross-task reuse path.  Keys capture
        # every solver input bit-exactly, so sharing never changes
        # results, only hit rates.
        if solution_cache is not None:
            self.solution_cache: SolutionCache | None = solution_cache
        else:
            self.solution_cache = (
                SolutionCache(payload_builder=quantum_row_for)
                if use_solution_cache else None)
        # The batched quantum engine needs the quantum-row cache payload
        # (the default); a caller-supplied cache with a different
        # builder silently falls back to the scalar per-cluster loop so
        # existing integrations keep working unchanged.
        self._vectorized = bool(vectorized) and (
            self.solution_cache is None
            or self.solution_cache.payload_builder is quantum_row_for)
        self.clusters: list[ClusterState] = []
        skew_rngs = {k.name: streams.get(f"skew.{k.name}") for k in kernels}
        for cid in range(arch.num_clusters):
            cluster_kernel = kernels[cid % len(kernels)]
            # ``noise_cache`` shares WorkloadNoise objects *across*
            # simulators with the same seed.  The key captures every
            # input that determines a noise stream's values — the seed,
            # the cluster slot, the kernel name (the stream name) and
            # the jitter sigma — and tracks are position-indexed,
            # append-only and generated sequentially from one RNG, so
            # whichever co-simulated task extends the track first
            # materialises exactly the values every sharer would have
            # generated alone.  Sharing changes wall-clock, never bits.
            noise = None
            if noise_cache is not None and seed is not None:
                noise_key = (seed, cid, cluster_kernel.name,
                             cluster_kernel.jitter)
                noise = noise_cache.get(noise_key)
            if noise is None:
                noise = WorkloadNoise(
                    streams.get(f"noise.{cluster_kernel.name}.c{cid}"),
                    sigma=cluster_kernel.jitter,
                )
                if noise_cache is not None and seed is not None:
                    noise_cache[noise_key] = noise
            max_skew = max(1.0, cluster_kernel.phases[0].instructions * 0.25)
            skew = float(skew_rngs[cluster_kernel.name].uniform(0.0, max_skew))
            self.clusters.append(
                ClusterState(arch, cluster_kernel, noise, cluster_id=cid,
                             skew_instructions=skew,
                             solution_cache=self.solution_cache)
            )
        self.time_s = 0.0
        self.epoch_index = 0
        # Preallocated per-epoch buffers (vectorised path): the batched
        # engine writes activity vectors straight into ``_activity_buf``
        # and power evaluation reads constant duration / table-indexed
        # voltage arrays instead of rebuilding them per epoch.
        n = arch.num_clusters
        self._activity_buf = np.zeros((n, NUM_ACTIVITY_SLOTS),
                                      dtype=np.float64)
        self._durations = np.full(n, self.epoch_s, dtype=np.float64)
        self._voltage_by_level = np.array(
            [arch.vf_table[lv].voltage_v
             for lv in range(arch.vf_table.num_levels)], dtype=np.float64)

    @property
    def workload_name(self) -> str:
        """Display name: single kernel, or '+'-joined tenant mix."""
        if len(self.kernels) == 1:
            return self.kernel.name
        return "+".join(k.name for k in self.kernels)

    # ------------------------------------------------------------------
    # State inspection / control
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """True once every cluster has completed the kernel."""
        return all(c.finished for c in self.clusters)

    @property
    def levels(self) -> list[int]:
        """Current operating-point level per cluster."""
        return [c.level for c in self.clusters]

    def mean_instructions_done(self) -> float:
        """Mean per-cluster instructions completed since kernel start."""
        return (sum(c.instructions_done for c in self.clusters)
                / len(self.clusters))

    def set_all_levels(self, level: int) -> None:
        """Switch every cluster to the same operating point."""
        for cluster in self.clusters:
            cluster.set_level(level)

    def apply_decision(self, decision: int | Sequence[int]) -> None:
        """Apply a policy decision (scalar broadcast or per-cluster).

        Scalars are detected via :class:`numbers.Real` / ``np.ndim`` so
        numpy scalars (an MLP argmax returns ``np.int64``) and 0-d
        arrays broadcast like plain ints instead of being mistaken for
        per-cluster sequences.
        """
        if isinstance(decision, numbers.Real) or np.ndim(decision) == 0:
            self.set_all_levels(int(decision))
            return
        levels = list(decision)
        if len(levels) != len(self.clusters):
            raise SimulationError(
                f"expected {len(self.clusters)} levels, got {len(levels)}"
            )
        for cluster, level in zip(self.clusters, levels):
            cluster.set_level(int(level))

    # ------------------------------------------------------------------
    # Epoch stepping
    # ------------------------------------------------------------------
    def step_epoch(self) -> EpochRecord:
        """Run one DVFS epoch on every cluster and account power.

        Counter building and power accounting are vectorised over the
        clusters: one ``(clusters, slots)`` activity matrix feeds one
        counter-matrix build and one batched power evaluation instead of
        per-cluster scalar passes.
        """
        if self.finished:
            raise SimulationError("cannot step a finished simulation")
        if self._vectorized:
            return self._step_epoch_vectorized()
        activities: list[EpochActivity] = []
        levels = self.levels
        for cluster in self.clusters:
            activities.append(cluster.run_epoch(self.epoch_s))

        activity_matrix = np.stack([a.as_vector() for a in activities])
        counters_matrix = build_counters_matrix(activity_matrix, self.arch)
        dynamic_w, static_w, energy_j = self.power_model.cluster_power_batch(
            activities, matrix=activity_matrix)
        counters_matrix[:, COUNTER_INDEX["power_per_core"]] = (dynamic_w
                                                               + static_w)
        counters_matrix[:, COUNTER_INDEX["power_dynamic"]] = dynamic_w
        counters_matrix[:, COUNTER_INDEX["power_static"]] = static_w
        counters_matrix[:, COUNTER_INDEX["energy_epoch"]] = energy_j
        cluster_counters = [CounterSet.from_vector(row)
                            for row in counters_matrix]
        cluster_energy = float(energy_j.sum())
        uncore = self.power_model.uncore_power(activities, self.epoch_s,
                                               matrix=activity_matrix)

        all_finished = all(a.finished for a in activities)
        finish_time = max((a.busy_s for a in activities), default=0.0)
        record = EpochRecord(
            index=self.epoch_index,
            start_time_s=self.time_s,
            duration_s=self.epoch_s,
            levels=levels,
            counters=CounterSet.from_vector(counters_matrix.mean(axis=0)),
            cluster_counters=cluster_counters,
            instructions=sum(a.instructions for a in activities),
            cluster_energy_j=cluster_energy,
            uncore_energy_j=uncore.energy_j,
            all_finished=all_finished,
            finish_time_s=finish_time,
        )
        self.time_s += self.epoch_s
        self.epoch_index += 1
        return record

    def _step_epoch_vectorized(self) -> EpochRecord:
        """Batched :meth:`step_epoch`: one quantum-kernel call for all
        clusters, no per-cluster activity objects, bit-identical output.
        """
        levels = self.levels
        result = run_epoch_batch(self.clusters, self.epoch_s,
                                 matrix_out=self._activity_buf)
        activity_matrix = result.matrix
        counters_matrix = build_counters_matrix(activity_matrix, self.arch)
        dynamic_w, static_w, energy_j = self.power_model.cluster_power_batch(
            None, matrix=activity_matrix, durations=self._durations,
            voltages=self._voltage_by_level[levels])
        counters_matrix[:, COUNTER_INDEX["power_per_core"]] = (dynamic_w
                                                               + static_w)
        counters_matrix[:, COUNTER_INDEX["power_dynamic"]] = dynamic_w
        counters_matrix[:, COUNTER_INDEX["power_static"]] = static_w
        counters_matrix[:, COUNTER_INDEX["energy_epoch"]] = energy_j
        cluster_counters = [CounterSet.from_vector(row)
                            for row in counters_matrix]
        cluster_energy = float(energy_j.sum())
        uncore = self.power_model.uncore_power(None, self.epoch_s,
                                               matrix=activity_matrix)

        record = EpochRecord(
            index=self.epoch_index,
            start_time_s=self.time_s,
            duration_s=self.epoch_s,
            levels=levels,
            counters=CounterSet.from_vector(counters_matrix.mean(axis=0)),
            cluster_counters=cluster_counters,
            instructions=sum(result.instructions.tolist()),
            cluster_energy_j=cluster_energy,
            uncore_energy_j=uncore.energy_j,
            all_finished=all(result.finished.tolist()),
            finish_time_s=max(activity_matrix[:, A_BUSY_S].tolist(),
                              default=0.0),
        )
        self.time_s += self.epoch_s
        self.epoch_index += 1
        return record

    def _final_epoch_adjustment(self, record: EpochRecord) -> tuple[float, float]:
        """Effective (time, energy) of a run-ending epoch.

        Clusters finish mid-epoch; the program is done once the last
        busy cluster drains, so the idle tail's static/clock power is
        refunded and time is truncated to the drain point.  This is the
        non-mutating variant; :meth:`truncate_final_record` additionally
        rewrites the record so stored records stay consistent with the
        energy account.
        """
        effective_time = min(record.duration_s, max(record.finish_time_s, 1e-12))
        unused = record.duration_s - effective_time
        static_total = sum(c["power_static"] for c in record.cluster_counters)
        static_total += self.power_model.config.uncore_static_w
        refund = unused * static_total
        effective_energy = max(0.0, record.energy_j - refund)
        return effective_time, effective_energy

    def truncate_final_record(self, record: EpochRecord
                              ) -> tuple[float, float]:
        """Truncate a run-ending record *in place* to the drain point.

        Historically only the energy account was adjusted while the
        record kept its full ``duration_s``, so ``RunResult.time_s``
        disagreed with the summed record durations by up to one epoch.
        Mutating the record keeps the two views consistent: the idle
        tail's time is cut and its static/clock energy refunded per
        component (cluster vs uncore), mirroring
        :meth:`_final_epoch_adjustment`'s totals.
        """
        effective_time = min(record.duration_s,
                             max(record.finish_time_s, 1e-12))
        unused = record.duration_s - effective_time
        cluster_static = sum(c["power_static"]
                             for c in record.cluster_counters)
        uncore_static = self.power_model.config.uncore_static_w
        record.duration_s = effective_time
        record.cluster_energy_j = max(
            0.0, record.cluster_energy_j - unused * cluster_static)
        record.uncore_energy_j = max(
            0.0, record.uncore_energy_j - unused * uncore_static)
        return record.duration_s, record.energy_j

    def run(self, policy: DVFSPolicy, max_epochs: int = 100_000,
            keep_records: bool = True) -> RunResult:
        """Run the kernel to completion under ``policy``.

        The returned result is internally consistent: the final partial
        epoch's record is truncated to the drain point, so
        ``RunResult.time_s`` equals the sum of the record durations and
        ``RunResult.energy_j`` the sum of the record energies.
        """
        policy.reset(self)
        account = EnergyAccount()
        records: list[EpochRecord] = []
        epochs = 0
        while not self.finished:
            if epochs >= max_epochs:
                raise SimulationError(
                    f"run exceeded {max_epochs} epochs; kernel "
                    f"{self.workload_name!r} may be too long for this budget"
                )
            record = self.step_epoch()
            epochs += 1
            if record.all_finished:
                time_s, energy_j = self.truncate_final_record(record)
                account.add(energy_j, time_s)
            else:
                account.add(record.energy_j, record.duration_s)
                decision = policy.decide(record)
                self.apply_decision(decision)
            if keep_records:
                records.append(record)
        return RunResult(
            policy_name=policy.name,
            kernel_name=self.workload_name,
            account=account,
            epochs=epochs,
            records=records,
        )

    def run_epochs_at_level(self, level: int, num_epochs: int) -> list[EpochRecord]:
        """Run ``num_epochs`` epochs pinned at one operating point."""
        self.set_all_levels(level)
        records = []
        for _ in range(num_epochs):
            if self.finished:
                break
            records.append(self.step_epoch())
        return records

    def run_until_instructions(self, target_mean_instructions: float,
                               max_epochs: int = 100_000) -> list[EpochRecord]:
        """Run at current levels until the mean per-cluster instruction
        count reaches ``target_mean_instructions`` (or the kernel ends).

        This is the "resume until the breakpoint-relative workload mark"
        primitive of the data-generation protocol (§III-A): total
        workload is held constant across V/f variants by running to an
        instruction mark, not to a time mark.

        The mark is crossed mid-epoch, and the final record deliberately
        keeps its full ``duration_s`` — no truncation is applied because
        the simulator genuinely ran (and spent energy over) the whole
        epoch.  Callers needing sub-epoch resolution interpolate within
        that final epoch, as the protocol's ``_time_to_reach_mark``
        does.
        """
        records = []
        epochs = 0
        while (not self.finished
               and self.mean_instructions_done() < target_mean_instructions):
            if epochs >= max_epochs:
                raise SimulationError("instruction mark never reached")
            records.append(self.step_epoch())
            epochs += 1
        return records

    # ------------------------------------------------------------------
    # Snapshots (for data-generation replay)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Capture full replayable simulator state.

        The cluster snapshots cover every piece of mutable run state
        (cursor position, operating point, pending transition charge);
        the noise tracks are position-indexed and deterministic per
        seed, so they need no capture — *provided* the restoring
        simulator was built with the same seed.  The seed is therefore
        recorded and validated on restore: a different-seed simulator
        would silently replay different noise/skew streams.
        """
        return {
            "kernel_name": self.workload_name,
            "epoch_s": self.epoch_s,
            "seed": self.seed,
            "time_s": self.time_s,
            "epoch_index": self.epoch_index,
            "clusters": [c.snapshot() for c in self.clusters],
        }

    def restore(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`snapshot` on this instance."""
        if state.get("kernel_name") != self.workload_name:
            raise SnapshotError(
                "snapshot belongs to a different workload "
                f"({state.get('kernel_name')!r} != {self.workload_name!r})"
            )
        snapshot_epoch = state.get("epoch_s", self.epoch_s)
        if snapshot_epoch != self.epoch_s:
            raise SnapshotError(
                f"snapshot taken with epoch length {snapshot_epoch!r}, "
                f"simulator runs {self.epoch_s!r}; resuming would silently "
                "mix epoch timings"
            )
        snapshot_seed = state.get("seed", self.seed)
        if snapshot_seed != self.seed:
            raise SnapshotError(
                f"snapshot taken with seed {snapshot_seed!r}, simulator "
                f"built with {self.seed!r}; the noise/skew streams would "
                "diverge and the replayed epoch stream would not match"
            )
        if len(state["clusters"]) != len(self.clusters):
            raise SnapshotError("snapshot cluster count mismatch")
        self.time_s = state["time_s"]
        self.epoch_index = state["epoch_index"]
        for cluster, cluster_state in zip(self.clusters, state["clusters"]):
            cluster.restore(cluster_state)
