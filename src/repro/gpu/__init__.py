"""GPGPU-Sim surrogate: architecture, kernels, interval model, simulator."""

from .arch import GPUArchConfig, small_test_config, titan_x_config
from .cluster import ClusterState, EpochActivity, build_counters
from .counters import (COUNTER_NAMES, COUNTER_SCHEMA, DIRECT_FEATURE_NAMES,
                       INDIRECT_FEATURE_NAMES, NUM_COUNTERS, PAPER_ALIASES,
                       CounterCategory, CounterSet, paper_category)
from .interval_model import (ThroughputSolution, effective_cpi,
                             frequency_sensitivity, solve_throughput)
from .kernels import KernelCursor, KernelProfile
from .noise import AR1Jitter, WorkloadNoise
from .phases import (INSTRUCTION_CLASSES, Phase, balanced_phase,
                     compute_phase, divergent_phase, make_mix, memory_phase)
from .simulator import (DEFAULT_EPOCH_S, DVFSPolicy, EpochRecord,
                        GPUSimulator, RunResult)
from .vf import (OperatingPoint, VFTable, interpolated_vf_table,
                 titan_x_vf_table)

__all__ = [
    "GPUArchConfig", "small_test_config", "titan_x_config",
    "ClusterState", "EpochActivity", "build_counters",
    "COUNTER_NAMES", "COUNTER_SCHEMA", "DIRECT_FEATURE_NAMES",
    "INDIRECT_FEATURE_NAMES", "NUM_COUNTERS", "PAPER_ALIASES",
    "CounterCategory", "CounterSet", "paper_category",
    "ThroughputSolution", "effective_cpi", "frequency_sensitivity",
    "solve_throughput",
    "KernelCursor", "KernelProfile",
    "AR1Jitter", "WorkloadNoise",
    "INSTRUCTION_CLASSES", "Phase", "balanced_phase", "compute_phase",
    "divergent_phase", "make_mix", "memory_phase",
    "DEFAULT_EPOCH_S", "DVFSPolicy", "EpochRecord", "GPUSimulator",
    "RunResult",
    "OperatingPoint", "VFTable", "interpolated_vf_table",
    "titan_x_vf_table",
]
