"""Loss functions (value + gradient w.r.t. network output)."""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable row-wise softmax."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class SoftmaxCrossEntropy:
    """Cross-entropy over integer class labels, softmax applied here."""

    name = "softmax-cross-entropy"

    def __call__(self, logits: np.ndarray,
                 labels: np.ndarray) -> tuple[float, np.ndarray]:
        labels = np.asarray(labels)
        if logits.ndim != 2:
            raise TrainingError("logits must be 2-D (batch, classes)")
        if labels.shape != (logits.shape[0],):
            raise TrainingError(
                f"labels shape {labels.shape} does not match batch "
                f"{logits.shape[0]}"
            )
        if labels.min() < 0 or labels.max() >= logits.shape[1]:
            raise TrainingError("label out of range for logit width")
        n = logits.shape[0]
        probs = softmax(logits)
        picked = probs[np.arange(n), labels]
        loss = float(-np.log(np.clip(picked, 1e-12, None)).mean())
        grad = probs.copy()
        grad[np.arange(n), labels] -= 1.0
        return loss, grad / n


class MeanSquaredError:
    """MSE over continuous targets of shape (batch, outputs)."""

    name = "mse"

    def __call__(self, predictions: np.ndarray,
                 targets: np.ndarray) -> tuple[float, np.ndarray]:
        targets = np.asarray(targets, dtype=np.float64)
        if targets.ndim == 1:
            targets = targets[:, None]
        if predictions.shape != targets.shape:
            raise TrainingError(
                f"prediction shape {predictions.shape} != target shape "
                f"{targets.shape}"
            )
        diff = predictions - targets
        loss = float((diff ** 2).mean())
        grad = 2.0 * diff / diff.size
        return loss, grad
