"""Mini-batch training loop with validation-based early stopping."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import TrainingError
from .losses import MeanSquaredError, SoftmaxCrossEntropy
from .mlp import MLP
from .optim import SGD, Adam


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of one training run."""

    epochs: int = 80
    batch_size: int = 64
    learning_rate: float = 1e-3
    validation_fraction: float = 0.15
    patience: int = 10
    optimizer: str = "adam"
    momentum: float = 0.9
    min_delta: float = 1e-4
    weight_decay: float = 0.0
    gradient_clip: float = 0.0  # 0 disables
    lr_decay: float = 1.0       # multiplicative, applied every lr_step
    lr_step: int = 0            # 0 disables the schedule
    seed: int = 0

    def __post_init__(self) -> None:
        if self.min_delta < 0:
            raise TrainingError("min_delta cannot be negative")
        if self.epochs <= 0:
            raise TrainingError("epochs must be positive")
        if self.batch_size <= 0:
            raise TrainingError("batch_size must be positive")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise TrainingError("validation_fraction must be in [0, 1)")
        if self.patience <= 0:
            raise TrainingError("patience must be positive")
        if self.optimizer not in ("adam", "sgd"):
            raise TrainingError(f"unknown optimizer {self.optimizer!r}")
        if self.weight_decay < 0:
            raise TrainingError("weight_decay cannot be negative")
        if self.gradient_clip < 0:
            raise TrainingError("gradient_clip cannot be negative")
        if not 0.0 < self.lr_decay <= 1.0:
            raise TrainingError("lr_decay must be in (0, 1]")
        if self.lr_step < 0:
            raise TrainingError("lr_step cannot be negative")


@dataclass
class TrainHistory:
    """Per-epoch losses and the early-stopping outcome."""

    train_losses: list[float] = field(default_factory=list)
    val_losses: list[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        """Number of epochs actually executed."""
        return len(self.train_losses)

    @property
    def best_val_loss(self) -> float:
        """Validation loss at the restored checkpoint."""
        if not self.val_losses:
            raise TrainingError("no validation history")
        return self.val_losses[self.best_epoch]


def _make_optimizer(model: MLP, config: TrainConfig):
    if config.optimizer == "adam":
        return Adam(model, learning_rate=config.learning_rate)
    return SGD(model, learning_rate=config.learning_rate,
               momentum=config.momentum)


def _clip_gradients(model: MLP, max_norm: float) -> None:
    """Scale all gradients so their global L2 norm fits ``max_norm``."""
    total = 0.0
    for layer in model.layers:
        total += float((layer.grad_weights ** 2).sum())
        total += float((layer.grad_bias ** 2).sum())
    norm = np.sqrt(total)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for layer in model.layers:
            layer.grad_weights *= scale
            layer.grad_bias *= scale


def _forward_into(model: MLP, x: np.ndarray,
                  buffers: list[np.ndarray]) -> np.ndarray:
    """Inference forward writing each layer's output into ``buffers``.

    Runs the exact inference-path ops of :meth:`Dense.forward`
    (masked-weight matmul, in-place bias add, in-place relu) with
    preallocated destinations, so the repeated validation pass of the
    training loop stops allocating fresh activation arrays every epoch.
    """
    for layer, buffer in zip(model.layers, buffers):
        np.matmul(x, layer._masked_weights(), out=buffer)
        buffer += layer.bias
        if layer.activation == "relu":
            np.maximum(buffer, 0.0, out=buffer)
        x = buffer
    return x


def fit(model: MLP, features: np.ndarray, targets: np.ndarray, loss_fn,
        config: TrainConfig | None = None) -> TrainHistory:
    """Train ``model`` in place; returns the training history.

    The model is restored to its best-validation-loss checkpoint before
    returning.  With ``validation_fraction == 0`` the train loss doubles
    as the early-stopping signal.
    """
    config = config or TrainConfig()
    features = np.asarray(features, dtype=np.float64)
    targets = np.asarray(targets)
    if features.ndim != 2:
        raise TrainingError("features must be 2-D (samples, width)")
    if features.shape[0] != targets.shape[0]:
        raise TrainingError("features/targets row-count mismatch")
    if features.shape[0] < 2:
        raise TrainingError("need at least two samples to train")
    if features.shape[1] != model.input_size:
        raise TrainingError(
            f"model expects width {model.input_size}, data has "
            f"{features.shape[1]}"
        )

    rng = np.random.default_rng(config.seed)
    order = rng.permutation(features.shape[0])
    n_val = int(features.shape[0] * config.validation_fraction)
    val_idx, train_idx = order[:n_val], order[n_val:]
    if train_idx.size == 0:
        raise TrainingError("validation split leaves no training data")
    x_train, y_train = features[train_idx], targets[train_idx]
    x_val, y_val = features[val_idx], targets[val_idx]

    optimizer = _make_optimizer(model, config)
    history = TrainHistory()
    best_loss = np.inf
    best_layers = None
    since_best = 0
    # Per-epoch shuffle lands in reused buffers, so minibatches are
    # contiguous slices instead of a fresh fancy-indexed copy per batch;
    # the validation pass likewise reuses its activation buffers.
    x_shuffled = np.empty_like(x_train)
    y_shuffled = np.empty_like(y_train)
    val_buffers = ([np.empty((x_val.shape[0], layer.fan_out))
                    for layer in model.layers] if n_val > 0 else [])

    for epoch in range(config.epochs):
        if config.lr_step and epoch and epoch % config.lr_step == 0:
            optimizer.learning_rate *= config.lr_decay
        perm = rng.permutation(x_train.shape[0])
        np.take(x_train, perm, axis=0, out=x_shuffled)
        np.take(y_train, perm, axis=0, out=y_shuffled)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, x_train.shape[0], config.batch_size):
            stop = start + config.batch_size
            outputs = model.forward(x_shuffled[start:stop], train=True)
            loss, grad = loss_fn(outputs, y_shuffled[start:stop])
            model.backward(grad)
            if config.weight_decay > 0:
                for layer in model.layers:
                    layer.grad_weights += config.weight_decay * layer.weights
            if config.gradient_clip > 0:
                _clip_gradients(model, config.gradient_clip)
            optimizer.step()
            epoch_loss += loss
            batches += 1
        history.train_losses.append(epoch_loss / max(1, batches))

        if n_val > 0:
            val_out = _forward_into(model, x_val, val_buffers)
            val_loss, _ = loss_fn(val_out, y_val)
        else:
            val_loss = history.train_losses[-1]
        history.val_losses.append(val_loss)

        if val_loss < best_loss - config.min_delta:
            best_loss = val_loss
            best_layers = [layer.clone() for layer in model.layers]
            history.best_epoch = epoch
            since_best = 0
        else:
            since_best += 1
            if since_best >= config.patience:
                history.stopped_early = True
                break

    if best_layers is not None:
        model.layers = best_layers
    return history


def train_classifier(model: MLP, features: np.ndarray, labels: np.ndarray,
                     config: TrainConfig | None = None) -> TrainHistory:
    """Train a softmax classifier head."""
    labels = np.asarray(labels, dtype=np.int64)
    return fit(model, features, labels, SoftmaxCrossEntropy(), config)


def train_regressor(model: MLP, features: np.ndarray, targets: np.ndarray,
                    config: TrainConfig | None = None) -> TrainHistory:
    """Train an MSE regressor head."""
    targets = np.asarray(targets, dtype=np.float64)
    if targets.ndim == 1:
        targets = targets[:, None]
    return fit(model, features, targets, MeanSquaredError(), config)
