"""FLOPs accounting.

Model complexity in the paper is reported as FLOPs per inference
(Fig. 3, Table II: 6960 FLOPs before compression, 366 after).  We count
a dense layer as ``2 * fan_in * fan_out`` (multiply + add per weight)
plus ``fan_out`` for the bias add and ``fan_out`` for the activation.
For pruned models, only *active* (unmasked) weights count — this is the
"FLOPs with sparsity" number a sparse ASIC datapath would execute.
"""

from __future__ import annotations

from ..errors import ModelError
from .layers import Dense
from .mlp import MLP


def layer_flops(layer: Dense, sparse: bool = False) -> int:
    """FLOPs for one dense layer's forward pass."""
    active = layer.num_active_weights if sparse else layer.weights.size
    return 2 * active + 2 * layer.fan_out


def model_flops(model: MLP, sparse: bool = False) -> int:
    """FLOPs for one full forward pass of ``model``."""
    if not model.layers:
        raise ModelError("model has no layers")
    return sum(layer_flops(layer, sparse=sparse) for layer in model.layers)


def combined_flops(models: list[MLP], sparse: bool = False) -> int:
    """Total FLOPs of several networks evaluated per decision epoch."""
    return sum(model_flops(model, sparse=sparse) for model in models)


def macs(model: MLP, sparse: bool = False) -> int:
    """Multiply-accumulate count (half the weight FLOPs)."""
    total = 0
    for layer in model.layers:
        total += layer.num_active_weights if sparse else layer.weights.size
    return total
