"""Multi-layer perceptron.

The paper's Decision-maker and Calibrator are small ReLU MLPs
(§III-D).  :class:`MLP` is a plain sequential stack of
:class:`~repro.nn.layers.Dense` layers: hidden layers use ReLU, the
output layer is linear (softmax/MSE live in the loss functions).
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .layers import Dense


class MLP:
    """A sequential fully connected network.

    Parameters
    ----------
    layer_sizes:
        ``[input, hidden..., output]`` widths; at least ``[in, out]``.
    rng:
        Generator used for weight init (determinism).
    """

    def __init__(self, layer_sizes: list[int],
                 rng: np.random.Generator | None = None) -> None:
        if len(layer_sizes) < 2:
            raise ModelError("need at least input and output sizes")
        if any(s <= 0 for s in layer_sizes):
            raise ModelError("layer sizes must be positive")
        rng = rng or np.random.default_rng(0)
        self.layers: list[Dense] = []
        for index, (fan_in, fan_out) in enumerate(
                zip(layer_sizes, layer_sizes[1:])):
            is_output = index == len(layer_sizes) - 2
            activation = "linear" if is_output else "relu"
            initializer = "xavier" if is_output else "he"
            self.layers.append(
                Dense(fan_in, fan_out, activation=activation, rng=rng,
                      initializer=initializer)
            )

    # ------------------------------------------------------------------
    @property
    def input_size(self) -> int:
        """Expected feature-vector width."""
        return self.layers[0].fan_in

    @property
    def output_size(self) -> int:
        """Output width (classes or regression targets)."""
        return self.layers[-1].fan_out

    @property
    def layer_sizes(self) -> list[int]:
        """Current ``[input, hidden..., output]`` widths."""
        return [self.layers[0].fan_in] + [layer.fan_out for layer in self.layers]

    @property
    def num_parameters(self) -> int:
        """Dense parameter count including biases."""
        return sum(layer.num_parameters for layer in self.layers)

    @property
    def num_active_weights(self) -> int:
        """Unpruned weight count (excludes biases)."""
        return sum(layer.num_active_weights for layer in self.layers)

    @property
    def sparsity(self) -> float:
        """Fraction of weights currently pruned."""
        total = sum(layer.weights.size for layer in self.layers)
        return 1.0 - self.num_active_weights / total if total else 0.0

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        """Run the network on a batch (n, input_size) -> (n, output_size).

        Inference (``train=False``) is the controller's per-epoch hot
        path: layers apply bias/activation in place on the fresh matmul
        output and reuse a preallocated buffer for the pruning-mask
        multiply, so a forward pass allocates one array per layer.
        Stacking all clusters into one batch amortises that and turns N
        vector passes into a single matmul per layer.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate a loss gradient; returns grad w.r.t. inputs."""
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def predict_class(self, x: np.ndarray) -> np.ndarray:
        """Argmax class prediction (for classifier heads)."""
        return np.argmax(self.forward(x), axis=1)

    def predict_scalar(self, x: np.ndarray) -> np.ndarray:
        """Scalar prediction (for single-output regressor heads)."""
        if self.output_size != 1:
            raise ModelError("predict_scalar requires a single-output model")
        return self.forward(x)[:, 0]

    # ------------------------------------------------------------------
    def clone(self) -> "MLP":
        """Deep copy of the network."""
        copy = MLP.__new__(MLP)
        copy.layers = [layer.clone() for layer in self.layers]
        return copy

    def apply_masks(self) -> None:
        """Re-zero all masked weights (after optimizer steps)."""
        for layer in self.layers:
            layer.apply_mask()

    def remove_hidden_neurons(self, layer_index: int,
                              neuron_indices: list[int]) -> None:
        """Remove hidden neurons from layer ``layer_index``.

        Deletes the output units of the layer and the corresponding
        input rows of the next layer.  The output layer cannot be
        shrunk (its width is the task's class/target count).
        """
        if not 0 <= layer_index < len(self.layers) - 1:
            raise ModelError(
                "can only remove neurons from hidden layers "
                f"(got index {layer_index} of {len(self.layers)} layers)"
            )
        self.layers[layer_index].remove_output_units(neuron_indices)
        self.layers[layer_index + 1].remove_input_units(neuron_indices)

    def all_weights(self) -> np.ndarray:
        """Concatenated view (copy) of every effective weight."""
        return np.concatenate(
            [layer.effective_weights.ravel() for layer in self.layers])
