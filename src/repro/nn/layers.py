"""Fully connected layers with pruning masks.

Each :class:`Dense` layer carries an element-wise binary mask over its
weight matrix.  The mask is the mechanism behind fine-grained magnitude
pruning (§IV-C): masked weights are held at zero through forward,
backward *and* optimizer updates, so fine-tuning a pruned model cannot
resurrect pruned connections.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .initializers import get_initializer

_ACTIVATIONS = ("relu", "linear")


class Dense:
    """A fully connected layer ``y = act(x @ (W * mask) + b)``."""

    def __init__(self, fan_in: int, fan_out: int, activation: str = "relu",
                 rng: np.random.Generator | None = None,
                 initializer: str = "he") -> None:
        if fan_in <= 0 or fan_out <= 0:
            raise ModelError("layer dimensions must be positive")
        if activation not in _ACTIVATIONS:
            raise ModelError(
                f"unknown activation {activation!r}; choose from {_ACTIVATIONS}"
            )
        rng = rng or np.random.default_rng(0)
        init = get_initializer(initializer)
        self.weights = init(rng, fan_in, fan_out)
        self.bias = np.zeros(fan_out)
        self.mask = np.ones_like(self.weights)
        self.activation = activation
        # Gradients and caches (populated by forward/backward).
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)
        self._cache_input: np.ndarray | None = None
        self._cache_preact: np.ndarray | None = None
        # Reusable destination for the mask multiply in `forward`; the
        # product itself is recomputed every call (weights/mask may have
        # changed), only the allocation is amortised.
        self._eff_buffer: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def fan_in(self) -> int:
        """Input width."""
        return self.weights.shape[0]

    @property
    def fan_out(self) -> int:
        """Output width."""
        return self.weights.shape[1]

    @property
    def effective_weights(self) -> np.ndarray:
        """Weights with the pruning mask applied."""
        return self.weights * self.mask

    @property
    def num_parameters(self) -> int:
        """Total (dense) parameter count including biases."""
        return self.weights.size + self.bias.size

    @property
    def num_active_weights(self) -> int:
        """Unpruned weight count."""
        return int(self.mask.sum())

    def _masked_weights(self) -> np.ndarray:
        """Mask-applied weights written into the reusable buffer."""
        buffer = self._eff_buffer
        if (buffer is None or buffer.shape != self.weights.shape
                or not buffer.flags.writeable):
            buffer = self._eff_buffer = np.empty_like(self.weights)
        np.multiply(self.weights, self.mask, out=buffer)
        return buffer

    def __getstate__(self) -> dict:
        # Scratch buffers and training caches are per-process state:
        # dropping them keeps pickles lean and stops shared-memory
        # transports from turning them into read-only views.
        state = self.__dict__.copy()
        state["_eff_buffer"] = None
        state["_cache_input"] = None
        state["_cache_preact"] = None
        return state

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        """Forward pass over a batch ``x`` of shape (n, fan_in)."""
        if x.ndim != 2 or x.shape[1] != self.fan_in:
            raise ModelError(
                f"expected input of shape (n, {self.fan_in}), got {x.shape}"
            )
        weights = self._masked_weights()
        if train:
            # The pre-activation cache must stay pristine for backward,
            # so the training path keeps the out-of-place ops.
            preact = x @ weights + self.bias
            self._cache_input = x
            self._cache_preact = preact
            if self.activation == "relu":
                return np.maximum(preact, 0.0)
            return preact
        preact = x @ weights
        preact += self.bias
        if self.activation == "relu":
            np.maximum(preact, 0.0, out=preact)
        return preact

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backward pass; returns gradient w.r.t. the layer input.

        Must follow a ``forward(..., train=True)`` call.
        """
        if self._cache_input is None or self._cache_preact is None:
            raise ModelError("backward called before forward(train=True)")
        if self.activation == "relu":
            grad_pre = grad_out * (self._cache_preact > 0.0)
        else:
            grad_pre = grad_out
        self.grad_weights = (self._cache_input.T @ grad_pre) * self.mask
        self.grad_bias = grad_pre.sum(axis=0)
        return grad_pre @ self.effective_weights.T

    # ------------------------------------------------------------------
    def apply_mask(self) -> None:
        """Zero out masked weights in place (post-update hygiene)."""
        self.weights *= self.mask

    def clone(self) -> "Dense":
        """Deep copy (weights, bias, mask; caches are not copied)."""
        copy = Dense.__new__(Dense)
        copy.weights = self.weights.copy()
        copy.bias = self.bias.copy()
        copy.mask = self.mask.copy()
        copy.activation = self.activation
        copy.grad_weights = np.zeros_like(self.weights)
        copy.grad_bias = np.zeros_like(self.bias)
        copy._cache_input = None
        copy._cache_preact = None
        copy._eff_buffer = None
        return copy

    def remove_output_units(self, indices: list[int]) -> None:
        """Delete output neurons (columns) — used by neuron pruning."""
        if not indices:
            return
        keep = ~np.isin(np.arange(self.fan_out), indices)
        if not keep.any():
            raise ModelError("cannot remove every neuron in a layer")
        self.weights = self.weights[:, keep]
        self.bias = self.bias[keep]
        self.mask = self.mask[:, keep]
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)
        self._eff_buffer = None

    def remove_input_units(self, indices: list[int]) -> None:
        """Delete input connections (rows) — follows upstream removal."""
        if not indices:
            return
        keep = ~np.isin(np.arange(self.fan_in), indices)
        if not keep.any():
            raise ModelError("cannot remove every input of a layer")
        self.weights = self.weights[keep, :]
        self.mask = self.mask[keep, :]
        self.grad_weights = np.zeros_like(self.weights)
