"""Evaluation metrics: accuracy, MAPE, confusion matrix.

The paper reports Decision-maker quality as classification accuracy and
Calibrator quality as MAPE (mean absolute percentage error) — Table II.
"""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError


def accuracy(predicted: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact class matches."""
    predicted = np.asarray(predicted)
    labels = np.asarray(labels)
    if predicted.shape != labels.shape:
        raise TrainingError("prediction/label shape mismatch")
    if predicted.size == 0:
        raise TrainingError("cannot compute accuracy of an empty batch")
    return float((predicted == labels).mean())


def within_one_accuracy(predicted: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of predictions within one V/f level of the label.

    DVFS levels are ordinal; off-by-one mistakes cost little, so this is
    a useful secondary metric next to exact accuracy.
    """
    predicted = np.asarray(predicted)
    labels = np.asarray(labels)
    if predicted.shape != labels.shape:
        raise TrainingError("prediction/label shape mismatch")
    if predicted.size == 0:
        raise TrainingError("cannot compute accuracy of an empty batch")
    return float((np.abs(predicted - labels) <= 1).mean())


def mape(predicted: np.ndarray, targets: np.ndarray,
         epsilon: float = 1e-9) -> float:
    """Mean absolute percentage error, in percent."""
    predicted = np.asarray(predicted, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predicted.shape != targets.shape:
        raise TrainingError("prediction/target shape mismatch")
    if predicted.size == 0:
        raise TrainingError("cannot compute MAPE of an empty batch")
    denom = np.maximum(np.abs(targets), epsilon)
    return float((np.abs(predicted - targets) / denom).mean() * 100.0)


def confusion_matrix(predicted: np.ndarray, labels: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """(num_classes, num_classes) count matrix, rows = true labels."""
    predicted = np.asarray(predicted)
    labels = np.asarray(labels)
    if predicted.shape != labels.shape:
        raise TrainingError("prediction/label shape mismatch")
    if num_classes <= 0:
        raise TrainingError("num_classes must be positive")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes
                        or predicted.min() < 0
                        or predicted.max() >= num_classes):
        raise TrainingError("class index out of range")
    if not labels.size:
        return np.zeros((num_classes, num_classes), dtype=np.int64)
    flat = (labels.astype(np.int64).ravel() * num_classes
            + predicted.astype(np.int64).ravel())
    return np.bincount(flat, minlength=num_classes * num_classes).reshape(
        num_classes, num_classes)


def macro_f1(predicted: np.ndarray, labels: np.ndarray,
             num_classes: int) -> float:
    """Macro-averaged F1 over the classes present in the labels."""
    matrix = confusion_matrix(predicted, labels, num_classes)
    true_pos = np.diag(matrix).astype(np.float64)
    support = matrix.sum(axis=1).astype(np.float64)
    false_pos = matrix.sum(axis=0) - true_pos
    false_neg = support - true_pos
    present = support > 0
    if not present.any():
        raise TrainingError("no classes present in labels")
    denom = 2.0 * true_pos + false_pos + false_neg
    # denom > 0 wherever support > 0 (tp + fn = support), so the guard
    # only protects absent classes, which are dropped anyway.
    scores = np.where(denom > 0, 2.0 * true_pos / np.maximum(denom, 1.0), 0.0)
    return float(scores[present].mean())
