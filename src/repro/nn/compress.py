"""Layer-wise compression search and pruning sweeps (paper §IV, Fig. 3).

The paper compresses the combined network two ways and plots both
frontiers in FLOPs-vs-quality space:

* **Layer-wise compression** (§IV-B): retrain from scratch at smaller
  (layers x width) configurations; pick the smallest architecture
  before the accuracy knee (5+4 layers of 20 -> 3+2 layers of 12).
* **Pruning** (§IV-C): magnitude pruning (``x1``) followed by
  neuron-level pruning (``x2``) with fine-tuning, which traces a finer,
  dominant frontier (the paper lands on ``(0.6, 0.9)``).

Quality is Decision-maker accuracy and Calibrator MAPE, evaluated on a
held-out test split.

Both sweeps fan their grid points out through the shared campaign layer
(:func:`repro.parallel.parallel_map` — retries, stall watchdog,
checkpointing and stats come for free) and cache each trained point
content-addressed on ``(spec or prune params, train config, data
fingerprint)``, alongside the datagen and evaluation caches.  A grid
point is deterministic given that key, so re-sweeping after an
interruption or with an overlapping grid trains only the missing
points.  Homogeneous seed-replicated training goes through
:func:`train_pair_replicas`, which fuses all replicas into one
:mod:`repro.nn.population` lockstep pass instead of a Python loop of
scalar trainings.
"""

from __future__ import annotations

import hashlib
import json
import logging
from dataclasses import asdict, dataclass
from functools import partial
from pathlib import Path

import numpy as np

from ..errors import CompressionError
from ..parallel import CampaignCheckpoint, CampaignStats, parallel_map
from ..store import atomic_write_text
from .flops import model_flops
from .metrics import accuracy, mape
from .mlp import MLP
from .population import (PopulationMLP, train_population_classifier,
                         train_population_regressor)
from .prune import prune_model
from .trainer import (TrainConfig, TrainHistory, train_classifier,
                      train_regressor)

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SplitData:
    """Train/test split for one head."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray

    def __post_init__(self) -> None:
        if self.x_train.shape[0] != np.asarray(self.y_train).shape[0]:
            raise CompressionError("train rows mismatch")
        if self.x_test.shape[0] != np.asarray(self.y_test).shape[0]:
            raise CompressionError("test rows mismatch")
        if self.x_train.shape[0] == 0 or self.x_test.shape[0] == 0:
            raise CompressionError("empty split")


@dataclass(frozen=True)
class ArchitectureSpec:
    """Hidden-layer widths for the Decision-maker / Calibrator pair."""

    decision_hidden: tuple[int, ...]
    calibrator_hidden: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.decision_hidden or not self.calibrator_hidden:
            raise CompressionError("both heads need at least one hidden layer")
        if any(w <= 0 for w in self.decision_hidden + self.calibrator_hidden):
            raise CompressionError("hidden widths must be positive")

    @property
    def label(self) -> str:
        """Readable description, e.g. ``D5x20+C4x20``."""
        d = "x".join(str(w) for w in self.decision_hidden)
        c = "x".join(str(w) for w in self.calibrator_hidden)
        return f"D[{d}]+C[{c}]"


#: The paper's uncompressed architecture: 5 decision layers + 4
#: calibrator layers, 20 neurons each (§III-D).
PAPER_BASE_SPEC = ArchitectureSpec((20,) * 5, (20,) * 4)

#: The paper's layer-wise compressed architecture: 3 + 2 layers of 12
#: neurons (§IV-B).
PAPER_COMPRESSED_SPEC = ArchitectureSpec((12,) * 3, (12,) * 2)

#: The paper's final pruning parameters (§IV-C).
PAPER_PRUNE_PARAMS = (0.6, 0.9)


@dataclass(frozen=True)
class CompressionPoint:
    """One point on a FLOPs-vs-quality frontier."""

    label: str
    method: str  # "layerwise" or "pruning"
    flops: int
    accuracy_pct: float
    mape_pct: float
    decision_sizes: tuple[int, ...]
    calibrator_sizes: tuple[int, ...]
    sparsity: float = 0.0


@dataclass
class TrainedPair:
    """A trained Decision-maker / Calibrator model pair."""

    decision: MLP
    calibrator: MLP
    accuracy_pct: float
    mape_pct: float
    decision_history: TrainHistory | None = None
    calibrator_history: TrainHistory | None = None

    @property
    def flops_dense(self) -> int:
        """Dense FLOPs per decision epoch (both heads)."""
        return model_flops(self.decision) + model_flops(self.calibrator)

    @property
    def flops_sparse(self) -> int:
        """Sparse FLOPs per decision epoch (both heads)."""
        return (model_flops(self.decision, sparse=True)
                + model_flops(self.calibrator, sparse=True))

    @property
    def epochs_run(self) -> int:
        """Training epochs over both heads (0 when histories absent)."""
        return sum(h.epochs_run for h in
                   (self.decision_history, self.calibrator_history) if h)


def evaluate_pair(decision: MLP, calibrator: MLP, decision_data: SplitData,
                  calibrator_data: SplitData) -> tuple[float, float]:
    """Test-set accuracy (%) and MAPE (%) of a model pair."""
    acc = accuracy(decision.predict_class(decision_data.x_test),
                   decision_data.y_test) * 100.0
    err = mape(calibrator.predict_scalar(calibrator_data.x_test),
               calibrator_data.y_test)
    return acc, err


def train_pair(spec: ArchitectureSpec, decision_data: SplitData,
               calibrator_data: SplitData, num_levels: int,
               config: TrainConfig | None = None,
               seed: int = 0) -> TrainedPair:
    """Train a fresh Decision-maker / Calibrator pair at ``spec``."""
    config = config or TrainConfig()
    rng = np.random.default_rng(seed)
    decision = MLP([decision_data.x_train.shape[1], *spec.decision_hidden,
                    num_levels], rng=rng)
    calibrator = MLP([calibrator_data.x_train.shape[1],
                      *spec.calibrator_hidden, 1], rng=rng)
    decision_history = train_classifier(decision, decision_data.x_train,
                                        decision_data.y_train, config)
    calibrator_history = train_regressor(calibrator, calibrator_data.x_train,
                                         calibrator_data.y_train, config)
    acc, err = evaluate_pair(decision, calibrator, decision_data,
                             calibrator_data)
    return TrainedPair(decision, calibrator, acc, err,
                       decision_history, calibrator_history)


def train_pair_replicas(spec: ArchitectureSpec, decision_data: SplitData,
                        calibrator_data: SplitData, num_levels: int,
                        config: TrainConfig | None = None,
                        seeds: tuple[int, ...] = (0,),
                        stats: CampaignStats | None = None
                        ) -> list[TrainedPair]:
    """Train ``spec`` at several init seeds in one fused population pass.

    Replica ``i`` initialises its models exactly like
    ``train_pair(spec, ..., seed=seeds[i])`` (one generator shared by
    the Decision-maker then the Calibrator) and trains on the same
    ``config.seed`` data split, so each returned pair matches its
    serial counterpart to BLAS rounding — but all replicas share one
    lockstep loop per head instead of ``len(seeds)`` scalar trainings.
    """
    if not seeds:
        raise CompressionError("need at least one replica seed")
    config = config or TrainConfig()
    stats = stats if stats is not None else CampaignStats()
    decision_models, calibrator_models = [], []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        decision_models.append(
            MLP([decision_data.x_train.shape[1], *spec.decision_hidden,
                 num_levels], rng=rng))
        calibrator_models.append(
            MLP([calibrator_data.x_train.shape[1], *spec.calibrator_hidden,
                 1], rng=rng))
    decision_pop = PopulationMLP.from_models(decision_models)
    calibrator_pop = PopulationMLP.from_models(calibrator_models)
    with stats.stage("population_train", tasks=2 * len(seeds)):
        decision_histories = train_population_classifier(
            decision_pop, decision_data.x_train, decision_data.y_train,
            config)
        calibrator_histories = train_population_regressor(
            calibrator_pop, calibrator_data.x_train,
            calibrator_data.y_train, config)
    pairs = []
    for index in range(len(seeds)):
        decision = decision_pop.member(index)
        calibrator = calibrator_pop.member(index)
        acc, err = evaluate_pair(decision, calibrator, decision_data,
                                 calibrator_data)
        pairs.append(TrainedPair(decision, calibrator, acc, err,
                                 decision_histories[index],
                                 calibrator_histories[index]))
    stats.count("train_models", 2 * len(seeds))
    stats.count("train_epochs", sum(pair.epochs_run for pair in pairs))
    return pairs


def default_layerwise_grid() -> list[ArchitectureSpec]:
    """The (layers x width) grid swept for Fig. 3's layer-wise curve."""
    specs = [PAPER_BASE_SPEC]
    for depth_pair in ((4, 3), (3, 2), (2, 2), (2, 1)):
        for width in (20, 16, 12, 8, 4):
            specs.append(ArchitectureSpec((width,) * depth_pair[0],
                                          (width,) * depth_pair[1]))
    return specs


# ---------------------------------------------------------------------------
# Content-addressed sweep cache
# ---------------------------------------------------------------------------

def _hash_arrays(*arrays: np.ndarray) -> str:
    digest = hashlib.sha256()
    for array in arrays:
        array = np.ascontiguousarray(array)
        digest.update(str(array.shape).encode())
        digest.update(str(array.dtype).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()[:16]


def split_fingerprint(data: SplitData) -> str:
    """Stable content hash of one head's train/test split."""
    return _hash_arrays(np.asarray(data.x_train), np.asarray(data.y_train),
                        np.asarray(data.x_test), np.asarray(data.y_test))


def pair_fingerprint(pair: TrainedPair) -> str:
    """Stable content hash of a trained pair's weights/biases/masks."""
    arrays = []
    for model in (pair.decision, pair.calibrator):
        for layer in model.layers:
            arrays.extend((layer.weights, layer.bias, layer.mask))
    return _hash_arrays(*arrays)


def sweep_cache_key(payload: dict) -> str:
    """Content key of one sweep point (datagen cache scheme)."""
    # Imported lazily: datagen.rfe imports this package, so a module-
    # level import of datagen from here would be circular.
    from ..datagen.cache import content_key
    return content_key(payload)


def _point_payload(point: CompressionPoint) -> dict:
    payload = asdict(point)
    payload["decision_sizes"] = list(point.decision_sizes)
    payload["calibrator_sizes"] = list(point.calibrator_sizes)
    return payload


def _point_from_payload(payload: dict) -> CompressionPoint:
    return CompressionPoint(
        label=payload["label"],
        method=payload["method"],
        flops=int(payload["flops"]),
        accuracy_pct=float(payload["accuracy_pct"]),
        mape_pct=float(payload["mape_pct"]),
        decision_sizes=tuple(payload["decision_sizes"]),
        calibrator_sizes=tuple(payload["calibrator_sizes"]),
        sparsity=float(payload["sparsity"]),
    )


def _load_cached_point(path: Path, counters: dict[str, int]
                       ) -> dict | None:
    """Read one cached sweep point; corrupt files are counted misses."""
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
        _point_from_payload(payload)  # validate before trusting it
    except Exception:
        logger.warning("corrupt sweep cache %s; retraining", path,
                       exc_info=True)
        counters["sweep_cache_corrupt"] = (
            counters.get("sweep_cache_corrupt", 0) + 1)
        return None
    return payload


def _store_cached_point(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    # Crash-consistent: a kill mid-save leaves the previous point (or
    # nothing), never a torn JSON the next sweep would discard.
    atomic_write_text(path, json.dumps(payload, sort_keys=True))


# ---------------------------------------------------------------------------
# Layer-wise sweep (campaign fan-out + cache)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _LayerwiseContext:
    """Picklable shared state of one layer-wise campaign."""

    decision_data: SplitData
    calibrator_data: SplitData
    num_levels: int
    config: TrainConfig
    seed: int
    data_key: str
    cache_dir: str | None
    use_cache: bool


def _layerwise_point_key(ctx: _LayerwiseContext, spec: ArchitectureSpec,
                         seed: int) -> str:
    return sweep_cache_key({
        "kind": "layerwise",
        "decision_hidden": list(spec.decision_hidden),
        "calibrator_hidden": list(spec.calibrator_hidden),
        "num_levels": ctx.num_levels,
        "config": asdict(ctx.config),
        "seed": seed,
        "data": ctx.data_key,
    })


def _run_layerwise_task(ctx: _LayerwiseContext,
                        task: tuple[int, ArchitectureSpec]
                        ) -> tuple[dict, dict[str, int]]:
    """Train (or load) one architecture grid point; runs in a worker."""
    index, spec = task
    counters: dict[str, int] = {}
    path = None
    if ctx.cache_dir is not None:
        key = _layerwise_point_key(ctx, spec, ctx.seed + index)
        path = Path(ctx.cache_dir) / f"sweep-{key}.json"
        if ctx.use_cache:
            payload = _load_cached_point(path, counters)
            if payload is not None:
                counters["sweep_cache_hit"] = 1
                return payload, counters
    counters["sweep_cache_miss"] = 1
    pair = train_pair(spec, ctx.decision_data, ctx.calibrator_data,
                      ctx.num_levels, ctx.config, seed=ctx.seed + index)
    counters["train_models"] = 2
    counters["train_epochs"] = pair.epochs_run
    payload = _point_payload(CompressionPoint(
        label=spec.label,
        method="layerwise",
        flops=pair.flops_dense,
        accuracy_pct=pair.accuracy_pct,
        mape_pct=pair.mape_pct,
        decision_sizes=tuple(pair.decision.layer_sizes),
        calibrator_sizes=tuple(pair.calibrator.layer_sizes),
    ))
    if path is not None:
        _store_cached_point(path, payload)
    return payload, counters


def layer_wise_sweep(decision_data: SplitData, calibrator_data: SplitData,
                     num_levels: int,
                     specs: list[ArchitectureSpec] | None = None,
                     config: TrainConfig | None = None,
                     seed: int = 0, *,
                     workers: int | None = None,
                     stats: CampaignStats | None = None,
                     cache_dir: str | Path | None = None,
                     use_cache: bool = True, checkpoint: bool = False,
                     retries: int = 2,
                     timeout_s: float | None = None
                     ) -> list[CompressionPoint]:
    """Train every architecture in the grid -> Fig. 3 layer-wise curve.

    Grid points fan out through :func:`repro.parallel.parallel_map`
    (``workers``/``retries``/``timeout_s``/``checkpoint`` behave as in
    the datagen campaigns) and are cached per point under ``cache_dir``
    keyed on (spec, train config, seed, data fingerprint) — counters
    ``sweep_cache_hit`` / ``sweep_cache_miss`` / ``sweep_cache_corrupt``
    and ``train_models`` / ``train_epochs`` land in ``stats``.  Serial
    uncached runs behave exactly like the original in-line loop.
    """
    specs = specs or default_layerwise_grid()
    config = config or TrainConfig()
    stats = stats if stats is not None else CampaignStats()
    data_key = (f"{split_fingerprint(decision_data)}-"
                f"{split_fingerprint(calibrator_data)}")
    ctx = _LayerwiseContext(
        decision_data=decision_data, calibrator_data=calibrator_data,
        num_levels=num_levels, config=config, seed=seed, data_key=data_key,
        cache_dir=str(cache_dir) if cache_dir is not None else None,
        use_cache=use_cache)
    ckpt = None
    if checkpoint and cache_dir is not None:
        campaign_key = sweep_cache_key({
            "kind": "layerwise-campaign", "data": data_key, "seed": seed,
            "config": asdict(config),
            "specs": [spec.label for spec in specs]})
        ckpt = CampaignCheckpoint(
            Path(cache_dir) / f"sweep-layerwise-{campaign_key}.ckpt",
            key=campaign_key)
    outputs = parallel_map(partial(_run_layerwise_task, ctx),
                           list(enumerate(specs)), workers=workers,
                           stats=stats, stage="layerwise_sweep",
                           retries=retries, timeout_s=timeout_s,
                           checkpoint=ckpt)
    points = []
    for payload, counters in outputs:
        stats.merge_counters(counters)
        points.append(_point_from_payload(payload))
    return points


def default_pruning_grid() -> list[tuple[float, float]]:
    """The (x1, x2) grid swept for Fig. 3's pruning curve."""
    grid = []
    for x1 in (0.2, 0.4, 0.6, 0.75, 0.85):
        for x2 in (0.7, 0.9):
            grid.append((x1, x2))
    return grid


def prune_and_finetune(pair: TrainedPair, x1: float, x2: float,
                       decision_data: SplitData, calibrator_data: SplitData,
                       finetune_config: TrainConfig | None = None) -> TrainedPair:
    """Prune a copy of ``pair`` with (x1, x2) and fine-tune it."""
    finetune_config = finetune_config or TrainConfig(
        epochs=40, patience=10, learning_rate=5e-4)
    decision = pair.decision.clone()
    calibrator = pair.calibrator.clone()
    prune_model(decision, x1, x2)
    prune_model(calibrator, x1, x2)
    decision_history = train_classifier(decision, decision_data.x_train,
                                        decision_data.y_train,
                                        finetune_config)
    calibrator_history = train_regressor(calibrator, calibrator_data.x_train,
                                         calibrator_data.y_train,
                                         finetune_config)
    acc, err = evaluate_pair(decision, calibrator, decision_data,
                             calibrator_data)
    return TrainedPair(decision, calibrator, acc, err,
                       decision_history, calibrator_history)


# ---------------------------------------------------------------------------
# Pruning sweep (campaign fan-out + cache)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _PruningContext:
    """Picklable shared state of one pruning campaign."""

    pair: TrainedPair
    decision_data: SplitData
    calibrator_data: SplitData
    finetune_config: TrainConfig
    data_key: str
    pair_key: str
    cache_dir: str | None
    use_cache: bool


def _pruning_point_key(ctx: _PruningContext, x1: float, x2: float) -> str:
    return sweep_cache_key({
        "kind": "pruning",
        "x1": x1,
        "x2": x2,
        "config": asdict(ctx.finetune_config),
        "data": ctx.data_key,
        "pair": ctx.pair_key,
    })


def _run_pruning_task(ctx: _PruningContext, task: tuple[float, float]
                      ) -> tuple[dict, dict[str, int]]:
    """Prune+fine-tune (or load) one grid point; runs in a worker."""
    x1, x2 = task
    counters: dict[str, int] = {}
    path = None
    if ctx.cache_dir is not None:
        key = _pruning_point_key(ctx, x1, x2)
        path = Path(ctx.cache_dir) / f"sweep-{key}.json"
        if ctx.use_cache:
            payload = _load_cached_point(path, counters)
            if payload is not None:
                counters["sweep_cache_hit"] = 1
                return payload, counters
    counters["sweep_cache_miss"] = 1
    pruned = prune_and_finetune(ctx.pair, x1, x2, ctx.decision_data,
                                ctx.calibrator_data, ctx.finetune_config)
    counters["train_models"] = 2
    counters["train_epochs"] = pruned.epochs_run
    total_weights = (sum(l.weights.size for l in pruned.decision.layers)
                     + sum(l.weights.size for l in pruned.calibrator.layers))
    active = (pruned.decision.num_active_weights
              + pruned.calibrator.num_active_weights)
    payload = _point_payload(CompressionPoint(
        label=f"x1={x1:.2f},x2={x2:.2f}",
        method="pruning",
        flops=pruned.flops_sparse,
        accuracy_pct=pruned.accuracy_pct,
        mape_pct=pruned.mape_pct,
        decision_sizes=tuple(pruned.decision.layer_sizes),
        calibrator_sizes=tuple(pruned.calibrator.layer_sizes),
        sparsity=1.0 - active / total_weights,
    ))
    if path is not None:
        _store_cached_point(path, payload)
    return payload, counters


def pruning_sweep(pair: TrainedPair, decision_data: SplitData,
                  calibrator_data: SplitData,
                  grid: list[tuple[float, float]] | None = None,
                  finetune_config: TrainConfig | None = None, *,
                  workers: int | None = None,
                  stats: CampaignStats | None = None,
                  cache_dir: str | Path | None = None,
                  use_cache: bool = True, checkpoint: bool = False,
                  retries: int = 2,
                  timeout_s: float | None = None
                  ) -> list[CompressionPoint]:
    """Prune+fine-tune across the grid -> Fig. 3 pruning curve.

    Fans out and caches like :func:`layer_wise_sweep`; pruning points
    are additionally keyed on the base pair's weight fingerprint, so a
    retrained base invalidates its cached pruning curve.
    """
    grid = grid or default_pruning_grid()
    finetune_config = finetune_config or TrainConfig(
        epochs=40, patience=10, learning_rate=5e-4)
    stats = stats if stats is not None else CampaignStats()
    data_key = (f"{split_fingerprint(decision_data)}-"
                f"{split_fingerprint(calibrator_data)}")
    pair_key = pair_fingerprint(pair)
    ctx = _PruningContext(
        pair=pair, decision_data=decision_data,
        calibrator_data=calibrator_data, finetune_config=finetune_config,
        data_key=data_key, pair_key=pair_key,
        cache_dir=str(cache_dir) if cache_dir is not None else None,
        use_cache=use_cache)
    ckpt = None
    if checkpoint and cache_dir is not None:
        campaign_key = sweep_cache_key({
            "kind": "pruning-campaign", "data": data_key, "pair": pair_key,
            "config": asdict(finetune_config),
            "grid": [[x1, x2] for x1, x2 in grid]})
        ckpt = CampaignCheckpoint(
            Path(cache_dir) / f"sweep-pruning-{campaign_key}.ckpt",
            key=campaign_key)
    outputs = parallel_map(partial(_run_pruning_task, ctx), list(grid),
                           workers=workers, stats=stats,
                           stage="pruning_sweep", retries=retries,
                           timeout_s=timeout_s, checkpoint=ckpt)
    points = []
    for payload, counters in outputs:
        stats.merge_counters(counters)
        points.append(_point_from_payload(payload))
    return points
