"""Layer-wise compression search and pruning sweeps (paper §IV, Fig. 3).

The paper compresses the combined network two ways and plots both
frontiers in FLOPs-vs-quality space:

* **Layer-wise compression** (§IV-B): retrain from scratch at smaller
  (layers x width) configurations; pick the smallest architecture
  before the accuracy knee (5+4 layers of 20 -> 3+2 layers of 12).
* **Pruning** (§IV-C): magnitude pruning (``x1``) followed by
  neuron-level pruning (``x2``) with fine-tuning, which traces a finer,
  dominant frontier (the paper lands on ``(0.6, 0.9)``).

Quality is Decision-maker accuracy and Calibrator MAPE, evaluated on a
held-out test split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CompressionError
from .flops import model_flops
from .metrics import accuracy, mape
from .mlp import MLP
from .prune import prune_model
from .trainer import TrainConfig, train_classifier, train_regressor


@dataclass(frozen=True)
class SplitData:
    """Train/test split for one head."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray

    def __post_init__(self) -> None:
        if self.x_train.shape[0] != np.asarray(self.y_train).shape[0]:
            raise CompressionError("train rows mismatch")
        if self.x_test.shape[0] != np.asarray(self.y_test).shape[0]:
            raise CompressionError("test rows mismatch")
        if self.x_train.shape[0] == 0 or self.x_test.shape[0] == 0:
            raise CompressionError("empty split")


@dataclass(frozen=True)
class ArchitectureSpec:
    """Hidden-layer widths for the Decision-maker / Calibrator pair."""

    decision_hidden: tuple[int, ...]
    calibrator_hidden: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.decision_hidden or not self.calibrator_hidden:
            raise CompressionError("both heads need at least one hidden layer")
        if any(w <= 0 for w in self.decision_hidden + self.calibrator_hidden):
            raise CompressionError("hidden widths must be positive")

    @property
    def label(self) -> str:
        """Readable description, e.g. ``D5x20+C4x20``."""
        d = "x".join(str(w) for w in self.decision_hidden)
        c = "x".join(str(w) for w in self.calibrator_hidden)
        return f"D[{d}]+C[{c}]"


#: The paper's uncompressed architecture: 5 decision layers + 4
#: calibrator layers, 20 neurons each (§III-D).
PAPER_BASE_SPEC = ArchitectureSpec((20,) * 5, (20,) * 4)

#: The paper's layer-wise compressed architecture: 3 + 2 layers of 12
#: neurons (§IV-B).
PAPER_COMPRESSED_SPEC = ArchitectureSpec((12,) * 3, (12,) * 2)

#: The paper's final pruning parameters (§IV-C).
PAPER_PRUNE_PARAMS = (0.6, 0.9)


@dataclass(frozen=True)
class CompressionPoint:
    """One point on a FLOPs-vs-quality frontier."""

    label: str
    method: str  # "layerwise" or "pruning"
    flops: int
    accuracy_pct: float
    mape_pct: float
    decision_sizes: tuple[int, ...]
    calibrator_sizes: tuple[int, ...]
    sparsity: float = 0.0


@dataclass
class TrainedPair:
    """A trained Decision-maker / Calibrator model pair."""

    decision: MLP
    calibrator: MLP
    accuracy_pct: float
    mape_pct: float

    @property
    def flops_dense(self) -> int:
        """Dense FLOPs per decision epoch (both heads)."""
        return model_flops(self.decision) + model_flops(self.calibrator)

    @property
    def flops_sparse(self) -> int:
        """Sparse FLOPs per decision epoch (both heads)."""
        return (model_flops(self.decision, sparse=True)
                + model_flops(self.calibrator, sparse=True))


def evaluate_pair(decision: MLP, calibrator: MLP, decision_data: SplitData,
                  calibrator_data: SplitData) -> tuple[float, float]:
    """Test-set accuracy (%) and MAPE (%) of a model pair."""
    acc = accuracy(decision.predict_class(decision_data.x_test),
                   decision_data.y_test) * 100.0
    err = mape(calibrator.predict_scalar(calibrator_data.x_test),
               calibrator_data.y_test)
    return acc, err


def train_pair(spec: ArchitectureSpec, decision_data: SplitData,
               calibrator_data: SplitData, num_levels: int,
               config: TrainConfig | None = None,
               seed: int = 0) -> TrainedPair:
    """Train a fresh Decision-maker / Calibrator pair at ``spec``."""
    config = config or TrainConfig()
    rng = np.random.default_rng(seed)
    decision = MLP([decision_data.x_train.shape[1], *spec.decision_hidden,
                    num_levels], rng=rng)
    calibrator = MLP([calibrator_data.x_train.shape[1],
                      *spec.calibrator_hidden, 1], rng=rng)
    train_classifier(decision, decision_data.x_train,
                     decision_data.y_train, config)
    train_regressor(calibrator, calibrator_data.x_train,
                    calibrator_data.y_train, config)
    acc, err = evaluate_pair(decision, calibrator, decision_data,
                             calibrator_data)
    return TrainedPair(decision, calibrator, acc, err)


def default_layerwise_grid() -> list[ArchitectureSpec]:
    """The (layers x width) grid swept for Fig. 3's layer-wise curve."""
    specs = [PAPER_BASE_SPEC]
    for depth_pair in ((4, 3), (3, 2), (2, 2), (2, 1)):
        for width in (20, 16, 12, 8, 4):
            specs.append(ArchitectureSpec((width,) * depth_pair[0],
                                          (width,) * depth_pair[1]))
    return specs


def layer_wise_sweep(decision_data: SplitData, calibrator_data: SplitData,
                     num_levels: int,
                     specs: list[ArchitectureSpec] | None = None,
                     config: TrainConfig | None = None,
                     seed: int = 0) -> list[CompressionPoint]:
    """Train every architecture in the grid -> Fig. 3 layer-wise curve."""
    specs = specs or default_layerwise_grid()
    points = []
    for index, spec in enumerate(specs):
        pair = train_pair(spec, decision_data, calibrator_data, num_levels,
                          config, seed=seed + index)
        points.append(CompressionPoint(
            label=spec.label,
            method="layerwise",
            flops=pair.flops_dense,
            accuracy_pct=pair.accuracy_pct,
            mape_pct=pair.mape_pct,
            decision_sizes=tuple(pair.decision.layer_sizes),
            calibrator_sizes=tuple(pair.calibrator.layer_sizes),
        ))
    return points


def default_pruning_grid() -> list[tuple[float, float]]:
    """The (x1, x2) grid swept for Fig. 3's pruning curve."""
    grid = []
    for x1 in (0.2, 0.4, 0.6, 0.75, 0.85):
        for x2 in (0.7, 0.9):
            grid.append((x1, x2))
    return grid


def prune_and_finetune(pair: TrainedPair, x1: float, x2: float,
                       decision_data: SplitData, calibrator_data: SplitData,
                       finetune_config: TrainConfig | None = None) -> TrainedPair:
    """Prune a copy of ``pair`` with (x1, x2) and fine-tune it."""
    finetune_config = finetune_config or TrainConfig(
        epochs=40, patience=10, learning_rate=5e-4)
    decision = pair.decision.clone()
    calibrator = pair.calibrator.clone()
    prune_model(decision, x1, x2)
    prune_model(calibrator, x1, x2)
    train_classifier(decision, decision_data.x_train, decision_data.y_train,
                     finetune_config)
    train_regressor(calibrator, calibrator_data.x_train,
                    calibrator_data.y_train, finetune_config)
    acc, err = evaluate_pair(decision, calibrator, decision_data,
                             calibrator_data)
    return TrainedPair(decision, calibrator, acc, err)


def pruning_sweep(pair: TrainedPair, decision_data: SplitData,
                  calibrator_data: SplitData,
                  grid: list[tuple[float, float]] | None = None,
                  finetune_config: TrainConfig | None = None
                  ) -> list[CompressionPoint]:
    """Prune+fine-tune across the grid -> Fig. 3 pruning curve."""
    grid = grid or default_pruning_grid()
    points = []
    for x1, x2 in grid:
        pruned = prune_and_finetune(pair, x1, x2, decision_data,
                                    calibrator_data, finetune_config)
        total_weights = (sum(l.weights.size for l in pruned.decision.layers)
                         + sum(l.weights.size for l in pruned.calibrator.layers))
        active = (pruned.decision.num_active_weights
                  + pruned.calibrator.num_active_weights)
        points.append(CompressionPoint(
            label=f"x1={x1:.2f},x2={x2:.2f}",
            method="pruning",
            flops=pruned.flops_sparse,
            accuracy_pct=pruned.accuracy_pct,
            mape_pct=pruned.mape_pct,
            decision_sizes=tuple(pruned.decision.layer_sizes),
            calibrator_sizes=tuple(pruned.calibrator.layer_sizes),
            sparsity=1.0 - active / total_weights,
        ))
    return points
