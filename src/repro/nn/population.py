"""Batched population training: many same-shape MLPs in lockstep.

The offline stage of the paper is dominated by *repeated* MLP training:
RFE retrains the Decision-maker every elimination round, the Fig. 3
compression study trains a whole architecture grid, and seed-replicated
studies train the same spec many times.  Training those models one at a
time wastes most of its wall-clock on per-call numpy dispatch — the
matrices of a 20-neuron MLP are tiny, so a training step is overhead,
not FLOPs.

This module trains a *population* of P same-shape models as stacked
3-D tensors: weights are ``(P, fan_in, fan_out)``, activations are
``(P, batch, width)``, and every forward, backward and optimizer update
is one batched ``np.matmul``/elementwise pass over the whole stack
(numpy's matmul gufunc runs one BLAS GEMM per member slice, so each
member's arithmetic is the very same GEMM the serial path would run).

Determinism contract
--------------------
``fit_population`` mirrors :func:`repro.nn.trainer.fit` member by
member: member ``p`` draws its validation split and per-epoch shuffles
from ``np.random.default_rng(seeds[p])`` exactly as a serial ``fit``
with ``config.seed = seeds[p]`` would, sees the same minibatches in the
same order, applies the same Adam/SGD updates, and early-stops by the
same per-member patience rule (a stopped member's best checkpoint is
frozen; the stack keeps stepping until every member has stopped).
Population results therefore match the serial path to BLAS rounding
(well within 1e-6), and are bit-reproducible run-to-run for a fixed
seed list.

Members must share the layer shapes and the training hyper-parameters
(``TrainConfig`` minus the seed); only initial weights, pruning masks
and per-member seeds may differ.  Anything outside that contract —
heterogeneous architectures, per-member epoch budgets — falls back to
the serial trainer (see :func:`repro.nn.compress.train_pair_replicas`
for the pattern).
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError, TrainingError
from .layers import Dense
from .mlp import MLP
from .trainer import TrainConfig, TrainHistory


class PopulationDense:
    """A stack of P same-shape :class:`Dense` layers.

    Weights are ``(P, fan_in, fan_out)``, biases ``(P, fan_out)`` and
    the pruning masks ``(P, fan_in, fan_out)``; forward/backward run one
    batched matmul over the stack.  Inputs broadcast: a ``(1, n, f)``
    activation stack is shared by every member (the shared-dataset fast
    path), a ``(P, n, f)`` stack carries per-member data.
    """

    def __init__(self, weights: np.ndarray, bias: np.ndarray,
                 mask: np.ndarray, activation: str) -> None:
        if weights.ndim != 3:
            raise ModelError("population weights must be (P, fan_in, fan_out)")
        if bias.shape != (weights.shape[0], weights.shape[2]):
            raise ModelError("population bias must be (P, fan_out)")
        if mask.shape != weights.shape:
            raise ModelError("population mask must match the weight stack")
        if activation not in ("relu", "linear"):
            raise ModelError(f"unknown activation {activation!r}")
        self.weights = weights
        self.bias = bias
        self.mask = mask
        self.activation = activation
        self.grad_weights = np.zeros_like(weights)
        self.grad_bias = np.zeros_like(bias)
        self._cache_input: np.ndarray | None = None
        self._cache_preact: np.ndarray | None = None
        self._eff_buffer: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def population(self) -> int:
        """Number of stacked members."""
        return self.weights.shape[0]

    @property
    def fan_in(self) -> int:
        """Input width of every member."""
        return self.weights.shape[1]

    @property
    def fan_out(self) -> int:
        """Output width of every member."""
        return self.weights.shape[2]

    def _masked_weights(self) -> np.ndarray:
        buffer = self._eff_buffer
        if buffer is None or buffer.shape != self.weights.shape:
            buffer = self._eff_buffer = np.empty_like(self.weights)
        np.multiply(self.weights, self.mask, out=buffer)
        return buffer

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        """Batched forward over ``x`` of shape (P or 1, n, fan_in)."""
        if x.ndim != 3 or x.shape[2] != self.fan_in:
            raise ModelError(
                f"expected input (members, n, {self.fan_in}), got {x.shape}"
            )
        weights = self._masked_weights()
        if train:
            preact = np.matmul(x, weights) + self.bias[:, None, :]
            self._cache_input = x
            self._cache_preact = preact
            if self.activation == "relu":
                return np.maximum(preact, 0.0)
            return preact
        preact = np.matmul(x, weights)
        preact += self.bias[:, None, :]
        if self.activation == "relu":
            np.maximum(preact, 0.0, out=preact)
        return preact

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Batched backward; returns the gradient w.r.t. the inputs."""
        if self._cache_input is None or self._cache_preact is None:
            raise ModelError("backward called before forward(train=True)")
        if self.activation == "relu":
            grad_pre = grad_out * (self._cache_preact > 0.0)
        else:
            grad_pre = grad_out
        self.grad_weights = np.matmul(
            self._cache_input.transpose(0, 2, 1), grad_pre) * self.mask
        self.grad_bias = grad_pre.sum(axis=1)
        return np.matmul(grad_pre, self._masked_weights().transpose(0, 2, 1))

    def apply_mask(self) -> None:
        """Re-zero masked weights across the whole stack."""
        self.weights *= self.mask


class PopulationMLP:
    """A population of same-shape MLPs trained in lockstep."""

    def __init__(self, layers: list[PopulationDense]) -> None:
        if not layers:
            raise ModelError("population needs at least one layer")
        self.layers = layers

    # ------------------------------------------------------------------
    @classmethod
    def from_models(cls, models: list[MLP]) -> "PopulationMLP":
        """Stack existing models (weights/biases/masks are copied)."""
        if not models:
            raise ModelError("population needs at least one member")
        sizes = models[0].layer_sizes
        for model in models[1:]:
            if model.layer_sizes != sizes:
                raise ModelError(
                    "population members must share layer sizes: "
                    f"{sizes} vs {model.layer_sizes}"
                )
        layers = []
        for index in range(len(models[0].layers)):
            member_layers = [model.layers[index] for model in models]
            activation = member_layers[0].activation
            if any(l.activation != activation for l in member_layers):
                raise ModelError("population members must share activations")
            layers.append(PopulationDense(
                np.stack([l.weights for l in member_layers]),
                np.stack([l.bias for l in member_layers]),
                np.stack([l.mask for l in member_layers]),
                activation,
            ))
        return cls(layers)

    @classmethod
    def replicate(cls, layer_sizes: list[int],
                  seeds: list[int]) -> "PopulationMLP":
        """Stack fresh members, each initialised exactly like
        ``MLP(layer_sizes, rng=np.random.default_rng(seed))``."""
        if not seeds:
            raise ModelError("population needs at least one seed")
        return cls.from_models(
            [MLP(layer_sizes, rng=np.random.default_rng(seed))
             for seed in seeds])

    # ------------------------------------------------------------------
    @property
    def population(self) -> int:
        """Number of members."""
        return self.layers[0].population

    @property
    def input_size(self) -> int:
        """Expected feature-vector width."""
        return self.layers[0].fan_in

    @property
    def output_size(self) -> int:
        """Output width (classes or regression targets)."""
        return self.layers[-1].fan_out

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        """Run the stack on (n, f) shared or (P, n, f) per-member input."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 2:
            x = x[None, :, :]
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate the stacked loss gradient."""
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def predict_class(self, x: np.ndarray) -> np.ndarray:
        """(P, n) argmax class predictions."""
        return np.argmax(self.forward(x), axis=2)

    def apply_masks(self) -> None:
        """Re-zero all masked weights (after optimizer steps)."""
        for layer in self.layers:
            layer.apply_mask()

    # ------------------------------------------------------------------
    def member(self, index: int) -> MLP:
        """Extract one member as a standalone :class:`MLP` (copies)."""
        if not 0 <= index < self.population:
            raise ModelError(f"no member {index} in a population of "
                             f"{self.population}")
        model = MLP.__new__(MLP)
        model.layers = []
        for layer in self.layers:
            dense = Dense.__new__(Dense)
            dense.weights = layer.weights[index].copy()
            dense.bias = layer.bias[index].copy()
            dense.mask = layer.mask[index].copy()
            dense.activation = layer.activation
            dense.grad_weights = np.zeros_like(dense.weights)
            dense.grad_bias = np.zeros_like(dense.bias)
            dense._cache_input = None
            dense._cache_preact = None
            dense._eff_buffer = None
            model.layers.append(dense)
        return model

    def members(self) -> list[MLP]:
        """All members as standalone models."""
        return [self.member(index) for index in range(self.population)]


# ---------------------------------------------------------------------------
# Stacked optimizers
# ---------------------------------------------------------------------------

class PopulationSGD:
    """Momentum SGD over the whole stack in one fused update."""

    def __init__(self, population: PopulationMLP, learning_rate: float = 1e-2,
                 momentum: float = 0.9) -> None:
        if learning_rate <= 0:
            raise TrainingError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise TrainingError("momentum must be in [0, 1)")
        self.population = population
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity = [
            (np.zeros_like(layer.weights), np.zeros_like(layer.bias))
            for layer in population.layers
        ]

    def step(self) -> None:
        """Apply one update from the gradients on the stacked layers."""
        for layer, (vel_w, vel_b) in zip(self.population.layers,
                                         self._velocity):
            vel_w *= self.momentum
            vel_w -= self.learning_rate * layer.grad_weights
            vel_b *= self.momentum
            vel_b -= self.learning_rate * layer.grad_bias
            layer.weights += vel_w
            layer.bias += vel_b
        self.population.apply_masks()


class PopulationAdam:
    """Adam over the whole stack in one fused update."""

    def __init__(self, population: PopulationMLP, learning_rate: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999,
                 epsilon: float = 1e-8) -> None:
        if learning_rate <= 0:
            raise TrainingError("learning rate must be positive")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise TrainingError("betas must be in [0, 1)")
        self.population = population
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._t = 0
        self._moments = [
            (np.zeros_like(layer.weights), np.zeros_like(layer.weights),
             np.zeros_like(layer.bias), np.zeros_like(layer.bias))
            for layer in population.layers
        ]

    def step(self) -> None:
        """Apply one Adam update from the gradients on the stack."""
        self._t += 1
        correction1 = 1.0 - self.beta1 ** self._t
        correction2 = 1.0 - self.beta2 ** self._t
        scale = self.learning_rate * np.sqrt(correction2) / correction1
        for layer, (m_w, v_w, m_b, v_b) in zip(self.population.layers,
                                               self._moments):
            m_w *= self.beta1
            m_w += (1.0 - self.beta1) * layer.grad_weights
            v_w *= self.beta2
            v_w += (1.0 - self.beta2) * layer.grad_weights ** 2
            layer.weights -= scale * m_w / (np.sqrt(v_w) + self.epsilon)
            m_b *= self.beta1
            m_b += (1.0 - self.beta1) * layer.grad_bias
            v_b *= self.beta2
            v_b += (1.0 - self.beta2) * layer.grad_bias ** 2
            layer.bias -= scale * m_b / (np.sqrt(v_b) + self.epsilon)
        self.population.apply_masks()


# ---------------------------------------------------------------------------
# Stacked losses (value per member + gradient)
# ---------------------------------------------------------------------------

def _population_softmax_xent(logits: np.ndarray, labels: np.ndarray
                             ) -> tuple[np.ndarray, np.ndarray]:
    """Per-member cross-entropy over (P, n, classes) logits."""
    n = logits.shape[1]
    shifted = logits - logits.max(axis=2, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=2, keepdims=True)
    members = np.arange(logits.shape[0])[:, None]
    rows = np.arange(n)[None, :]
    picked = probs[members, rows, labels]
    losses = -np.log(np.clip(picked, 1e-12, None)).mean(axis=1)
    grad = probs
    grad[members, rows, labels] -= 1.0
    grad /= n
    return losses, grad


def _population_mse(predictions: np.ndarray, targets: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Per-member MSE over (P, n, outputs) predictions."""
    diff = predictions - targets
    losses = (diff ** 2).mean(axis=(1, 2))
    grad = 2.0 * diff / (diff.shape[1] * diff.shape[2])
    return losses, grad


def _clip_population_gradients(population: PopulationMLP,
                               max_norm: float) -> None:
    """Per-member analogue of the serial global-norm gradient clip."""
    total = np.zeros(population.population)
    for layer in population.layers:
        total += (layer.grad_weights ** 2).sum(axis=(1, 2))
        total += (layer.grad_bias ** 2).sum(axis=1)
    norm = np.sqrt(total)
    needs = (norm > max_norm) & (norm > 0)
    if not needs.any():
        return
    scale = np.where(needs, max_norm / np.maximum(norm, 1e-300), 1.0)
    for layer in population.layers:
        layer.grad_weights *= scale[:, None, None]
        layer.grad_bias *= scale[:, None]


# ---------------------------------------------------------------------------
# Lockstep training loop
# ---------------------------------------------------------------------------

def _make_optimizer(population: PopulationMLP, config: TrainConfig):
    if config.optimizer == "adam":
        return PopulationAdam(population, learning_rate=config.learning_rate)
    return PopulationSGD(population, learning_rate=config.learning_rate,
                         momentum=config.momentum)


def fit_population(population: PopulationMLP, features: np.ndarray,
                   targets: np.ndarray, loss: str,
                   config: TrainConfig | None = None,
                   seeds: list[int] | None = None) -> list[TrainHistory]:
    """Train every member in lockstep; returns one history per member.

    ``loss`` is ``"classifier"`` (softmax cross-entropy over integer
    labels) or ``"regressor"`` (MSE over float targets).  ``seeds``
    optionally gives each member its own data seed — member ``p``
    splits and shuffles exactly like a serial ``fit`` with
    ``config.seed = seeds[p]``; by default every member uses
    ``config.seed``, which collapses the per-member data stacks into a
    single shared (broadcast) copy.  Members are restored to their
    best-validation checkpoints before returning, like the serial loop.
    """
    config = config or TrainConfig()
    if loss not in ("classifier", "regressor"):
        raise TrainingError(f"unknown population loss {loss!r}")
    members = population.population
    if seeds is None:
        seeds = [config.seed] * members
    if len(seeds) != members:
        raise TrainingError(
            f"{members} members but {len(seeds)} seeds")
    features = np.asarray(features, dtype=np.float64)
    if loss == "classifier":
        targets = np.asarray(targets, dtype=np.int64)
        loss_fn = _population_softmax_xent
    else:
        targets = np.asarray(targets, dtype=np.float64)
        if targets.ndim == 1:
            targets = targets[:, None]
        loss_fn = _population_mse
    if features.ndim != 2:
        raise TrainingError("features must be 2-D (samples, width)")
    if features.shape[0] != targets.shape[0]:
        raise TrainingError("features/targets row-count mismatch")
    if features.shape[0] < 2:
        raise TrainingError("need at least two samples to train")
    if features.shape[1] != population.input_size:
        raise TrainingError(
            f"population expects width {population.input_size}, data has "
            f"{features.shape[1]}"
        )

    # Shared-data fast path: identical seeds mean identical splits and
    # shuffles, so one broadcast copy serves the whole stack.
    shared = len(set(seeds)) == 1
    stack = 1 if shared else members
    rngs = [np.random.default_rng(seed)
            for seed in (seeds[:1] if shared else seeds)]
    n_total = features.shape[0]
    n_val = int(n_total * config.validation_fraction)
    x_train = None
    for index, rng in enumerate(rngs):
        order = rng.permutation(n_total)
        val_idx, train_idx = order[:n_val], order[n_val:]
        if train_idx.size == 0:
            raise TrainingError("validation split leaves no training data")
        if x_train is None:
            n_train = train_idx.size
            x_train = np.empty((stack, n_train) + features.shape[1:])
            y_train = np.empty((stack, n_train) + targets.shape[1:],
                               dtype=targets.dtype)
            x_val = np.empty((stack, n_val) + features.shape[1:])
            y_val = np.empty((stack, n_val) + targets.shape[1:],
                             dtype=targets.dtype)
        x_train[index] = features[train_idx]
        y_train[index] = targets[train_idx]
        x_val[index] = features[val_idx]
        y_val[index] = targets[val_idx]

    optimizer = _make_optimizer(population, config)
    histories = [TrainHistory() for _ in range(members)]
    best_loss = np.full(members, np.inf)
    best_layers: list[list[tuple] | None] = [None] * members
    since_best = np.zeros(members, dtype=np.int64)
    active = np.ones(members, dtype=bool)
    x_buf = np.empty_like(x_train)
    y_buf = np.empty_like(y_train)
    n_train = x_train.shape[1]

    for epoch in range(config.epochs):
        if config.lr_step and epoch and epoch % config.lr_step == 0:
            optimizer.learning_rate *= config.lr_decay
        for index, rng in enumerate(rngs):
            perm = rng.permutation(n_train)
            np.take(x_train[index], perm, axis=0, out=x_buf[index])
            np.take(y_train[index], perm, axis=0, out=y_buf[index])
        epoch_losses = np.zeros(members)
        batches = 0
        for start in range(0, n_train, config.batch_size):
            stop = start + config.batch_size
            outputs = population.forward(x_buf[:, start:stop], train=True)
            labels = y_buf[:, start:stop]
            losses, grad = loss_fn(outputs, labels)
            population.backward(grad)
            if config.weight_decay > 0:
                for layer in population.layers:
                    layer.grad_weights += config.weight_decay * layer.weights
            if config.gradient_clip > 0:
                _clip_population_gradients(population, config.gradient_clip)
            optimizer.step()
            epoch_losses += losses
            batches += 1
        train_losses = epoch_losses / max(1, batches)

        if n_val > 0:
            val_out = population.forward(x_val)
            val_losses, _ = loss_fn(val_out, y_val)
        else:
            val_losses = train_losses
        for index in range(members):
            if not active[index]:
                continue
            history = histories[index]
            history.train_losses.append(float(train_losses[index]))
            history.val_losses.append(float(val_losses[index]))
            if val_losses[index] < best_loss[index] - config.min_delta:
                best_loss[index] = val_losses[index]
                best_layers[index] = [
                    (layer.weights[index].copy(), layer.bias[index].copy(),
                     layer.mask[index].copy())
                    for layer in population.layers
                ]
                history.best_epoch = epoch
                since_best[index] = 0
            else:
                since_best[index] += 1
                if since_best[index] >= config.patience:
                    history.stopped_early = True
                    active[index] = False
        if not active.any():
            break

    for index in range(members):
        snapshot = best_layers[index]
        if snapshot is None:
            continue
        for layer, (weights, bias, mask) in zip(population.layers, snapshot):
            layer.weights[index] = weights
            layer.bias[index] = bias
            layer.mask[index] = mask
    return histories


def train_population_classifier(population: PopulationMLP,
                                features: np.ndarray, labels: np.ndarray,
                                config: TrainConfig | None = None,
                                seeds: list[int] | None = None
                                ) -> list[TrainHistory]:
    """Train a population of softmax classifier heads in lockstep."""
    return fit_population(population, features, labels, "classifier",
                          config, seeds)


def train_population_regressor(population: PopulationMLP,
                               features: np.ndarray, targets: np.ndarray,
                               config: TrainConfig | None = None,
                               seeds: list[int] | None = None
                               ) -> list[TrainHistory]:
    """Train a population of MSE regressor heads in lockstep."""
    return fit_population(population, features, targets, "regressor",
                          config, seeds)
