"""Two-stage pruning (paper §IV-C).

Stage 1 — *fine-grained* magnitude pruning: zero out the fraction
``x1`` of smallest-magnitude weights across the whole network (via the
layers' masks, so fine-tuning keeps them at zero).

Stage 2 — *neuron-level* pruning (the vector-level analogue for MLPs):
any hidden neuron whose incoming weight vector is at least ``x2`` zeros
after stage 1 is deleted outright, shrinking the layer and the
following layer's input.

The paper selects ``(x1, x2) = (0.6, 0.9)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CompressionError
from .flops import model_flops
from .mlp import MLP


def magnitude_prune(model: MLP, fraction: float) -> int:
    """Mask out the globally smallest ``fraction`` of active weights.

    Returns the number of weights newly pruned.  Operates in place.
    """
    if not 0.0 <= fraction < 1.0:
        raise CompressionError(f"prune fraction must be in [0, 1), got {fraction}")
    if fraction == 0.0:
        return 0
    magnitudes = []
    for layer in model.layers:
        active = layer.mask > 0
        magnitudes.append(np.abs(layer.weights[active]))
    all_mags = np.concatenate(magnitudes)
    if all_mags.size == 0:
        raise CompressionError("model has no active weights to prune")
    threshold = np.quantile(all_mags, fraction)
    pruned = 0
    for layer in model.layers:
        to_prune = (np.abs(layer.weights) <= threshold) & (layer.mask > 0)
        pruned += int(to_prune.sum())
        layer.mask[to_prune] = 0.0
        layer.apply_mask()
    return pruned


def neuron_prune(model: MLP, zero_threshold: float) -> int:
    """Remove hidden neurons whose incoming weights are mostly pruned.

    A neuron is deleted when the fraction of zero (masked) weights in
    its incoming vector is ``>= zero_threshold``.  At least one neuron
    per hidden layer is always kept.  Returns the number of neurons
    removed.  Operates in place.
    """
    if not 0.0 < zero_threshold <= 1.0:
        raise CompressionError(
            f"zero threshold must be in (0, 1], got {zero_threshold}"
        )
    removed_total = 0
    for layer_index in range(len(model.layers) - 1):
        layer = model.layers[layer_index]
        zero_fraction = 1.0 - layer.mask.mean(axis=0)  # per output neuron
        candidates = [int(j) for j in np.nonzero(
            zero_fraction >= zero_threshold - 1e-12)[0]]
        # Keep at least one neuron in the layer.
        max_removable = layer.fan_out - 1
        if len(candidates) > max_removable:
            # Keep the neurons with the *fewest* zeros.
            order = np.argsort(zero_fraction[candidates])
            candidates = [candidates[i] for i in order[:max_removable]]
        if candidates:
            model.remove_hidden_neurons(layer_index, candidates)
            removed_total += len(candidates)
    return removed_total


@dataclass(frozen=True)
class PruneReport:
    """What a prune pass did to a model."""

    weights_pruned: int
    neurons_removed: int
    sparsity: float
    dense_flops: int
    sparse_flops: int
    layer_sizes: list[int]


def prune_model(model: MLP, magnitude_fraction: float,
                neuron_zero_threshold: float) -> PruneReport:
    """Run both pruning stages in place and report the outcome."""
    weights_pruned = magnitude_prune(model, magnitude_fraction)
    neurons_removed = neuron_prune(model, neuron_zero_threshold)
    return PruneReport(
        weights_pruned=weights_pruned,
        neurons_removed=neurons_removed,
        sparsity=model.sparsity,
        dense_flops=model_flops(model, sparse=False),
        sparse_flops=model_flops(model, sparse=True),
        layer_sizes=model.layer_sizes,
    )
