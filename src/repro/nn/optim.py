"""Optimizers.

Optimizers bind to a model's layers and update parameters in place from
the gradients the backward pass left on each layer.  After every step
the pruning masks are re-applied, so pruned weights never drift away
from zero during fine-tuning.
"""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError
from .mlp import MLP


class SGD:
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, model: MLP, learning_rate: float = 1e-2,
                 momentum: float = 0.9) -> None:
        if learning_rate <= 0:
            raise TrainingError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise TrainingError("momentum must be in [0, 1)")
        self.model = model
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity = [
            (np.zeros_like(layer.weights), np.zeros_like(layer.bias))
            for layer in model.layers
        ]

    def step(self) -> None:
        """Apply one update from the gradients on the model's layers."""
        for layer, (vel_w, vel_b) in zip(self.model.layers, self._velocity):
            vel_w *= self.momentum
            vel_w -= self.learning_rate * layer.grad_weights
            vel_b *= self.momentum
            vel_b -= self.learning_rate * layer.grad_bias
            layer.weights += vel_w
            layer.bias += vel_b
        self.model.apply_masks()


class Adam:
    """Adam optimizer (Kingma & Ba)."""

    def __init__(self, model: MLP, learning_rate: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999,
                 epsilon: float = 1e-8) -> None:
        if learning_rate <= 0:
            raise TrainingError("learning rate must be positive")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise TrainingError("betas must be in [0, 1)")
        self.model = model
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._t = 0
        self._moments = [
            (np.zeros_like(layer.weights), np.zeros_like(layer.weights),
             np.zeros_like(layer.bias), np.zeros_like(layer.bias))
            for layer in model.layers
        ]

    def step(self) -> None:
        """Apply one Adam update from the gradients on the layers."""
        self._t += 1
        correction1 = 1.0 - self.beta1 ** self._t
        correction2 = 1.0 - self.beta2 ** self._t
        scale = self.learning_rate * np.sqrt(correction2) / correction1
        for layer, (m_w, v_w, m_b, v_b) in zip(self.model.layers,
                                               self._moments):
            m_w *= self.beta1
            m_w += (1.0 - self.beta1) * layer.grad_weights
            v_w *= self.beta2
            v_w += (1.0 - self.beta2) * layer.grad_weights ** 2
            layer.weights -= scale * m_w / (np.sqrt(v_w) + self.epsilon)
            m_b *= self.beta1
            m_b += (1.0 - self.beta1) * layer.grad_bias
            v_b *= self.beta2
            v_b += (1.0 - self.beta2) * layer.grad_bias ** 2
            layer.bias -= scale * m_b / (np.sqrt(v_b) + self.epsilon)
        self.model.apply_masks()
