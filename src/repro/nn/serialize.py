"""Model (de)serialization.

Models round-trip through plain dictionaries of numpy arrays, which
also serialize to ``.npz`` files — enough for checkpointing trained
Decision-maker / Calibrator pairs between pipeline stages.  Loads are
defensive: a malformed payload (missing arrays, inconsistent shapes,
non-numeric dtypes, a truncated or non-npz file) raises
:class:`~repro.errors.ArtifactCorrupt` — never a bare ``KeyError`` or
numpy exception — so corrupt artefacts are distinguishable from bugs
and the artifact store's fallback machinery can react.  Saves go
through the shared atomic write helper so a crash mid-checkpoint
cannot tear the file.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from ..errors import ArtifactCorrupt, ModelError
from ..store import atomic_write_bytes
from .layers import Dense
from .mlp import MLP


def model_to_arrays(model: MLP) -> dict[str, np.ndarray]:
    """Flatten a model into a dict of arrays (npz-compatible)."""
    arrays: dict[str, np.ndarray] = {
        "num_layers": np.array(len(model.layers)),
    }
    for index, layer in enumerate(model.layers):
        arrays[f"w{index}"] = layer.weights
        arrays[f"b{index}"] = layer.bias
        arrays[f"m{index}"] = layer.mask
        arrays[f"act{index}"] = np.array(layer.activation)
    return arrays


def model_from_arrays(arrays: dict[str, np.ndarray]) -> MLP:
    """Rebuild a model serialized by :func:`model_to_arrays`.

    Raises :class:`~repro.errors.ArtifactCorrupt` (a
    :class:`~repro.errors.ModelError`) on any structural defect.
    """
    if "num_layers" not in arrays:
        raise ArtifactCorrupt("missing num_layers key")
    try:
        num_layers = int(arrays["num_layers"])
    except (TypeError, ValueError) as exc:
        raise ArtifactCorrupt(f"unreadable num_layers: {exc}") from exc
    if num_layers <= 0:
        raise ArtifactCorrupt("serialized model has no layers")
    model = MLP.__new__(MLP)
    model.layers = []
    for index in range(num_layers):
        try:
            weights = np.asarray(arrays[f"w{index}"], dtype=np.float64)
            bias = np.asarray(arrays[f"b{index}"], dtype=np.float64)
            mask = np.asarray(arrays[f"m{index}"], dtype=np.float64)
            activation = str(arrays[f"act{index}"])
        except KeyError as exc:
            raise ArtifactCorrupt(
                f"missing array for layer {index}: {exc}") from exc
        except (TypeError, ValueError) as exc:
            raise ArtifactCorrupt(
                f"layer {index} has a non-numeric payload: {exc}") from exc
        if weights.ndim != 2 or bias.shape != (weights.shape[1],):
            raise ArtifactCorrupt(f"layer {index} has inconsistent shapes")
        if mask.shape != weights.shape:
            raise ArtifactCorrupt(f"layer {index} mask shape mismatch")
        layer = Dense.__new__(Dense)
        layer.weights = weights
        layer.bias = bias
        layer.mask = mask
        layer.activation = activation
        layer.grad_weights = np.zeros_like(weights)
        layer.grad_bias = np.zeros_like(bias)
        layer._cache_input = None
        layer._cache_preact = None
        layer._eff_buffer = None
        model.layers.append(layer)
    return model


def model_to_bytes(model: MLP) -> bytes:
    """The model's ``.npz`` payload as bytes (for the artifact store)."""
    buffer = io.BytesIO()
    np.savez(buffer, **model_to_arrays(model))
    return buffer.getvalue()


def model_from_bytes(blob: bytes) -> MLP:
    """Inverse of :func:`model_to_bytes`; ArtifactCorrupt on bad blobs."""
    try:
        with np.load(io.BytesIO(blob), allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
    except Exception as exc:
        raise ArtifactCorrupt(f"unreadable model payload: {exc}") from exc
    return model_from_arrays(arrays)


def save_model(model: MLP, path: str | Path) -> None:
    """Save a model to an ``.npz`` file (atomic: temp + fsync + rename)."""
    atomic_write_bytes(Path(path), model_to_bytes(model))


def load_model(path: str | Path) -> MLP:
    """Load a model saved with :func:`save_model`."""
    path = Path(path)
    if not path.exists():
        raise ModelError(f"model file not found: {path}")
    return model_from_bytes(path.read_bytes())
