"""Model (de)serialization.

Models round-trip through plain dictionaries of numpy arrays, which
also serialize to ``.npz`` files — enough for checkpointing trained
Decision-maker / Calibrator pairs between pipeline stages.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import ModelError
from .layers import Dense
from .mlp import MLP


def model_to_arrays(model: MLP) -> dict[str, np.ndarray]:
    """Flatten a model into a dict of arrays (npz-compatible)."""
    arrays: dict[str, np.ndarray] = {
        "num_layers": np.array(len(model.layers)),
    }
    for index, layer in enumerate(model.layers):
        arrays[f"w{index}"] = layer.weights
        arrays[f"b{index}"] = layer.bias
        arrays[f"m{index}"] = layer.mask
        arrays[f"act{index}"] = np.array(layer.activation)
    return arrays


def model_from_arrays(arrays: dict[str, np.ndarray]) -> MLP:
    """Rebuild a model serialized by :func:`model_to_arrays`."""
    if "num_layers" not in arrays:
        raise ModelError("missing num_layers key")
    num_layers = int(arrays["num_layers"])
    if num_layers <= 0:
        raise ModelError("serialized model has no layers")
    model = MLP.__new__(MLP)
    model.layers = []
    for index in range(num_layers):
        try:
            weights = np.asarray(arrays[f"w{index}"], dtype=np.float64)
            bias = np.asarray(arrays[f"b{index}"], dtype=np.float64)
            mask = np.asarray(arrays[f"m{index}"], dtype=np.float64)
            activation = str(arrays[f"act{index}"])
        except KeyError as exc:
            raise ModelError(f"missing array for layer {index}: {exc}") from exc
        if weights.ndim != 2 or bias.shape != (weights.shape[1],):
            raise ModelError(f"layer {index} has inconsistent shapes")
        if mask.shape != weights.shape:
            raise ModelError(f"layer {index} mask shape mismatch")
        layer = Dense.__new__(Dense)
        layer.weights = weights
        layer.bias = bias
        layer.mask = mask
        layer.activation = activation
        layer.grad_weights = np.zeros_like(weights)
        layer.grad_bias = np.zeros_like(bias)
        layer._cache_input = None
        layer._cache_preact = None
        layer._eff_buffer = None
        model.layers.append(layer)
    return model


def save_model(model: MLP, path: str | Path) -> None:
    """Save a model to an ``.npz`` file."""
    np.savez(Path(path), **model_to_arrays(model))


def load_model(path: str | Path) -> MLP:
    """Load a model saved with :func:`save_model`."""
    path = Path(path)
    if not path.exists():
        raise ModelError(f"model file not found: {path}")
    with np.load(path, allow_pickle=False) as data:
        return model_from_arrays({key: data[key] for key in data.files})
