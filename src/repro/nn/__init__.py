"""Pure-numpy neural-network framework (train, compress, prune, quantize)."""

from .compress import (PAPER_BASE_SPEC, PAPER_COMPRESSED_SPEC,
                       PAPER_PRUNE_PARAMS, ArchitectureSpec, CompressionPoint,
                       SplitData, TrainedPair, default_layerwise_grid,
                       default_pruning_grid, evaluate_pair, layer_wise_sweep,
                       pair_fingerprint, prune_and_finetune, pruning_sweep,
                       split_fingerprint, sweep_cache_key, train_pair,
                       train_pair_replicas)
from .flops import combined_flops, layer_flops, macs, model_flops
from .initializers import get_initializer, he_uniform, xavier_uniform
from .layers import Dense
from .losses import MeanSquaredError, SoftmaxCrossEntropy, softmax
from .metrics import (accuracy, confusion_matrix, macro_f1, mape,
                      within_one_accuracy)
from .mlp import MLP
from .optim import SGD, Adam
from .population import (PopulationAdam, PopulationDense, PopulationMLP,
                         PopulationSGD, fit_population,
                         train_population_classifier,
                         train_population_regressor)
from .prune import PruneReport, magnitude_prune, neuron_prune, prune_model
from .quant import (FixedPointFormat, QuantizationReport, choose_format,
                    quantize_model)
from .serialize import (load_model, model_from_arrays, model_from_bytes,
                        model_to_arrays, model_to_bytes, save_model)
from .trainer import (TrainConfig, TrainHistory, fit, train_classifier,
                      train_regressor)

__all__ = [
    "PAPER_BASE_SPEC", "PAPER_COMPRESSED_SPEC", "PAPER_PRUNE_PARAMS",
    "ArchitectureSpec", "CompressionPoint", "SplitData", "TrainedPair",
    "default_layerwise_grid", "default_pruning_grid", "evaluate_pair",
    "layer_wise_sweep", "pair_fingerprint", "prune_and_finetune",
    "pruning_sweep", "split_fingerprint", "sweep_cache_key", "train_pair",
    "train_pair_replicas",
    "combined_flops", "layer_flops", "macs", "model_flops",
    "get_initializer", "he_uniform", "xavier_uniform",
    "Dense",
    "MeanSquaredError", "SoftmaxCrossEntropy", "softmax",
    "accuracy", "confusion_matrix", "macro_f1", "mape",
    "within_one_accuracy",
    "MLP",
    "SGD", "Adam",
    "PopulationAdam", "PopulationDense", "PopulationMLP", "PopulationSGD",
    "fit_population", "train_population_classifier",
    "train_population_regressor",
    "PruneReport", "magnitude_prune", "neuron_prune", "prune_model",
    "FixedPointFormat", "QuantizationReport", "choose_format",
    "quantize_model",
    "load_model", "model_from_arrays", "model_from_bytes",
    "model_to_arrays", "model_to_bytes", "save_model",
    "TrainConfig", "TrainHistory", "fit", "train_classifier",
    "train_regressor",
]
