"""Fixed-point quantization.

The paper's ASIC module computes in FP32 (§V-D), but a fixed-point
variant is the natural ablation for the hardware cost model, and
quantization error bounds feed the ASIC datapath's precision argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from .mlp import MLP


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed fixed-point format Q(integer_bits).(fraction_bits)."""

    total_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise ModelError("need at least 2 bits (sign + magnitude)")
        if not 0 <= self.fraction_bits < self.total_bits:
            raise ModelError("fraction bits must fit inside total bits")

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return (2 ** (self.total_bits - 1) - 1) * self.scale

    @property
    def min_value(self) -> float:
        """Most negative representable value."""
        return -(2 ** (self.total_bits - 1)) * self.scale

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round-to-nearest quantization with saturation."""
        quantized = np.round(values / self.scale) * self.scale
        return np.clip(quantized, self.min_value, self.max_value)


def choose_format(values: np.ndarray, total_bits: int) -> FixedPointFormat:
    """Pick the fraction-bit count that covers the value range."""
    peak = float(np.max(np.abs(values))) if values.size else 0.0
    if peak == 0.0:
        return FixedPointFormat(total_bits, total_bits - 1)
    integer_bits = max(0, int(np.ceil(np.log2(peak + 1e-12))) + 1)
    fraction_bits = max(0, total_bits - 1 - integer_bits)
    return FixedPointFormat(total_bits, fraction_bits)


@dataclass(frozen=True)
class QuantizationReport:
    """Outcome of quantizing one model."""

    total_bits: int
    max_weight_error: float
    mean_weight_error: float


def quantize_model(model: MLP, total_bits: int = 16) -> tuple[MLP, QuantizationReport]:
    """Return a quantized copy of ``model`` and an error report.

    Each layer gets its own fixed-point format sized to its weight
    range (per-layer scaling, standard practice for tiny MLP engines).
    """
    quantized = model.clone()
    max_err = 0.0
    errs = []
    for layer in quantized.layers:
        fmt = choose_format(layer.weights, total_bits)
        original = layer.weights.copy()
        layer.weights = fmt.quantize(layer.weights)
        layer.apply_mask()
        err = np.abs(layer.weights - original)
        if err.size:
            max_err = max(max_err, float(err.max()))
            errs.append(float(err.mean()))
        bias_fmt = choose_format(layer.bias, total_bits)
        layer.bias = bias_fmt.quantize(layer.bias)
    report = QuantizationReport(
        total_bits=total_bits,
        max_weight_error=max_err,
        mean_weight_error=float(np.mean(errs)) if errs else 0.0,
    )
    return quantized, report
