"""Weight initializers for the numpy NN framework."""

from __future__ import annotations

import numpy as np

from ..errors import ModelError


def he_uniform(rng: np.random.Generator, fan_in: int,
               fan_out: int) -> np.ndarray:
    """He (Kaiming) uniform init — the right default for ReLU stacks."""
    if fan_in <= 0 or fan_out <= 0:
        raise ModelError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def xavier_uniform(rng: np.random.Generator, fan_in: int,
                   fan_out: int) -> np.ndarray:
    """Glorot uniform init — used for linear output layers."""
    if fan_in <= 0 or fan_out <= 0:
        raise ModelError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


INITIALIZERS = {
    "he": he_uniform,
    "xavier": xavier_uniform,
}


def get_initializer(name: str):
    """Look up an initializer by name."""
    try:
        return INITIALIZERS[name]
    except KeyError:
        raise ModelError(
            f"unknown initializer {name!r}; available: {sorted(INITIALIZERS)}"
        ) from None
