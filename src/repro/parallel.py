"""Parallel campaign execution with deterministic fan-out.

The offline stages of the reproduction — the §III-A data-generation
protocol and the Fig. 4 policy × kernel evaluation grid — are
embarrassingly parallel: every task builds its own simulator from an
explicit seed, so results are independent of execution order.  This
module provides the shared campaign layer:

* :func:`parallel_map` — ordered, chunked fan-out over a
  ``ProcessPoolExecutor`` that degrades gracefully: pool-level failures
  (crashed workers, unpicklable tasks) fall back to an in-process
  serial pass, so a campaign never fails *because* it was parallel.
* :class:`CampaignStats` — lightweight observability: per-stage
  wall-clock timings, worker counts and named counters (cache hits and
  misses among them), rendered by the CLI ``--stats`` flag.
* :func:`derive_seed` — stable per-task seed derivation so fan-out
  keeps the bit-identical determinism of the serial path.

Tasks must be picklable module-level callables to actually run in
worker processes; anything else silently takes the serial fallback
(counted in ``parallel_fallbacks``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from .errors import ParallelError

T = TypeVar("T")
R = TypeVar("R")

#: Exception types that indicate the *pool* (not the task) failed and a
#: serial fallback is safe: broken workers, unpicklable callables or
#: arguments, and OS-level process failures.  Task-level library errors
#: (``ReproError`` subclasses) propagate unchanged.
_POOL_FAILURES = (BrokenProcessPool, pickle.PicklingError, AttributeError,
                  TypeError, ImportError, OSError)


@dataclass
class StageTiming:
    """Wall-clock record of one campaign stage."""

    name: str
    seconds: float
    tasks: int
    workers: int
    mode: str  # "serial" | "parallel" | "fallback"


class CampaignStats:
    """Counters and stage timings of one campaign invocation.

    A single instance is threaded through data generation, dataset
    assembly, caching and evaluation, so one ``render()`` shows the
    whole pipeline: where the time went, how wide each stage fanned
    out, and whether caches were hit.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.stages: list[StageTiming] = []

    # ------------------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        """Increment a named counter."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        return self.counters.get(name, 0)

    @property
    def cache_hits(self) -> int:
        """Total hits over every ``*cache_hit`` counter."""
        return sum(v for k, v in self.counters.items()
                   if k.endswith("cache_hit"))

    @property
    def cache_misses(self) -> int:
        """Total misses over every ``*cache_miss`` counter."""
        return sum(v for k, v in self.counters.items()
                   if k.endswith("cache_miss"))

    # ------------------------------------------------------------------
    @contextmanager
    def stage(self, name: str, tasks: int = 0, workers: int = 1,
              mode: str = "serial") -> Iterator[StageTiming]:
        """Time a named stage; the yielded record may be amended."""
        timing = StageTiming(name=name, seconds=0.0, tasks=tasks,
                             workers=workers, mode=mode)
        start = time.perf_counter()
        try:
            yield timing
        finally:
            timing.seconds = time.perf_counter() - start
            self.stages.append(timing)

    def total_seconds(self) -> float:
        """Summed wall-clock over all recorded stages."""
        return sum(s.seconds for s in self.stages)

    def render(self) -> str:
        """Human-readable campaign summary (the ``--stats`` output)."""
        lines = ["campaign stats"]
        if self.stages:
            lines.append(f"  {'stage':24s} {'mode':9s} {'workers':>7s} "
                         f"{'tasks':>6s} {'wall (s)':>9s}")
            for s in self.stages:
                lines.append(f"  {s.name:24s} {s.mode:9s} {s.workers:7d} "
                             f"{s.tasks:6d} {s.seconds:9.3f}")
            lines.append(f"  {'total':24s} {'':9s} {'':7s} {'':6s} "
                         f"{self.total_seconds():9.3f}")
        if self.counters:
            lines.append("  counters")
            for name in sorted(self.counters):
                lines.append(f"    {name:30s} {self.counters[name]}")
        if not self.stages and not self.counters:
            lines.append("  (empty)")
        return "\n".join(lines)


def derive_seed(base_seed: int, *parts: object) -> int:
    """Stable per-task seed: SHA-256 of the base seed and task identity.

    Independent of worker count and scheduling order, so parallel and
    serial campaigns draw identical random streams for the same task.
    """
    payload = ":".join([str(int(base_seed)), *map(str, parts)])
    digest = hashlib.sha256(payload.encode()).digest()
    return int.from_bytes(digest[:8], "big") % (2 ** 63)


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``--workers`` value: ``None``/1 → serial, ≤0 → all cores."""
    if workers is None:
        return 1
    workers = int(workers)
    if workers <= 0:
        return max(1, os.cpu_count() or 1)
    return workers


def default_chunksize(num_tasks: int, workers: int) -> int:
    """Chunk fan-out so each worker sees ~4 chunks (amortised pickling)."""
    if num_tasks <= 0 or workers <= 0:
        raise ParallelError("chunking needs positive task/worker counts")
    return max(1, (num_tasks + 4 * workers - 1) // (4 * workers))


def _serial_map(fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
    return [fn(task) for task in tasks]


def parallel_map(fn: Callable[[T], R], tasks: Iterable[T], *,
                 workers: int | None = None, chunksize: int | None = None,
                 stats: CampaignStats | None = None,
                 stage: str = "campaign") -> list[R]:
    """Map ``fn`` over ``tasks``, preserving order.

    With ``workers`` > 1 the map fans out over a process pool in chunks;
    any pool-level failure (worker crash, unpicklable task) falls back
    to a serial in-process pass over *all* tasks, so results are always
    complete and ordered.  Exceptions raised by ``fn`` itself propagate
    unchanged, exactly as a plain loop would raise them.
    """
    tasks = list(tasks)
    stats = stats if stats is not None else CampaignStats()
    workers = min(resolve_workers(workers), max(1, len(tasks)))
    if workers <= 1:
        with stats.stage(stage, tasks=len(tasks), workers=1, mode="serial"):
            return _serial_map(fn, tasks)
    chunk = chunksize or default_chunksize(len(tasks), workers)
    with stats.stage(stage, tasks=len(tasks), workers=workers,
                     mode="parallel") as timing:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, tasks, chunksize=chunk))
        except _POOL_FAILURES:
            stats.count("parallel_fallbacks")
            timing.mode = "fallback"
            timing.workers = 1
            return _serial_map(fn, tasks)
