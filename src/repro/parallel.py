"""Parallel campaign execution with deterministic, resilient fan-out.

The offline stages of the reproduction — the §III-A data-generation
protocol and the Fig. 4 policy × kernel evaluation grid — are
embarrassingly parallel: every task builds its own simulator from an
explicit seed, so results are independent of execution order.  This
module provides the shared campaign layer:

* :func:`parallel_map` — ordered fan-out over a
  ``ProcessPoolExecutor`` hardened against the failure modes a long
  campaign actually meets: per-task retry with exponential backoff,
  a stall watchdog that terminates hung workers, quarantine of tasks
  that keep killing their workers (the rest of the campaign completes
  first; quarantined tasks get one final in-process rescue), and
  unpicklable work degrading to a serial pass.  A task that fails
  permanently raises :class:`~repro.errors.CampaignError` carrying the
  originating task id.
* :class:`CampaignCheckpoint` — periodic persistence of completed task
  results keyed by the campaign's content hash, so an interrupted
  ``datagen``/``evaluate`` campaign resumes instead of restarting; a
  corrupt or mismatched checkpoint is ignored, never fatal.
* :class:`CampaignStats` — lightweight observability: per-stage
  wall-clock timings, worker counts and named counters (cache hits,
  retries, crashes, hangs among them), rendered by the CLI ``--stats``
  flag.
* :func:`derive_seed` — stable per-task seed derivation so fan-out
  keeps the bit-identical determinism of the serial path.

With ``workers <= 1`` the map is a plain in-process loop and task
exceptions propagate unchanged; resilience applies to the pooled path,
where worker death would otherwise cost the whole campaign.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from .errors import CampaignError, ParallelError, ReproError
from .store import atomic_write_bytes

logger = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")

#: Exception types that indicate the *pool* (not the task) failed:
#: broken workers, unpicklable callables or arguments, and OS-level
#: process failures.  Task-level library errors (``ReproError``
#: subclasses) are handled by the retry/quarantine machinery instead.
_POOL_FAILURES = (BrokenProcessPool, pickle.PicklingError, AttributeError,
                  TypeError, ImportError, OSError)

#: Upper bound on one backoff sleep; retries never stall a campaign
#: for more than a couple of seconds per round.
_MAX_BACKOFF_S = 2.0


@dataclass
class StageTiming:
    """Wall-clock record of one campaign stage."""

    name: str
    seconds: float
    tasks: int
    workers: int
    mode: str  # "serial" | "parallel" | "fallback"


class CampaignStats:
    """Counters and stage timings of one campaign invocation.

    A single instance is threaded through data generation, dataset
    assembly, caching and evaluation, so one ``render()`` shows the
    whole pipeline: where the time went, how wide each stage fanned
    out, whether caches were hit, and what the resilience machinery
    (retries, crashes, hangs, checkpoint resumes, guard trips) had to
    absorb.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.stages: list[StageTiming] = []

    # ------------------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        """Increment a named counter."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        return self.counters.get(name, 0)

    def merge_counters(self, counters: dict[str, int] | None) -> None:
        """Fold a counter dict (e.g. from a worker or a policy) in."""
        for name, amount in (counters or {}).items():
            self.count(name, amount)

    @property
    def cache_hits(self) -> int:
        """Total hits over every ``*cache_hit`` counter."""
        return sum(v for k, v in self.counters.items()
                   if k.endswith("cache_hit"))

    @property
    def cache_misses(self) -> int:
        """Total misses over every ``*cache_miss`` counter."""
        return sum(v for k, v in self.counters.items()
                   if k.endswith("cache_miss"))

    # ------------------------------------------------------------------
    @contextmanager
    def stage(self, name: str, tasks: int = 0, workers: int = 1,
              mode: str = "serial") -> Iterator[StageTiming]:
        """Time a named stage; the yielded record may be amended."""
        timing = StageTiming(name=name, seconds=0.0, tasks=tasks,
                             workers=workers, mode=mode)
        start = time.perf_counter()
        try:
            yield timing
        finally:
            timing.seconds = time.perf_counter() - start
            self.stages.append(timing)

    def total_seconds(self) -> float:
        """Summed wall-clock over all recorded stages."""
        return sum(s.seconds for s in self.stages)

    def render(self) -> str:
        """Human-readable campaign summary (the ``--stats`` output)."""
        lines = ["campaign stats"]
        if self.stages:
            lines.append(f"  {'stage':24s} {'mode':9s} {'workers':>7s} "
                         f"{'tasks':>6s} {'wall (s)':>9s}")
            for s in self.stages:
                lines.append(f"  {s.name:24s} {s.mode:9s} {s.workers:7d} "
                             f"{s.tasks:6d} {s.seconds:9.3f}")
            lines.append(f"  {'total':24s} {'':9s} {'':7s} {'':6s} "
                         f"{self.total_seconds():9.3f}")
        if self.counters:
            lines.append("  counters")
            for name in sorted(self.counters):
                lines.append(f"    {name:30s} {self.counters[name]}")
        if not self.stages and not self.counters:
            lines.append("  (empty)")
        return "\n".join(lines)


def derive_seed(base_seed: int, *parts: object) -> int:
    """Stable per-task seed: SHA-256 of the base seed and task identity.

    Independent of worker count and scheduling order, so parallel and
    serial campaigns draw identical random streams for the same task.
    """
    payload = ":".join([str(int(base_seed)), *map(str, parts)])
    digest = hashlib.sha256(payload.encode()).digest()
    return int.from_bytes(digest[:8], "big") % (2 ** 63)


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``--workers`` value: ``None``/1 → serial, ≤0 → all cores."""
    if workers is None:
        return 1
    workers = int(workers)
    if workers <= 0:
        return max(1, os.cpu_count() or 1)
    return workers


def default_chunksize(num_tasks: int, workers: int) -> int:
    """Chunk fan-out so each worker sees ~4 chunks (amortised pickling)."""
    if num_tasks <= 0 or workers <= 0:
        raise ParallelError("chunking needs positive task/worker counts")
    return max(1, (num_tasks + 4 * workers - 1) // (4 * workers))


# ---------------------------------------------------------------------------
# Checkpointing
# ---------------------------------------------------------------------------

class CampaignCheckpoint:
    """Periodic persistence of completed campaign-task results.

    The payload is a pickle of ``{magic, key, results}`` where ``key``
    identifies the campaign (callers pass the same content-addressed
    hash that names the final artefact), so a checkpoint can never be
    resumed into a different campaign.  Writes are atomic
    (tmp + ``os.replace``); a corrupt, truncated or mismatched file
    loads as empty — resuming degrades to restarting, never to
    crashing.  Because campaign tasks are deterministic, a resumed
    campaign's final artefact is byte-identical to an uninterrupted
    run's.
    """

    MAGIC = "repro-campaign-checkpoint-v1"

    def __init__(self, path: str | Path, key: str = "",
                 every: int = 1) -> None:
        if every < 1:
            raise ParallelError("checkpoint interval must be >= 1 task")
        self.path = Path(path)
        self.key = str(key)
        self.every = int(every)
        self.loaded_tasks = 0
        self.saves = 0

    def load(self, expected_tasks: int | None = None) -> dict[int, object]:
        """Completed results from disk ({} for missing/corrupt/mismatch)."""
        if not self.path.exists():
            return {}
        try:
            payload = pickle.loads(self.path.read_bytes())
            if (payload.get("magic") != self.MAGIC
                    or payload.get("key") != self.key):
                logger.warning("checkpoint %s belongs to a different "
                               "campaign; ignoring", self.path)
                return {}
            results = dict(payload["results"])
        except Exception:
            logger.warning("corrupt campaign checkpoint %s; ignoring",
                           self.path, exc_info=True)
            return {}
        if expected_tasks is not None:
            results = {index: value for index, value in results.items()
                       if 0 <= index < expected_tasks}
        self.loaded_tasks = len(results)
        return results

    def save(self, results: dict[int, object]) -> None:
        """Atomically persist the completed results.

        Routed through the shared write-temp/fsync/rename helper so a
        crash mid-checkpoint can never leave a torn file for the next
        resume to (silently) discard.
        """
        payload = {"magic": self.MAGIC, "key": self.key,
                   "results": dict(results)}
        atomic_write_bytes(self.path, pickle.dumps(payload))
        self.saves += 1

    def clear(self) -> None:
        """Remove the checkpoint (the campaign completed)."""
        self.path.unlink(missing_ok=True)


# ---------------------------------------------------------------------------
# Resilient fan-out
# ---------------------------------------------------------------------------

def _run_group(fn: Callable[[T], R],
               tasks: list[T]) -> list[tuple[bool, object]]:
    """Worker-side unit: run a task group, reporting per-task outcomes.

    Task exceptions are captured per task (so one bad task cannot hide
    its group-mates' finished results); ``KeyboardInterrupt`` and other
    ``BaseException``s propagate to the pool machinery unchanged.
    """
    outcomes: list[tuple[bool, object]] = []
    for task in tasks:
        try:
            outcomes.append((True, fn(task)))
        except Exception as exc:
            outcomes.append((False, exc))
    return outcomes


#: Errors a teardown step can legitimately hit on a broken pool:
#: OS-level process trouble plus interpreter internals drifting.
#: Anything else — ``KeyboardInterrupt`` included — propagates.
_POOL_TEARDOWN_ERRORS = (OSError, ValueError, RuntimeError,
                         AttributeError, KeyError)


def _terminate_pool(pool: ProcessPoolExecutor,
                    stats: CampaignStats | None = None) -> None:
    """Hard-stop a pool whose workers may be hung or dead.

    ``shutdown(wait=True)`` would block forever on a hung worker, so
    the worker processes are terminated first.  Uses the executor's
    process table (no public kill API exists).  Teardown failures are
    never fatal — a campaign must not die while cleaning up a pool
    that is already broken — but they are no longer silent: each one
    is logged and counted as ``campaign_suppressed_errors``.
    """
    def _suppress(exc: BaseException, step: str) -> None:
        logger.warning("suppressed %s during pool teardown: %r", step, exc)
        if stats is not None:
            stats.count("campaign_suppressed_errors")

    processes = list(getattr(pool, "_processes", None) or {})
    process_map = getattr(pool, "_processes", None) or {}
    for pid in processes:
        try:
            process_map[pid].terminate()
        except _POOL_TEARDOWN_ERRORS as exc:
            _suppress(exc, f"terminate of worker {pid}")
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except _POOL_TEARDOWN_ERRORS as exc:
        _suppress(exc, "pool shutdown")
    for pid in processes:
        try:
            process_map[pid].join(timeout=5.0)
        except _POOL_TEARDOWN_ERRORS as exc:
            _suppress(exc, f"join of worker {pid}")


#: Ways ``pickle.dumps`` fails on an object that genuinely cannot
#: travel to a worker process.  Unrelated errors propagate.
_PICKLE_PROBE_ERRORS = (pickle.PicklingError, TypeError, AttributeError,
                        ValueError, RecursionError, NotImplementedError)


def _is_picklable(obj: object) -> bool:
    """True when ``obj`` can be shipped to a process-pool worker."""
    try:
        pickle.dumps(obj)
        return True
    except _PICKLE_PROBE_ERRORS:
        return False


#: Errors a checkpoint write can hit without invalidating the campaign
#: itself: filesystem trouble or an unpicklable result payload.
_CHECKPOINT_WRITE_ERRORS = (OSError, pickle.PicklingError, TypeError)


def _checkpoint_save(checkpoint: CampaignCheckpoint | None,
                     results: dict[int, object],
                     stats: CampaignStats) -> None:
    """Persist progress; a failed write is visible, never fatal.

    A full disk or unpicklable result must not kill an otherwise
    healthy campaign — the run merely loses its ability to resume.
    The failure is logged and counted
    (``campaign_checkpoint_write_failures`` plus the aggregate
    ``campaign_suppressed_errors``) so ``--stats`` surfaces it.
    """
    if checkpoint is None:
        return
    try:
        checkpoint.save(results)
    except _CHECKPOINT_WRITE_ERRORS as exc:
        logger.warning("campaign checkpoint write to %s failed: %r",
                       checkpoint.path, exc)
        stats.count("campaign_checkpoint_write_failures")
        stats.count("campaign_suppressed_errors")
    else:
        stats.count("campaign_checkpoint_saves")


def _checkpoint_clear(checkpoint: CampaignCheckpoint | None,
                      stats: CampaignStats) -> None:
    """Remove a completed campaign's checkpoint; count a failed unlink."""
    if checkpoint is None:
        return
    try:
        checkpoint.clear()
    except OSError as exc:
        logger.warning("could not remove campaign checkpoint %s: %r",
                       checkpoint.path, exc)
        stats.count("campaign_suppressed_errors")


def _serial_map(fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
    return [fn(task) for task in tasks]


def _serial_pass(fn: Callable[[T], R], tasks: Sequence[T],
                 results: dict[int, R], stats: CampaignStats,
                 checkpoint: CampaignCheckpoint | None) -> list[R]:
    """In-process completion of every task not already in ``results``."""
    since_save = 0
    try:
        for index, task in enumerate(tasks):
            if index in results:
                continue
            results[index] = fn(task)
            since_save += 1
            if checkpoint is not None and since_save >= checkpoint.every:
                _checkpoint_save(checkpoint, results, stats)
                since_save = 0
    except BaseException:
        if checkpoint is not None and since_save:
            _checkpoint_save(checkpoint, results, stats)
        raise
    _checkpoint_clear(checkpoint, stats)
    return [results[index] for index in range(len(tasks))]


def parallel_map(fn: Callable[[T], R], tasks: Iterable[T], *,
                 workers: int | None = None, chunksize: int | None = None,
                 stats: CampaignStats | None = None,
                 stage: str = "campaign", retries: int = 2,
                 backoff_s: float = 0.05, timeout_s: float | None = None,
                 checkpoint: CampaignCheckpoint | None = None) -> list[R]:
    """Map ``fn`` over ``tasks``, preserving order, surviving failures.

    With ``workers`` > 1 the map fans out over a process pool and
    absorbs the pool's failure modes:

    * A worker crash (``BrokenProcessPool``) or a raised task exception
      costs the affected tasks one attempt; they are re-dispatched —
      individually, with exponential backoff — up to ``retries`` times.
      Deterministic library errors (``ReproError`` subclasses) skip
      straight past the pointless retries.
    * ``timeout_s`` is a stall watchdog: if *no* task completes for
      that long, the outstanding workers are presumed hung, terminated,
      and their tasks re-attempted.
    * A task that exhausts its attempts is quarantined — excluded from
      re-dispatch so the rest of the campaign completes — then given
      one final in-process rescue.  If even that fails, the campaign
      raises :class:`CampaignError` carrying the task id (completed
      results are checkpointed first when a checkpoint is configured).
    * An unpicklable ``fn`` falls back to a serial in-process pass
      (counted in ``parallel_fallbacks``), so a campaign never fails
      *because* it was parallel.

    With ``workers <= 1`` the map is a plain loop and task exceptions
    propagate unchanged, exactly as the serial pipeline would raise
    them.  ``checkpoint`` persists completed results periodically and
    seeds the map on the next invocation, so interrupted campaigns
    resume instead of restarting.
    """
    tasks = list(tasks)
    stats = stats if stats is not None else CampaignStats()
    if retries < 0:
        raise ParallelError("retries cannot be negative")
    workers = min(resolve_workers(workers), max(1, len(tasks)))

    results: dict[int, R] = {}
    if checkpoint is not None:
        results = checkpoint.load(expected_tasks=len(tasks))
        if results:
            stats.count("campaign_tasks_resumed", len(results))

    if workers <= 1:
        with stats.stage(stage, tasks=len(tasks), workers=1, mode="serial"):
            return _serial_pass(fn, tasks, results, stats, checkpoint)

    if not _is_picklable(fn):
        # The pool cannot even receive the work; degrade to serial.
        stats.count("parallel_fallbacks")
        with stats.stage(stage, tasks=len(tasks), workers=1, mode="fallback"):
            return _serial_pass(fn, tasks, results, stats, checkpoint)

    with stats.stage(stage, tasks=len(tasks), workers=workers,
                     mode="parallel") as timing:
        attempts: dict[int, int] = {}
        last_error: dict[int, BaseException | None] = {}
        quarantined: list[int] = []
        round_index = 0
        since_save = 0

        def _save_checkpoint() -> None:
            nonlocal since_save
            if checkpoint is not None and since_save:
                _checkpoint_save(checkpoint, results, stats)
                since_save = 0

        def _record_failure(index: int, exc: BaseException | None,
                            counter: str) -> None:
            stats.count(counter)
            last_error[index] = exc
            attempts[index] = attempts.get(index, 0) + 1
            # Deterministic library errors re-fail identically; skip the
            # pointless pool retries and go straight to quarantine.
            if isinstance(exc, ReproError):
                attempts[index] = retries + 1

        while True:
            pending = [index for index in range(len(tasks))
                       if index not in results
                       and attempts.get(index, 0) <= retries]
            if not pending:
                break
            if round_index > 0:
                time.sleep(min(backoff_s * (2 ** (round_index - 1)),
                               _MAX_BACKOFF_S))
                stats.count("campaign_retries", len(pending))
            # First round dispatches in chunks (amortised pickling);
            # retry rounds go task-by-task so one poisoned task cannot
            # drag innocent chunk-mates through its failures.
            if round_index == 0:
                chunk = chunksize or default_chunksize(len(pending), workers)
            else:
                chunk = 1
            groups = [pending[start:start + chunk]
                      for start in range(0, len(pending), chunk)]

            pool = ProcessPoolExecutor(max_workers=workers)
            pool_dirty = False
            try:
                futures = {}
                for group in groups:
                    try:
                        future = pool.submit(_run_group, fn,
                                             [tasks[i] for i in group])
                    except BaseException as exc:
                        for index in group:
                            _record_failure(index, exc,
                                            "campaign_worker_crashes")
                        continue
                    futures[future] = group
                outstanding = set(futures)
                while outstanding:
                    done, outstanding = wait(outstanding, timeout=timeout_s,
                                             return_when=FIRST_COMPLETED)
                    if not done:
                        # Stall watchdog: nothing finished for timeout_s.
                        pool_dirty = True
                        for future in outstanding:
                            for index in futures[future]:
                                if index not in results:
                                    _record_failure(index, None,
                                                    "campaign_hangs")
                        break
                    for future in done:
                        group = futures[future]
                        try:
                            outcomes = future.result()
                        except (KeyboardInterrupt, SystemExit):
                            pool_dirty = True
                            raise
                        except BaseException as exc:
                            counter = ("campaign_worker_crashes"
                                       if isinstance(exc, BrokenProcessPool)
                                       else "campaign_task_errors")
                            for index in group:
                                _record_failure(index, exc, counter)
                            continue
                        for index, (ok, value) in zip(group, outcomes):
                            if ok:
                                results[index] = value
                                since_save += 1
                            else:
                                _record_failure(index, value,
                                                "campaign_task_errors")
            except BaseException:
                _terminate_pool(pool, stats)
                _save_checkpoint()
                raise
            else:
                if pool_dirty:
                    _terminate_pool(pool, stats)
                else:
                    pool.shutdown(wait=True)
            if checkpoint is not None and since_save >= checkpoint.every:
                _save_checkpoint()
            round_index += 1

        quarantined = [index for index in range(len(tasks))
                       if index not in results]
        if quarantined:
            # Quarantine rescue: the pool kept failing these tasks, so
            # give each one final in-process attempt — the same serial
            # degradation the layer has always promised.
            stats.count("parallel_fallbacks")
            stats.count("campaign_quarantined", len(quarantined))
            timing.mode = "fallback"
            for index in quarantined:
                try:
                    results[index] = fn(tasks[index])
                    stats.count("campaign_serial_rescues")
                    since_save += 1
                except Exception as exc:
                    _save_checkpoint()
                    cause = last_error.get(index) or exc
                    raise CampaignError(
                        f"task {index} failed after "
                        f"{attempts.get(index, 0)} pooled attempts and an "
                        f"in-process rescue: {cause!r}",
                        task_id=index) from exc

        _checkpoint_clear(checkpoint, stats)
        return [results[index] for index in range(len(tasks))]
