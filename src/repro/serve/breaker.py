"""Circuit breaker around the ML inference path of the serving runtime.

An always-on service cannot afford to keep paying for inference that is
failing or stalling: every slow call holds a worker, every retry feeds
back into queue delay, and a wedged model turns overload into an
outage.  :class:`CircuitBreaker` is the classic three-state machine —
CLOSED (calls flow), OPEN (calls short-circuit to the governor/PCSTALL
baseline), HALF_OPEN (a probe trickle decides whether to close again) —
driven entirely by the serving loop's integer tick clock, so the whole
state trajectory is deterministic for a seeded run.

Transitions::

    CLOSED   --(failure streak >= failure_threshold)--> OPEN
    OPEN     --(open_ticks elapsed)-------------------> HALF_OPEN
    HALF_OPEN--(probe_successes clean probes)---------> CLOSED
    HALF_OPEN--(any probe failure)--------------------> OPEN

A success slower than ``latency_budget_s`` counts as a failure: the
breaker's job is protecting tail latency, and a model that answers
correctly but late is still burning the deadline budget of everything
queued behind it.  ``breaker_*`` counters expose every transition and
short-circuited call for ``--stats`` and the chaos harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ServeError

#: Breaker states (strings so traces and exports read naturally).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Thresholds of the inference circuit breaker.

    ``failure_threshold`` consecutive failures trip CLOSED -> OPEN;
    after ``open_ticks`` the breaker admits probes (HALF_OPEN), and
    ``probe_successes`` consecutive clean probes close it again.  A
    success with latency above ``latency_budget_s`` is accounted as a
    failure.
    """

    failure_threshold: int = 3
    latency_budget_s: float = 50e-6
    open_ticks: int = 8
    probe_successes: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ServeError("failure_threshold must be >= 1")
        if self.latency_budget_s <= 0:
            raise ServeError("latency_budget_s must be positive")
        if self.open_ticks < 1:
            raise ServeError("open_ticks must be >= 1")
        if self.probe_successes < 1:
            raise ServeError("probe_successes must be >= 1")


class CircuitBreaker:
    """Tick-driven closed/open/half-open breaker for one inference path.

    The caller asks :meth:`allow` before every inference and reports
    the outcome with :meth:`record_success` / :meth:`record_failure`;
    the breaker never measures time itself — the serving loop's tick is
    the only clock, which keeps seeded replays byte-stable.
    """

    def __init__(self, config: BreakerConfig | None = None) -> None:
        self.config = config or BreakerConfig()
        self.state = CLOSED
        self.counters: dict[str, int] = {}
        self._failure_streak = 0
        self._probe_streak = 0
        self._opened_at = 0
        self._admitted = 0  # calls allowed but not yet resolved

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    # ------------------------------------------------------------------
    def allow(self, now_tick: int) -> bool:
        """True when a call may go through the ML path at ``now_tick``."""
        if self.state == OPEN:
            if now_tick - self._opened_at >= self.config.open_ticks:
                self.state = HALF_OPEN
                self._probe_streak = 0
                self._count("breaker_half_opens")
            else:
                self._count("breaker_short_circuits")
                return False
        if self.state == HALF_OPEN:
            self._count("breaker_probes")
        self._admitted += 1
        return True

    def _resolve(self) -> None:
        if self._admitted < 1:
            raise ServeError(
                "breaker outcome recorded for a call that was never "
                "admitted through allow()")
        self._admitted -= 1

    def record_success(self, now_tick: int, latency_s: float) -> None:
        """Report a completed call; slow successes count as failures."""
        if latency_s > self.config.latency_budget_s:
            self._count("breaker_slow_successes")
            self.record_failure(now_tick)
            return
        self._resolve()
        self._failure_streak = 0
        if self.state == HALF_OPEN:
            self._probe_streak += 1
            if self._probe_streak >= self.config.probe_successes:
                self.state = CLOSED
                self._count("breaker_closes")

    def record_failure(self, now_tick: int) -> None:
        """Report a failed (or over-budget) call admitted earlier."""
        self._resolve()
        self._count("breaker_failures")
        if self.state == HALF_OPEN:
            # One bad probe is enough evidence: back to OPEN.
            self.state = OPEN
            self._opened_at = now_tick
            self._failure_streak = 0
            self._count("breaker_reopens")
            return
        self._failure_streak += 1
        if (self.state == CLOSED
                and self._failure_streak >= self.config.failure_threshold):
            self.state = OPEN
            self._opened_at = now_tick
            self._failure_streak = 0
            self._count("breaker_trips")

    def observability_counters(self) -> dict[str, int]:
        """Breaker counters (``breaker_*``), for ``--stats`` fold-in."""
        return dict(self.counters)
