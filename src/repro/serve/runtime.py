"""The always-on serving runtime: deterministic request loop over workers.

This is ROADMAP item 5 made concrete: the controller refactored from a
batch campaign into a long-running service.  The runtime is organised
as the repo's established two-phase deterministic replay:

* **Phase 1 (parallel)** — per-stream telemetry generation.  Each of
  ``config.streams`` simulated GPU streams runs its kernel under the
  default operating point through :func:`repro.parallel.parallel_map`
  (the ``--workers`` knob), producing a seeded epoch-record trace.
  Streams are independent and individually seeded, so the traces are
  byte-identical at any worker count.
* **Phase 2 (serial)** — the serving loop.  A single discrete-tick
  loop replays arrivals (with seeded jitter, duplication, reordering,
  storms, gaps and overload bursts from the
  :class:`~repro.faults.ServeFaultPlan`), assembles windows
  (:class:`~repro.serve.ingest.WindowAssembler`), applies backpressure
  (:class:`~repro.serve.ingest.RequestQueue`), and dispatches to
  supervised workers (:class:`~repro.serve.supervisor.Supervisor`)
  whose ML inference path is protected by a
  :class:`~repro.serve.breaker.CircuitBreaker` and whose Calibrator is
  fine-tuned online under the
  :class:`~repro.serve.online.OnlineCalibrator` gates.

Every decision leaving the runtime is validated with
:func:`repro.core.policy.validate_decision` *outside* the worker stack
— the certification harness's invariant 1 — and every request is
accounted exactly once as served, shed or failed (invariant 2).  The
supervisor's worker-replica count is a scenario constant; only phase 1
parallelism varies with ``--workers``, so a fixed seed exports a
byte-identical payload at any worker count (invariant 4).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

import numpy as np

from ..baselines.governor import UtilizationGovernor
from ..core.drift import DriftMonitor, RollbackManager
from ..core.guarded import GuardedController
from ..core.policy import StaticPolicy, validate_decision
from ..errors import ArtifactCorrupt, PolicyError, ServeError
from ..faults import ServeFaultConfig, ServeFaultPlan
from ..gpu.arch import GPUArchConfig
from ..gpu.simulator import GPUSimulator
from ..parallel import CampaignStats, derive_seed, parallel_map
from ..store import ArtifactStore, atomic_write_text
from ..workloads.suites import scale_kernel_to_duration, training_suite
from .breaker import BreakerConfig, CircuitBreaker
from .ingest import (IngestConfig, RequestQueue, ServeRequest,
                     TelemetrySample, WindowAssembler)
from .online import OnlineCalibrator, OnlineConfig
from .supervisor import Supervisor, SupervisorConfig

#: Artifact name the serving runtime checkpoints/restores pairs under.
SERVE_ARTIFACT = "serve-pair"


@dataclass(frozen=True)
class ServeConfig:
    """Scenario description of one serving run (a pure function of it).

    ``ticks`` is the serving horizon on the integer tick clock (one
    tick ~ one DVFS epoch of wall time); ``drain_ticks`` extends the
    loop without new arrivals so in-flight work, restarts and the queue
    settle before accounting.  ``arrival_rate`` is the per-stream
    expected samples per tick (a credit accumulator, not a random
    draw, so pacing is deterministic); jitter knobs add seeded
    duplication/reordering/loss on top, and the fault plan layers
    storms, gaps and bursts over that.
    """

    streams: int = 3
    ticks: int = 240
    drain_ticks: int = 96
    num_workers: int = 2
    queue_capacity: int = 12
    service_ticks: int = 1
    arrival_rate: float = 0.6
    deadline_fraction: float = 0.5
    deadline_slack_ticks: int = 8
    batch_slack_ticks: int = 48
    duplicate_rate: float = 0.03
    reorder_rate: float = 0.05
    drop_rate: float = 0.02
    stream_duration_us: float = 200.0
    inference_latency_us: float = 20.0
    stall_timeout_us: float = 500.0
    preset: float = 0.10
    online_enabled: bool = True
    seed: int = 0
    ingest: IngestConfig = field(default_factory=IngestConfig)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    supervisor: SupervisorConfig = field(default_factory=SupervisorConfig)
    online: OnlineConfig = field(default_factory=OnlineConfig)
    faults: ServeFaultConfig = field(default_factory=ServeFaultConfig)

    def __post_init__(self) -> None:
        if self.streams < 1 or self.num_workers < 1:
            raise ServeError("need at least one stream and one worker")
        if self.ticks < 1 or self.drain_ticks < 0:
            raise ServeError("ticks >= 1 and drain_ticks >= 0 required")
        if self.queue_capacity < 1:
            raise ServeError("queue_capacity must be >= 1")
        if self.service_ticks < 1:
            raise ServeError("service_ticks must be >= 1")
        if self.arrival_rate <= 0:
            raise ServeError("arrival_rate must be positive")
        if not 0.0 <= self.deadline_fraction <= 1.0:
            raise ServeError("deadline_fraction must be in [0, 1]")
        if self.deadline_slack_ticks < self.service_ticks:
            raise ServeError(
                "deadline_slack_ticks must cover one service interval")
        if self.batch_slack_ticks < self.deadline_slack_ticks:
            raise ServeError("batch slack cannot undercut deadline slack")
        for name in ("duplicate_rate", "reorder_rate", "drop_rate"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ServeError(f"{name} must be a probability in [0, 1]")
        if self.stream_duration_us <= 0 or self.inference_latency_us <= 0:
            raise ServeError("durations and latencies must be positive")
        if self.stall_timeout_us * 1e-6 <= self.breaker.latency_budget_s:
            raise ServeError(
                "stall_timeout_us must exceed the breaker latency budget")

    def with_seed(self, seed: int) -> "ServeConfig":
        """The same scenario under a different seed (faults re-seeded)."""
        return replace(self, seed=int(seed),
                       faults=self.faults.with_seed(seed))


def _stream_trace(task) -> list:
    """Phase-1 task: one stream's seeded telemetry trace.

    Runs the stream's kernel at the default operating point and keeps
    the completed epoch records; the serving loop replays them
    (cyclically) as that stream's counter windows.  Pure function of
    the task tuple — the parallel fan-out cannot change it.
    """
    arch, kernel, seed = task
    simulator = GPUSimulator(arch, kernel, seed=seed)
    result = simulator.run(StaticPolicy(arch.vf_table.default_level))
    records = [record for record in result.records
               if not record.all_finished]
    return records or result.records


@dataclass
class _InFlight:
    """A dispatched request plus its already-computed decision."""

    request: ServeRequest
    levels: list
    path: str  # "ml" | "degraded" | "pinned" | "fallback"


@dataclass
class ServeResult:
    """Outcome of one serving run: accounting, tails, counters.

    ``conserved`` is invariant 2 (``served + shed + failed ==
    submitted``); the shed audit records carry the context for
    invariant 5; ``recovery_ticks`` / ``unrecovered`` feed invariant 3;
    and the served-level bounds re-check invariant 1 outside the
    runtime's own validation.
    """

    policy_name: str
    streams: int
    ticks: int
    num_workers: int
    seed: int
    submitted: int = 0
    served: int = 0
    failed: int = 0
    shed_records: list = field(default_factory=list)
    wait_ticks: list = field(default_factory=list)
    recovery_ticks: list = field(default_factory=list)
    quarantined: int = 0
    unrecovered: int = 0
    min_level_served: int | None = None
    max_level_served: int | None = None
    num_levels: int = 0
    fault_counts: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    decision_paths: dict = field(default_factory=dict)

    @property
    def shed(self) -> int:
        """How many requests were shed (all reasons)."""
        return len(self.shed_records)

    @property
    def conserved(self) -> bool:
        """Invariant 2: every submitted request accounted exactly once."""
        return self.submitted == self.served + self.shed + self.failed

    def merge_counters(self, counters: dict) -> None:
        """Accumulate one component's counters into the run totals."""
        for name, amount in counters.items():
            self.counters[name] = self.counters.get(name, 0) + int(amount)

    def wait_percentile(self, fraction: float) -> int:
        """Queueing-delay percentile in ticks (0 when nothing served)."""
        if not self.wait_ticks:
            return 0
        ordered = sorted(self.wait_ticks)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return int(ordered[index])

    def to_payload(self) -> dict:
        """JSON-ready dict (no wall-clock: seeded runs export bit-equal)."""
        return {
            "policy": self.policy_name,
            "streams": self.streams,
            "ticks": self.ticks,
            "num_workers": self.num_workers,
            "seed": self.seed,
            "submitted": self.submitted,
            "served": self.served,
            "shed": self.shed,
            "failed": self.failed,
            "conserved": self.conserved,
            "shed_records": [record.to_payload()
                             for record in self.shed_records],
            "wait_p50": self.wait_percentile(0.50),
            "wait_p95": self.wait_percentile(0.95),
            "wait_max": max(self.wait_ticks) if self.wait_ticks else 0,
            "recovery_ticks": sorted(self.recovery_ticks),
            "quarantined": self.quarantined,
            "unrecovered": self.unrecovered,
            "min_level_served": self.min_level_served,
            "max_level_served": self.max_level_served,
            "num_levels": self.num_levels,
            "fault_counts": dict(sorted(self.fault_counts.items())),
            "decision_paths": dict(sorted(self.decision_paths.items())),
            "counters": dict(sorted(self.counters.items())),
        }

    def export_json(self, path) -> object:
        """Atomically write the payload as JSON; returns the path."""
        from pathlib import Path
        path = Path(path)
        atomic_write_text(path, json.dumps(self.to_payload(), indent=2,
                                           sort_keys=True))
        return path

    def render(self) -> str:
        """Human-readable serving report."""
        lines = [
            f"serve  policy={self.policy_name}  streams={self.streams}  "
            f"workers={self.num_workers}  ticks={self.ticks}  "
            f"seed={self.seed}",
            f"  requests: submitted={self.submitted}  served={self.served}"
            f"  shed={self.shed}  failed={self.failed}  "
            f"conserved={'yes' if self.conserved else 'NO'}",
            f"  wait ticks: p50={self.wait_percentile(0.5)}  "
            f"p95={self.wait_percentile(0.95)}  "
            f"max={max(self.wait_ticks) if self.wait_ticks else 0}",
            f"  workers: quarantined={self.quarantined}  "
            f"unrecovered={self.unrecovered}  recoveries="
            f"{len(self.recovery_ticks)}"
            + (f" (max {max(self.recovery_ticks)} ticks)"
               if self.recovery_ticks else ""),
            f"  decision paths: " + ", ".join(
                f"{name}={count}" for name, count
                in sorted(self.decision_paths.items())),
        ]
        if self.fault_counts:
            lines.append("  faults: " + ", ".join(
                f"{kind}={count}" for kind, count
                in sorted(self.fault_counts.items())))
        interesting = ("breaker_trips", "breaker_closes",
                       "supervisor_restarts", "supervisor_restores",
                       "online_updates_promoted", "online_updates_rejected",
                       "serve_invalid_decisions")
        shown = {name: self.counters[name] for name in interesting
                 if name in self.counters}
        if shown:
            lines.append("  counters: " + ", ".join(
                f"{name}={count}" for name, count in sorted(shown.items())))
        return "\n".join(lines)


class ServingRuntime:
    """Deterministic always-on serving loop over supervised workers.

    ``model`` is the deployed :class:`~repro.core.combined.SSMDVFSModel`
    pair (None serves through the governor baseline, which keeps smoke
    runs model-free); ``store_root`` enables checkpointed restarts,
    drift rollback and online-update versioning through one
    :class:`~repro.store.ArtifactStore`.  ``workers`` is the *phase-1*
    process-pool width only — the supervised worker count is
    ``config.num_workers`` and part of the scenario.
    """

    def __init__(self, arch: GPUArchConfig, config: ServeConfig, *,
                 model=None, store_root=None,
                 workers: int | None = None,
                 stats: CampaignStats | None = None) -> None:
        self.arch = arch
        self.config = config
        self.model = model
        self.workers = workers
        self.stats = stats if stats is not None else CampaignStats()
        self.store = (ArtifactStore(store_root)
                      if store_root is not None else None)
        self.policy_name = ("ssmdvfs+serve" if model is not None
                            else "governor+serve")
        kernels = training_suite()
        self._kernels = [
            scale_kernel_to_duration(kernels[s % len(kernels)], arch,
                                     config.stream_duration_us * 1e-6)
            for s in range(config.streams)]
        self._online: OnlineCalibrator | None = None
        self._stack_counters: dict[str, int] = {}

    # -- worker stacks --------------------------------------------------
    def _current_model(self):
        if self._online is not None:
            return self._online.model
        return self.model

    def _bind_sim(self, worker_id: int) -> GPUSimulator:
        return GPUSimulator(self.arch, self._kernels[0],
                            seed=derive_seed(self.config.seed,
                                             "serve-bind", worker_id))

    def _build_stack(self, worker_id: int) -> tuple[dict, bool]:
        """(decision stack, restored-from-store?) for one worker."""
        from ..core.combined import SSMDVFSModel
        from ..core.controller import SSMDVFSController
        simulator = self._bind_sim(worker_id)
        degraded = UtilizationGovernor()
        degraded.reset(simulator)
        restored = False
        if self.model is None:
            primary = UtilizationGovernor()
            primary.reset(simulator)
            return {"primary": primary, "degraded": degraded,
                    "simulator": simulator}, restored
        pair = self._current_model()
        if self.store is not None:
            try:
                blob = self.store.get(SERVE_ARTIFACT)
                candidate = SSMDVFSModel.from_bytes(blob)
                if candidate.verify():
                    pair, restored = candidate, True
            except ArtifactCorrupt:
                pass  # store empty/corrupt: serve the in-memory pair
        controller = SSMDVFSController(pair, self.config.preset)
        rollback = None
        if self.store is not None:
            rollback = RollbackManager(
                self.store, SERVE_ARTIFACT,
                build=lambda restored_pair: SSMDVFSController(
                    restored_pair, self.config.preset))
        guard = GuardedController(controller, drift_monitor=DriftMonitor(),
                                  rollback=rollback)
        guard.reset(simulator)
        return {"primary": guard, "degraded": degraded,
                "simulator": simulator}, restored

    def _harvest_stack(self, stack: dict) -> None:
        """Fold a retiring stack's policy counters into the run totals."""
        for policy in (stack.get("primary"), stack.get("degraded")):
            source = getattr(policy, "observability_counters", None)
            if callable(source):
                for name, amount in source().items():
                    self._stack_counters[name] = (
                        self._stack_counters.get(name, 0) + amount)

    # -- the serving loop -----------------------------------------------
    def run(self) -> ServeResult:
        """Run the full two-phase serving replay; returns the result."""
        config = self.config
        result = ServeResult(
            policy_name=self.policy_name, streams=config.streams,
            ticks=config.ticks, num_workers=config.num_workers,
            seed=config.seed,
            num_levels=self.arch.vf_table.num_levels)

        # Phase 1: parallel, seeded, per-stream telemetry generation.
        tasks = [(self.arch, self._kernels[s],
                  derive_seed(config.seed, "serve-stream", s))
                 for s in range(config.streams)]
        traces = parallel_map(_stream_trace, tasks, workers=self.workers,
                              stats=self.stats, stage="serve-telemetry")

        # Setup: store seeding, online loop, supervised workers.
        if (self.store is not None and self.model is not None
                and self.store.latest_version(SERVE_ARTIFACT) is None):
            self.store.put(SERVE_ARTIFACT, self.model.to_bytes(),
                           schema="ssmdvfs-pair/v1", mark_good=True)
        if (config.online_enabled and self.model is not None
                and self.store is not None):
            self._online = OnlineCalibrator(
                self.model, self.store, SERVE_ARTIFACT, config.online,
                seed=config.seed)
        plan = ServeFaultPlan.build(config.faults, config.num_workers,
                                    config.streams, config.ticks)
        plan.validate_for(config.num_workers, config.streams)
        result.fault_counts = plan.counts_by_kind()

        def build_stack(worker_id: int):
            stack, restored = self._build_stack(worker_id)
            return stack, restored

        supervisor = Supervisor(config.num_workers, build_stack,
                                config.supervisor)
        breaker = CircuitBreaker(config.breaker)
        assembler = WindowAssembler(config.ingest)
        queue = RequestQueue(capacity=config.queue_capacity,
                             service_ticks=config.service_ticks)
        rng = np.random.default_rng(
            derive_seed(config.seed, "serve-loop"))

        serve_counters: dict[str, int] = {}

        def count(name: str, amount: int = 1) -> None:
            serve_counters[name] = serve_counters.get(name, 0) + amount

        # Per-stream replay cursors and label memory (snippet 3 idiom:
        # the window served at seq n is labelled by window n+1).
        next_seq = [0] * config.streams
        credit = [0.0] * config.streams
        delayed: list[tuple[int, TelemetrySample]] = []
        last_served: dict[int, tuple[int, float, np.ndarray, int]] = {}
        request_id = 0
        num_clusters = len(traces[0][0].cluster_counters)
        fallback_levels = ([self.arch.vf_table.default_level]
                          * num_clusters)

        instantaneous = {"worker_crash", "worker_hang", "poisoned_update"}
        triggers: dict[int, list] = {}
        windowed: list = []
        for event in plan:
            if event.kind in instantaneous:
                triggers.setdefault(event.at_tick, []).append(event)
            else:
                windowed.append(event)

        def window_active(kind: str, tick: int, target: int | None = None):
            for event in windowed:
                if event.kind != kind or not event.active_at(tick):
                    continue
                if target is not None and event.target != target:
                    continue
                return event
            return None

        def decide(worker, request: ServeRequest, now: int) -> _InFlight:
            """Compute one validated decision through the worker stack."""
            record = request.payload.payload
            if worker.pinned:
                count("serve_pinned_decisions")
                return _InFlight(request, list(fallback_levels), "pinned")
            if not breaker.allow(now):
                try:
                    levels = validate_decision(
                        worker.stack["degraded"].decide(record),
                        self.arch.vf_table.num_levels, num_clusters)
                except PolicyError:
                    count("serve_invalid_decisions")
                    levels = list(fallback_levels)
                count("serve_degraded_decisions")
                return _InFlight(request, levels, "degraded")
            stall = window_active("inference_stall", now)
            latency_s = (config.inference_latency_us * 1e-6
                         * float(rng.exponential(1.0)))
            if stall is not None:
                latency_s *= stall.magnitude
            if latency_s > config.stall_timeout_us * 1e-6:
                breaker.record_failure(now)
                count("serve_stall_fallbacks")
                return _InFlight(request, list(fallback_levels),
                                 "fallback")
            try:
                raw = worker.stack["primary"].decide(record)
                levels = validate_decision(
                    raw, self.arch.vf_table.num_levels, num_clusters)
            except PolicyError:
                breaker.record_failure(now)
                count("serve_invalid_decisions")
                return _InFlight(request, list(fallback_levels),
                                 "fallback")
            breaker.record_success(now, latency_s)
            return _InFlight(request, levels, "ml")

        horizon = config.ticks + config.drain_ticks
        for tick in range(horizon):
            arrivals_open = tick < config.ticks

            # 1. Instantaneous faults strike.
            for event in triggers.get(tick, ()):
                if event.kind == "worker_crash":
                    lost = supervisor.crash(event.target, tick)
                    if lost is not None:
                        result.failed += 1
                        count("serve_failed_crash")
                elif event.kind == "worker_hang":
                    supervisor.hang(event.target, tick)
                elif event.kind == "poisoned_update":
                    if self._online is not None:
                        self._online.poison_next_update()
                    else:
                        count("serve_poison_ignored")

            # 2. Supervisor machine: completions, liveness, restarts.
            completions, failures = supervisor.tick(tick)
            for worker, inflight in completions:
                request = inflight.request
                levels = inflight.levels
                # Invariant 1 re-check at the serve boundary: nothing
                # invalid leaves the runtime, whatever the path was.
                try:
                    validate_decision(levels,
                                      self.arch.vf_table.num_levels,
                                      num_clusters)
                except PolicyError:
                    count("serve_invalid_decisions")
                    levels = list(fallback_levels)
                result.served += 1
                result.wait_ticks.append(tick - request.arrival_tick)
                result.decision_paths[inflight.path] = (
                    result.decision_paths.get(inflight.path, 0) + 1)
                level = int(levels[0])
                if (result.min_level_served is None
                        or level < result.min_level_served):
                    result.min_level_served = level
                if (result.max_level_served is None
                        or level > result.max_level_served):
                    result.max_level_served = level
                record = request.payload.payload
                if self._online is not None:
                    prev = last_served.get(request.stream_id)
                    instructions = float(record.instructions)
                    if prev is not None and prev[1] > 0:
                        _, prev_inst, prev_raw, prev_level = prev
                        self._online.observe(
                            prev_raw, prev_level,
                            instructions / prev_inst)
                    raw_features = (self._online.model.calibrator
                                    .extractor.extract(record.counters))
                    last_served[request.stream_id] = (
                        request.seq, instructions, raw_features, level)
            result.failed += len(failures)
            if failures:
                count("serve_failed_liveness", len(failures))

            # 3. Telemetry arrivals (phase-1 traces + seeded jitter).
            if arrivals_open:
                burst = window_active("overload_burst", tick)
                rate = config.arrival_rate * (
                    burst.magnitude if burst is not None else 1.0)
                for stream in range(config.streams):
                    credit[stream] += rate
                    emit = int(credit[stream])
                    credit[stream] -= emit
                    trace = traces[stream]
                    for _ in range(emit):
                        seq = next_seq[stream]
                        next_seq[stream] += 1
                        sample = TelemetrySample(
                            stream_id=stream, seq=seq, sent_tick=tick,
                            payload=trace[seq % len(trace)])
                        if window_active("telemetry_gap", tick, stream):
                            count("serve_gap_losses")
                            continue
                        if rng.random() < config.drop_rate:
                            count("serve_jitter_losses")
                            continue
                        copies = 1
                        storm = window_active("telemetry_storm", tick,
                                              stream)
                        if storm is not None:
                            copies = max(1, int(storm.magnitude))
                            count("serve_storm_duplicates", copies - 1)
                        elif rng.random() < config.duplicate_rate:
                            copies = 2
                        for _ in range(copies):
                            if rng.random() < config.reorder_rate:
                                delay = 1 + int(rng.integers(2))
                                delayed.append((tick + delay, sample))
                            else:
                                assembler.offer(sample, tick)
            if delayed:
                due = [item for item in delayed if item[0] <= tick]
                delayed = [item for item in delayed if item[0] > tick]
                for _, sample in sorted(
                        due, key=lambda item: (item[1].stream_id,
                                               item[1].seq)):
                    assembler.offer(sample, tick)

            # 4. Window assembly -> request creation -> backpressure.
            for sample in assembler.pop_ready(tick):
                deadline_class = rng.random() < config.deadline_fraction
                slack = (config.deadline_slack_ticks if deadline_class
                         else config.batch_slack_ticks)
                request = ServeRequest(
                    request_id=request_id, stream_id=sample.stream_id,
                    seq=sample.seq, arrival_tick=tick,
                    deadline_tick=tick + slack,
                    deadline_class=deadline_class, payload=sample)
                request_id += 1
                result.submitted += 1
                queue.offer(request)

            # 5. Dispatch to ready workers.
            while True:
                ready = supervisor.ready_workers()
                if not ready:
                    break
                request = queue.pop_serviceable(tick)
                if request is None:
                    break
                worker = ready[0]
                inflight = decide(worker, request, tick)
                supervisor.dispatch(worker, inflight, tick,
                                    config.service_ticks)

            # 6. Online calibration pump (gated updates).
            if self._online is not None:
                before = self._online.model
                self._online.maybe_update()
                if self._online.model is not before:
                    count("serve_model_promotions")

        # Drain accounting: whatever could not be served in the drain
        # window is shed explicitly so conservation stays exact.
        queue.drain()
        result.shed_records = list(queue.shed)
        result.quarantined = supervisor.quarantined()
        result.unrecovered = supervisor.unrecovered()
        result.recovery_ticks = supervisor.recovery_ticks()
        # Requests still in flight on hung/restarting workers at the end
        # of the horizon are failures (they never completed).
        for worker in supervisor.workers:
            if worker.request is not None:
                result.failed += 1
                count("serve_failed_stranded")
            self._harvest_stack(worker.stack)

        result.merge_counters(serve_counters)
        result.merge_counters(queue.observability_counters())
        result.merge_counters(assembler.observability_counters())
        result.merge_counters(breaker.observability_counters())
        result.merge_counters(supervisor.observability_counters())
        result.merge_counters(self._stack_counters)
        if self._online is not None:
            result.merge_counters(self._online.observability_counters())
        if self.store is not None:
            result.merge_counters(self.store.counters)
        count_total = result.served + result.shed + result.failed
        result.merge_counters({"serve_requests_submitted": result.submitted,
                               "serve_requests_accounted": count_total})
        return result
