"""Always-on serving runtime for the SSMDVFS controller.

Wraps the guarded controller behind a deterministic request loop:
supervised worker lifecycle (:mod:`~repro.serve.supervisor`), bounded
telemetry ingestion with backpressure (:mod:`~repro.serve.ingest`), a
circuit breaker around ML inference (:mod:`~repro.serve.breaker`),
gated online calibration (:mod:`~repro.serve.online`), and the
two-phase serving loop itself (:mod:`~repro.serve.runtime`).
"""

from .breaker import (CLOSED, HALF_OPEN, OPEN, BreakerConfig,
                      CircuitBreaker)
from .ingest import (IngestConfig, RequestQueue, ServeRequest,
                     ShedRecord, TelemetrySample, WindowAssembler)
from .online import OnlineCalibrator, OnlineConfig
from .runtime import SERVE_ARTIFACT, ServeConfig, ServeResult, ServingRuntime
from .supervisor import (BUSY, QUARANTINED, READY, RESTARTING, Supervisor,
                         SupervisorConfig, WorkerHandle)

__all__ = [
    "BreakerConfig", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN",
    "IngestConfig", "WindowAssembler", "TelemetrySample",
    "RequestQueue", "ServeRequest", "ShedRecord",
    "OnlineCalibrator", "OnlineConfig",
    "Supervisor", "SupervisorConfig", "WorkerHandle",
    "READY", "BUSY", "RESTARTING", "QUARANTINED",
    "ServeConfig", "ServeResult", "ServingRuntime", "SERVE_ARTIFACT",
]
