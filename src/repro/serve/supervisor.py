"""Supervised worker lifecycle for the always-on serving runtime.

The serving loop never talks to a controller directly: it talks to a
:class:`Supervisor` that owns a fixed pool of controller workers and
absorbs their failures.  A crashed or wedged worker is killed and
restarted from checkpointed state with capped exponential backoff; a
worker that keeps dying climbs the escalation ladder::

    restart (backoff 2, 4, 8, ... ticks, capped)
      -> pinned fallback  (the rebuilt worker serves only the static
                           fallback decision -- safe, never wrong)
        -> quarantine     (the worker is removed from dispatch for the
                           rest of the run and accounted as down)

Two probes drive detection.  The *liveness* probe kills any worker
that has held a request longer than ``liveness_ticks`` without
completing (a hang, a stall, a lost completion).  The *readiness*
probe gates dispatch: only ``READY`` workers receive work, so a
restarting or quarantined worker can never be handed a request.

All state transitions are functions of the serving loop's integer tick
clock — no wall time — so a seeded run replays byte-identically.
``supervisor_*`` counters expose every transition for ``--stats`` and
the chaos harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import ServeError

#: Worker states (strings so traces and exports read naturally).
READY = "ready"
BUSY = "busy"
RESTARTING = "restarting"
QUARANTINED = "quarantined"


@dataclass(frozen=True)
class SupervisorConfig:
    """Restart/escalation knobs of the worker supervisor.

    Backoff doubles from ``backoff_base_ticks`` per restart up to
    ``backoff_cap_ticks``.  After ``pin_after`` restarts a worker comes
    back *pinned* (fallback-only); after ``quarantine_after`` restarts
    it is quarantined for the rest of the run.  ``liveness_ticks`` is
    the in-flight age past which a worker is declared wedged.
    """

    backoff_base_ticks: int = 2
    backoff_cap_ticks: int = 32
    liveness_ticks: int = 8
    pin_after: int = 2
    quarantine_after: int = 4

    def __post_init__(self) -> None:
        if self.backoff_base_ticks < 1:
            raise ServeError("backoff_base_ticks must be >= 1")
        if self.backoff_cap_ticks < self.backoff_base_ticks:
            raise ServeError("backoff_cap_ticks must be >= the base")
        if self.liveness_ticks < 1:
            raise ServeError("liveness_ticks must be >= 1")
        if self.pin_after < 1:
            raise ServeError("pin_after must be >= 1")
        if self.quarantine_after <= self.pin_after:
            raise ServeError("quarantine_after must exceed pin_after")


class WorkerHandle:
    """One supervised controller worker (state + in-flight bookkeeping)."""

    def __init__(self, worker_id: int, stack: object) -> None:
        self.worker_id = worker_id
        #: The worker's decision stack (guarded controller or baseline).
        self.stack = stack
        self.state = READY
        self.pinned = False
        self.hung = False
        self.restarts = 0
        self.restart_at: int | None = None
        self.busy_until: int | None = None
        self.dispatch_tick: int | None = None
        self.request = None
        self.completions = 0
        self.down_since: int | None = None

    @property
    def ready(self) -> bool:
        """Readiness probe: may this worker receive a request now?"""
        return self.state == READY and not self.hung


class Supervisor:
    """Own a pool of controller workers; restart, escalate, account.

    ``build_stack(worker_id)`` rebuilds one worker's decision stack and
    returns ``(stack, restored)`` where ``restored`` reports whether
    the stack was rebuilt from checkpointed store state (counted as
    ``supervisor_restores``).  The runtime injects faults through
    :meth:`crash` / :meth:`hang` and advances the machine once per tick
    through :meth:`tick`.
    """

    def __init__(self, num_workers: int,
                 build_stack: Callable[[int], tuple[object, bool]],
                 config: SupervisorConfig | None = None) -> None:
        if num_workers < 1:
            raise ServeError("the supervisor needs at least one worker")
        self.config = config or SupervisorConfig()
        self.build_stack = build_stack
        self.counters: dict[str, int] = {}
        self.workers: list[WorkerHandle] = []
        #: Completed (down_tick, up_tick) outages, for the bounded-
        #: recovery invariant.  Quarantined workers never appear here;
        #: they are terminal and accounted separately.
        self.recoveries: list[tuple[int, int]] = []
        for worker_id in range(num_workers):
            stack, _ = build_stack(worker_id)
            self.workers.append(WorkerHandle(worker_id, stack))

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    # -- probes and dispatch -------------------------------------------
    def ready_workers(self) -> list[WorkerHandle]:
        """Workers passing the readiness probe, in id order."""
        return [worker for worker in self.workers if worker.ready]

    def dispatch(self, worker: WorkerHandle, request, now_tick: int,
                 service_ticks: int) -> None:
        """Hand one request to a ready worker."""
        if not worker.ready:
            raise ServeError(
                f"dispatch to non-ready worker {worker.worker_id} "
                f"({worker.state})")
        worker.state = BUSY
        worker.request = request
        worker.dispatch_tick = now_tick
        worker.busy_until = now_tick + max(1, service_ticks)
        self._count("supervisor_dispatches")

    # -- fault entry points --------------------------------------------
    def crash(self, worker_id: int, now_tick: int):
        """Kill a worker (injected crash); returns the lost request."""
        worker = self.workers[worker_id]
        if worker.state in (RESTARTING, QUARANTINED):
            return None  # already down; a crash on a corpse is a no-op
        self._count("supervisor_crashes")
        return self._take_down(worker, now_tick)

    def hang(self, worker_id: int, now_tick: int) -> None:
        """Wedge a worker: it stops completing until the probe kills it."""
        worker = self.workers[worker_id]
        if worker.state in (RESTARTING, QUARANTINED):
            return
        worker.hung = True
        self._count("supervisor_hangs")

    def _take_down(self, worker: WorkerHandle, now_tick: int):
        """Common kill path: schedule restart or escalate; free the slot."""
        lost = worker.request
        worker.request = None
        worker.busy_until = None
        worker.dispatch_tick = None
        worker.hung = False
        worker.down_since = now_tick
        worker.restarts += 1
        if worker.restarts >= self.config.quarantine_after:
            worker.state = QUARANTINED
            worker.restart_at = None
            self._count("supervisor_quarantined")
            return lost
        backoff = min(
            self.config.backoff_cap_ticks,
            self.config.backoff_base_ticks * (2 ** (worker.restarts - 1)))
        worker.state = RESTARTING
        worker.restart_at = now_tick + backoff
        if worker.restarts >= self.config.pin_after and not worker.pinned:
            worker.pinned = True
            self._count("supervisor_pinned")
        return lost

    # -- the per-tick machine ------------------------------------------
    def tick(self, now_tick: int) -> tuple[list, list]:
        """Advance one tick; returns ``(completions, failures)``.

        ``completions`` are ``(worker, request)`` pairs whose service
        interval elapsed this tick; ``failures`` are requests lost to a
        liveness kill.  Restarts whose backoff expired come back READY
        (rebuilt from checkpointed state), and idle hung workers are
        caught by the same probe that catches wedged busy ones.
        """
        completions: list = []
        failures: list = []
        for worker in self.workers:
            # Liveness probe: a busy worker past its in-flight budget,
            # or an idle worker that stopped answering probes.
            wedged_busy = (
                worker.state == BUSY and worker.dispatch_tick is not None
                and now_tick - worker.dispatch_tick
                > self.config.liveness_ticks)
            wedged_idle = worker.state == READY and worker.hung
            if wedged_busy or wedged_idle:
                self._count("supervisor_liveness_kills")
                lost = self._take_down(worker, now_tick)
                if lost is not None:
                    failures.append(lost)
                continue
            if (worker.state == BUSY and worker.busy_until is not None
                    and now_tick >= worker.busy_until):
                if worker.hung:
                    continue  # a hung worker never completes; probe it out
                request, worker.request = worker.request, None
                worker.state = READY
                worker.busy_until = None
                worker.dispatch_tick = None
                worker.completions += 1
                completions.append((worker, request))
                continue
            if (worker.state == RESTARTING and worker.restart_at is not None
                    and now_tick >= worker.restart_at):
                stack, restored = self.build_stack(worker.worker_id)
                worker.stack = stack
                worker.state = READY
                worker.restart_at = None
                self._count("supervisor_restarts")
                if restored:
                    self._count("supervisor_restores")
                if worker.down_since is not None:
                    self.recoveries.append((worker.down_since, now_tick))
                    worker.down_since = None
        return completions, failures

    # -- accounting -----------------------------------------------------
    def quarantined(self) -> int:
        """How many workers ended up quarantined."""
        return sum(1 for w in self.workers if w.state == QUARANTINED)

    def unrecovered(self) -> int:
        """Workers down at end of run that are *not* quarantined.

        The bounded-recovery invariant requires this to be zero after
        the drain window: every non-terminal outage must resolve.
        """
        return sum(1 for w in self.workers
                   if w.state == RESTARTING or (w.state == BUSY and w.hung))

    def recovery_ticks(self) -> list[int]:
        """Outage durations (ticks) of every completed recovery."""
        return [up - down for down, up in self.recoveries]

    def observability_counters(self) -> dict[str, int]:
        """Supervisor counters (``supervisor_*``), for ``--stats``."""
        return dict(self.counters)
