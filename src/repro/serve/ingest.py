"""Bounded telemetry ingestion: window assembly and backpressure.

Live counter telemetry is nothing like the offline replay's tidy epoch
stream: samples arrive late, duplicated, out of order, or not at all.
This module is the serving runtime's front door:

* :class:`WindowAssembler` — a per-stream sliding counter-window
  assembler (the window/label idiom of SNIPPETS.md snippet 3: each
  delivered window later gets its label from the *next* window).  It
  deduplicates by sequence number, re-orders buffered future samples,
  skips over gaps once they exceed an explicit lag bound, and drops
  samples older than the staleness bound — so the controller only ever
  sees a monotonic, bounded-age window stream.
* :class:`RequestQueue` — a bounded FIFO with deterministic load
  shedding and deadline-budget propagation.  When the queue is full
  the newest batch-class request is shed first (deadline-class
  requests are only displaced by other deadline-class arrivals, i.e.
  strictly at capacity); at dispatch a request whose remaining slack
  cannot cover service is shed rather than served late.

Every shed is recorded with its reason and the queue occupancy at the
moment of shedding, which is what lets the chaos harness assert the
"no deadline-class request shed while under capacity" invariant.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..errors import ServeError


@dataclass(frozen=True)
class TelemetrySample:
    """One counter-window sample from one GPU stream.

    ``seq`` is the per-stream monotonically increasing sequence number
    assigned at the source; ``sent_tick`` is when the source emitted it
    (arrival may be later).  ``payload`` is opaque to the assembler —
    the runtime carries the epoch record plus its instruction count.
    """

    stream_id: int
    seq: int
    sent_tick: int
    payload: object

    def __post_init__(self) -> None:
        if self.stream_id < 0 or self.seq < 0 or self.sent_tick < 0:
            raise ServeError("sample identity fields cannot be negative")


@dataclass(frozen=True)
class IngestConfig:
    """Bounds of the window assembler.

    ``max_lag_ticks`` is how long the assembler waits for a missing
    sequence number before declaring a gap and skipping ahead;
    ``staleness_ticks`` is the maximum age of a sample at delivery
    (older windows describe a GPU state too far gone to act on);
    ``max_pending`` bounds the per-stream reorder buffer.
    """

    max_lag_ticks: int = 4
    staleness_ticks: int = 16
    max_pending: int = 32

    def __post_init__(self) -> None:
        if self.max_lag_ticks < 1:
            raise ServeError("max_lag_ticks must be >= 1")
        if self.staleness_ticks < 1:
            raise ServeError("staleness_ticks must be >= 1")
        if self.max_pending < 1:
            raise ServeError("max_pending must be >= 1")


class _StreamState:
    """Reorder buffer and delivery cursor for one telemetry stream."""

    def __init__(self) -> None:
        self.next_seq = 0
        self.pending: dict[int, TelemetrySample] = {}
        self.waiting_since: int | None = None


class WindowAssembler:
    """Assemble gapped/duplicated/reordered samples into ordered windows.

    :meth:`offer` absorbs one arriving sample; :meth:`pop_ready` drains
    every window now deliverable in order.  All decisions are pure
    functions of the arrival sequence and the tick clock, so a seeded
    replay is byte-stable.
    """

    def __init__(self, config: IngestConfig | None = None) -> None:
        self.config = config or IngestConfig()
        self.counters: dict[str, int] = {}
        self._streams: dict[int, _StreamState] = {}

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def _stream(self, stream_id: int) -> _StreamState:
        state = self._streams.get(stream_id)
        if state is None:
            state = self._streams[stream_id] = _StreamState()
        return state

    # ------------------------------------------------------------------
    def offer(self, sample: TelemetrySample, now_tick: int) -> None:
        """Absorb one arriving sample (possibly late/duplicate/early)."""
        self._count("ingest_samples")
        state = self._stream(sample.stream_id)
        if sample.seq < state.next_seq or sample.seq in state.pending:
            self._count("ingest_duplicates")
            return
        if now_tick - sample.sent_tick > self.config.staleness_ticks:
            self._count("ingest_stale_drops")
            return
        if sample.seq > state.next_seq:
            self._count("ingest_reordered")
        if len(state.pending) >= self.config.max_pending:
            # Bounded buffer: drop the youngest (highest-seq) holding,
            # which preserves the oldest context the controller still
            # needs to resume the stream.
            victim = max(state.pending)
            if sample.seq < victim:
                del state.pending[victim]
                self._count("ingest_buffer_evictions")
            else:
                self._count("ingest_buffer_evictions")
                return
        state.pending[sample.seq] = sample

    def pop_ready(self, now_tick: int) -> list[TelemetrySample]:
        """Every window deliverable at ``now_tick``, in stream/seq order.

        A missing sequence number stalls its stream for at most
        ``max_lag_ticks``; past that the assembler skips to the oldest
        buffered sample and counts the skipped numbers as a gap.
        """
        ready: list[TelemetrySample] = []
        for stream_id in sorted(self._streams):
            state = self._streams[stream_id]
            while True:
                if state.next_seq in state.pending:
                    sample = state.pending.pop(state.next_seq)
                    state.next_seq += 1
                    state.waiting_since = None
                    if (now_tick - sample.sent_tick
                            > self.config.staleness_ticks):
                        self._count("ingest_stale_drops")
                        continue
                    self._count("ingest_delivered")
                    ready.append(sample)
                    continue
                if not state.pending:
                    state.waiting_since = None
                    break
                if state.waiting_since is None:
                    state.waiting_since = now_tick
                if (now_tick - state.waiting_since
                        < self.config.max_lag_ticks):
                    break
                # Gap confirmed: jump the cursor to the oldest buffered
                # sample and account every skipped sequence number.
                oldest = min(state.pending)
                self._count("ingest_gap_skips", oldest - state.next_seq)
                state.next_seq = oldest
                state.waiting_since = None
        return ready

    def observability_counters(self) -> dict[str, int]:
        """Assembler counters (``ingest_*``), for ``--stats`` fold-in."""
        return dict(self.counters)


# ---------------------------------------------------------------------------
# Bounded request queue with deadline-budget propagation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ServeRequest:
    """One decision request assembled from a delivered window.

    ``deadline_tick`` is the absolute tick by which the decision must
    be actuated; ``deadline_class`` marks latency-critical requests
    (the class the shed-discipline invariant protects).
    """

    request_id: int
    stream_id: int
    seq: int
    arrival_tick: int
    deadline_tick: int
    deadline_class: bool
    payload: object

    def __post_init__(self) -> None:
        if self.deadline_tick < self.arrival_tick:
            raise ServeError("a request cannot arrive past its deadline")


@dataclass(frozen=True)
class ShedRecord:
    """Audit record of one shed request (reason + occupancy context)."""

    request_id: int
    stream_id: int
    reason: str
    deadline_class: bool
    queue_depth: int
    under_capacity: bool

    def to_payload(self) -> dict:
        """JSON-ready dict."""
        return {"request_id": self.request_id, "stream_id": self.stream_id,
                "reason": self.reason, "deadline_class": self.deadline_class,
                "queue_depth": self.queue_depth,
                "under_capacity": self.under_capacity}


@dataclass
class RequestQueue:
    """Bounded FIFO with deterministic shedding and slack checks.

    ``capacity`` bounds occupancy; overflow shedding prefers the
    youngest batch-class occupant, so a deadline-class request can only
    be displaced when the queue is entirely deadline-class — by
    construction, at capacity.  :meth:`pop_serviceable` propagates the
    deadline budget: a request whose remaining slack cannot cover
    ``service_ticks`` is shed (reason ``"deadline"``) instead of being
    served late.

    ``under_capacity`` in the shed audit records encodes *culpability*:
    an overflow shed happens at capacity by definition; a ``deadline``
    shed means the request expired while waiting, which implies the
    system was saturated (or its workers down) during the wait; only an
    ``infeasible`` shed — a request that arrives with less slack than
    one service interval — can occur while genuinely under capacity.
    The chaos harness asserts no deadline-class record ever carries
    ``under_capacity=True``.
    """

    capacity: int
    service_ticks: int = 1
    queue: deque = field(default_factory=deque)
    shed: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ServeError("queue capacity must be >= 1")
        if self.service_ticks < 0:
            raise ServeError("service_ticks cannot be negative")

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def __len__(self) -> int:
        return len(self.queue)

    def _shed(self, request: ServeRequest, reason: str, *,
              under_capacity: bool) -> None:
        self.shed.append(ShedRecord(
            request_id=request.request_id, stream_id=request.stream_id,
            reason=reason, deadline_class=request.deadline_class,
            queue_depth=len(self.queue), under_capacity=under_capacity))
        self._count("serve_shed")
        self._count(f"serve_shed_{reason}")

    def offer(self, request: ServeRequest) -> bool:
        """Enqueue one request; sheds on overflow.  True when queued.

        Overflow always happens *at* capacity by definition, so every
        overflow shed is recorded with ``under_capacity=False``.
        """
        if request.deadline_tick - request.arrival_tick < self.service_ticks:
            # Never serviceable even from an empty queue: refuse at the
            # door with honest under-capacity accounting.
            self._shed(request, "infeasible",
                       under_capacity=len(self.queue) < self.capacity)
            return False
        if len(self.queue) < self.capacity:
            self.queue.append(request)
            return True
        # Displace the youngest batch-class occupant first; when the
        # queue is entirely deadline-class the newcomer is refused
        # (FIFO fairness: the earlier arrivals keep their slots).
        for index in range(len(self.queue) - 1, -1, -1):
            occupant = self.queue[index]
            if not occupant.deadline_class:
                del self.queue[index]
                self._shed(occupant, "overflow", under_capacity=False)
                self.queue.append(request)
                return True
        self._shed(request, "overflow", under_capacity=False)
        return False

    def pop_serviceable(self, now_tick: int) -> ServeRequest | None:
        """The oldest request whose slack still covers service, or None.

        Requests whose remaining budget is already too small are shed
        with reason ``"deadline"`` on the way — the backpressure
        contract: late answers are never produced, they are refused as
        early as the budget math allows.  An expired request must have
        waited (it was feasible at :meth:`offer` time), so these sheds
        are attributed to saturation, never to an under-capacity system.
        """
        while self.queue:
            request = self.queue.popleft()
            if request.deadline_tick - now_tick < self.service_ticks:
                self._shed(request, "deadline", under_capacity=False)
                continue
            return request
        return None

    def drain(self, reason: str = "drain") -> int:
        """Shed everything still queued (end of run); returns the count."""
        drained = 0
        while self.queue:
            self._shed(self.queue.popleft(), reason, under_capacity=False)
            drained += 1
        return drained

    def observability_counters(self) -> dict[str, int]:
        """Queue counters (``serve_shed*``), for ``--stats`` fold-in."""
        return dict(self.counters)
