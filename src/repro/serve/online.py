"""Safe online Calibrator fine-tuning from served windows.

The paper's self-calibration loop adjusts the *working preset* online;
this module closes the bigger loop: the Calibrator network itself is
incrementally fine-tuned from live traffic.  Online updates are the
most dangerous write path in the system — a poisoned batch can turn
every prediction to garbage — so every update passes three gates
before it can serve:

1. **Shadow evaluation** — the candidate (a clone of the serving
   Calibrator, fine-tuned on the buffered windows) is scored against
   the incumbent on a held-out tail of recent samples; it is rejected
   unless its error is at least as good within ``tolerance``.
2. **Finiteness verification** — the promoted pair must pass
   :meth:`~repro.core.combined.SSMDVFSModel.verify` (NaN/Inf weights
   are an immediate reject, which is how a poisoned update dies).
3. **Probation before blessing** — a promoted pair is ``put`` into the
   artifact store *unblessed*; only after ``probation_windows``
   further observed windows without a drift alarm is it
   ``mark_good``-ed.  Until then the drift -> rollback machinery
   (PR 5) restores the previous last-known-good on any alarm.

Labels follow the SNIPPETS.md snippet 3 window idiom: the feature
window served at sequence ``n`` gets its regression target (the
throughput ratio) from the window observed at ``n + 1``.
``online_*`` counters expose the whole lifecycle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.combined import PAIR_SCHEMA, SSMDVFSModel
from ..errors import ServeError, TrainingError
from ..nn.trainer import TrainConfig, train_regressor
from ..store import ArtifactStore


@dataclass(frozen=True)
class OnlineConfig:
    """Knobs of the online fine-tuning loop.

    An update is attempted every ``update_interval`` buffered samples;
    ``holdout_fraction`` of the freshest samples form the shadow set.
    ``tolerance`` is the relative error slack the candidate gets over
    the incumbent (a candidate may be promoted when marginally worse on
    the tiny shadow set, never when clearly worse).
    """

    update_interval: int = 48
    holdout_fraction: float = 0.25
    tolerance: float = 0.05
    epochs: int = 12
    learning_rate: float = 5e-4
    probation_windows: int = 24
    max_buffer: int = 512

    def __post_init__(self) -> None:
        if self.update_interval < 8:
            raise ServeError("update_interval must be >= 8 samples")
        if not 0.0 < self.holdout_fraction < 1.0:
            raise ServeError("holdout_fraction must be in (0, 1)")
        if self.tolerance < 0:
            raise ServeError("tolerance cannot be negative")
        if self.epochs < 1 or self.learning_rate <= 0:
            raise ServeError("epochs >= 1 and learning_rate > 0 required")
        if self.probation_windows < 1:
            raise ServeError("probation_windows must be >= 1")
        if self.max_buffer < self.update_interval:
            raise ServeError("max_buffer must hold one update interval")


class OnlineCalibrator:
    """Gated incremental fine-tuning of the serving Calibrator.

    Owns the live :class:`~repro.core.combined.SSMDVFSModel`, a bounded
    sample buffer, and the promotion lifecycle against the artifact
    store.  The runtime feeds observed windows through :meth:`observe`
    and pumps :meth:`maybe_update` once per tick; on promotion the new
    pair becomes :attr:`model` (picked up by workers on their next
    rebuild) and starts its probation countdown.
    """

    def __init__(self, model: SSMDVFSModel, store: ArtifactStore,
                 artifact_name: str,
                 config: OnlineConfig | None = None, *,
                 seed: int = 0) -> None:
        self.model = model
        self.store = store
        self.artifact_name = artifact_name
        self.config = config or OnlineConfig()
        self.seed = int(seed)
        self.counters: dict[str, int] = {}
        self._features: list[np.ndarray] = []
        self._targets: list[float] = []
        self._poison_next = False
        self._since_attempt = 0
        self._updates = 0
        #: (version, windows remaining) of a promotion still on probation.
        self._probation: tuple[int, int] | None = None

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    # ------------------------------------------------------------------
    def poison_next_update(self) -> None:
        """Fault hook: corrupt the next candidate before its gates."""
        self._poison_next = True

    def observe(self, raw_features: np.ndarray, level: int,
                ratio: float) -> None:
        """Buffer one labelled window (features + level -> next ratio).

        ``raw_features`` is the unscaled extractor output for the
        served window; ``ratio`` is the next window's instruction count
        over this one's — the label only known one window later.
        """
        if not np.isfinite(ratio) or ratio < 0:
            self._count("online_label_rejected")
            return
        row = np.concatenate([np.asarray(raw_features, dtype=np.float64),
                              [float(level)]])
        if not np.all(np.isfinite(row)):
            self._count("online_label_rejected")
            return
        self._features.append(row)
        self._targets.append(float(ratio))
        self._since_attempt += 1
        overflow = len(self._features) - self.config.max_buffer
        if overflow > 0:
            del self._features[:overflow]
            del self._targets[:overflow]
        self._count("online_samples")
        if self._probation is not None:
            version, remaining = self._probation
            remaining -= 1
            if remaining <= 0:
                self.store.mark_good(self.artifact_name, version)
                self._count("online_marked_good")
                self._probation = None
            else:
                self._probation = (version, remaining)

    def drift_alarmed(self) -> None:
        """Notify that the guard's drift layer alarmed: cancel probation.

        The rollback machinery is restoring the previous known-good
        pair; the on-probation promotion must never be blessed.
        """
        if self._probation is not None:
            self._count("online_probation_aborted")
            self._probation = None

    # ------------------------------------------------------------------
    def _shadow_error(self, model_pair: SSMDVFSModel, x: np.ndarray,
                      y: np.ndarray) -> float:
        scaled = model_pair.calibrator_scaler.transform(x)
        predictions = model_pair.calibrator_model.predict_scalar(scaled)
        if not np.all(np.isfinite(predictions)):
            return float("inf")
        return float(np.mean((predictions - y) ** 2))

    def maybe_update(self) -> str | None:
        """Attempt one gated update when the buffer warrants it.

        Returns ``"promoted"`` / ``"rejected"`` for an attempted
        update, None when the buffer is still filling.  Deterministic:
        the training seed derives from the base seed and the update
        ordinal only.
        """
        interval = self.config.update_interval
        if len(self._features) < interval or self._since_attempt < interval:
            return None
        self._since_attempt = 0
        self._updates += 1
        self._count("online_updates_attempted")
        x = np.stack(self._features)
        y = np.asarray(self._targets, dtype=np.float64)
        n_holdout = max(2, int(len(x) * self.config.holdout_fraction))
        x_train, y_train = x[:-n_holdout], y[:-n_holdout]
        x_hold, y_hold = x[-n_holdout:], y[-n_holdout:]

        candidate = self.model.calibrator_model.clone()
        try:
            train_regressor(
                candidate,
                self.model.calibrator_scaler.transform(x_train), y_train,
                TrainConfig(epochs=self.config.epochs,
                            learning_rate=self.config.learning_rate,
                            validation_fraction=0.0,
                            patience=self.config.epochs,
                            seed=self.seed + self._updates))
        except TrainingError:
            self._count("online_updates_rejected")
            return "rejected"
        if self._poison_next:
            # Injected poisoning: the fine-tuned weights are corrupted
            # after training, exactly where a bad batch or a bitflip
            # would land.  The gates below must catch it.
            self._poison_next = False
            self._count("online_poison_injected")
            candidate.layers[0].weights[:] = np.nan

        pair = SSMDVFSModel(
            decision_model=self.model.decision_model,
            calibrator_model=candidate,
            feature_names=self.model.feature_names,
            issue_width=self.model.issue_width,
            num_levels=self.model.num_levels,
            decision_scaler=self.model.decision_scaler,
            calibrator_scaler=self.model.calibrator_scaler,
            metadata=dict(self.model.metadata,
                          online_update=self._updates))
        incumbent_err = self._shadow_error(self.model, x_hold, y_hold)
        candidate_err = self._shadow_error(pair, x_hold, y_hold)
        if (not pair.verify()
                or not np.isfinite(candidate_err)
                or candidate_err > incumbent_err
                * (1.0 + self.config.tolerance) + 1e-12):
            self._count("online_updates_rejected")
            return "rejected"
        version = self.store.put(self.artifact_name, pair.to_bytes(),
                                 schema=PAIR_SCHEMA)
        self.model = pair
        self._probation = (version, self.config.probation_windows)
        self._count("online_updates_promoted")
        return "promoted"

    def observability_counters(self) -> dict[str, int]:
        """Online-loop counters (``online_*``), for ``--stats``."""
        return dict(self.counters)
