"""Adapted F-LEMMA baseline (Zou et al., MLCAD 2020; paper §V-B).

F-LEMMA is a hierarchical learning-based power-management framework: a
*fine-grained* linear classifier picks an action every control epoch,
while a *coarse-grained* actor-critic update refines the policy from
batched experience.  Following §V-B we adapt it to the common objective
and to microsecond programs:

* the reward linearly combines normalised instruction throughput and
  normalised power, with the throughput baseline reduced by the
  performance-loss preset so the agent is allowed to degrade
  performance by that much, and
* the actor-critic update cycle is shortened ("faster F-LEMMA") so the
  agent can in principle adapt within short-duration programs.

The structural weakness the paper demonstrates is inherent: the agent
learns *online* and needs a warm-up to estimate baselines and explore
the action space.  Over a ~300 µs program (a few dozen epochs) the
exploration cost dominates whatever the policy eventually learns.
"""

from __future__ import annotations

import numpy as np

from ..errors import PolicyError
from ..gpu.counters import CounterSet
from ..gpu.simulator import EpochRecord, GPUSimulator
from ..core.policy import BasePolicy


def _state_vector(counters: CounterSet) -> np.ndarray:
    """Compact normalised state the linear actor/critic operate on."""
    slots = max(1.0, counters["issue_slots"])
    return np.array([
        counters["ipc"] / 4.0,
        counters["stall_mem_hazard"] / slots,
        counters["power_per_core"] / 10.0,
        counters["occupancy"],
        counters["l1_read_miss_rate"],
        1.0,  # bias term
    ])


class FLEMMAPolicy(BasePolicy):
    """Hierarchical actor-critic RL controller (adapted)."""

    def __init__(self, preset: float, update_period: int = 3,
                 warmup_epochs: int = 4, learning_rate: float = 0.15,
                 critic_rate: float = 0.1, discount: float = 0.9,
                 temperature: float = 1.0, power_weight: float = 0.5,
                 seed: int = 0) -> None:
        super().__init__()
        if preset < 0:
            raise PolicyError("preset cannot be negative")
        if update_period < 1:
            raise PolicyError("update_period must be >= 1")
        if warmup_epochs < 1:
            raise PolicyError("warmup_epochs must be >= 1")
        self.preset = float(preset)
        self.update_period = int(update_period)
        self.warmup_epochs = int(warmup_epochs)
        self.learning_rate = float(learning_rate)
        self.critic_rate = float(critic_rate)
        self.discount = float(discount)
        self.temperature = float(temperature)
        self.power_weight = float(power_weight)
        self.seed = seed
        self.name = f"flemma-p{int(round(preset * 100))}"
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def reset(self, simulator: GPUSimulator) -> None:
        """Re-initialise the agent (models, baselines, exploration)."""
        super().reset(simulator)
        num_levels = simulator.arch.vf_table.num_levels
        state_width = _state_vector(CounterSet()).shape[0]
        self._rng = np.random.default_rng(self.seed)
        # Linear actor (softmax over levels) and linear critic.
        self._actor = np.zeros((num_levels, state_width))
        # Bias the initial policy toward the default level so the agent
        # starts from the safe operating point, as F-LEMMA does.
        self._actor[num_levels - 1, -1] = 1.0
        self._critic = np.zeros(state_width)
        self._epoch = 0
        self._baseline_instructions: float | None = None
        self._baseline_power: float | None = None
        self._warmup_inst: list[float] = []
        self._warmup_power: list[float] = []
        self._transitions: list[tuple[np.ndarray, int, float]] = []
        self._last_state: np.ndarray | None = None
        self._last_action: int | None = None
        simulator.set_all_levels(simulator.arch.vf_table.default_level)

    # ------------------------------------------------------------------
    def _policy_distribution(self, state: np.ndarray) -> np.ndarray:
        logits = self._actor @ state / self.temperature
        logits -= logits.max()
        exp = np.exp(logits)
        return exp / exp.sum()

    def _reward(self, record: EpochRecord) -> float:
        """Adapted reward: throughput vs reduced baseline, minus power."""
        instructions = record.instructions / len(record.cluster_counters)
        power = record.counters["power_per_core"]
        inst_base = self._baseline_instructions * (1.0 - self.preset)
        throughput_term = min(1.5, instructions / max(1e-9, inst_base))
        power_term = power / max(1e-9, self._baseline_power)
        return (1.0 - self.power_weight) * throughput_term \
            - self.power_weight * power_term

    def _update_models(self) -> None:
        """Coarse-grained actor-critic update over the stored batch."""
        if len(self._transitions) < 2:
            return
        for index in range(len(self._transitions) - 1):
            state, action, reward = self._transitions[index]
            next_state = self._transitions[index + 1][0]
            td_target = reward + self.discount * float(self._critic @ next_state)
            advantage = td_target - float(self._critic @ state)
            self._critic += self.critic_rate * advantage * state
            probs = self._policy_distribution(state)
            grad = -np.outer(probs, state)
            grad[action] += state
            self._actor += self.learning_rate * advantage * grad
        self._transitions = self._transitions[-1:]

    # ------------------------------------------------------------------
    def decide(self, record: EpochRecord) -> int:
        """Warm up, learn from the last reward, sample the next level."""
        if self.simulator is None:
            raise PolicyError("policy not bound to a simulator")
        self._epoch += 1
        default_level = self.simulator.arch.vf_table.default_level
        state = _state_vector(record.counters)

        # Warm-up at the default point: estimate the reward baselines.
        if self._epoch <= self.warmup_epochs:
            self._warmup_inst.append(
                record.instructions / len(record.cluster_counters))
            self._warmup_power.append(record.counters["power_per_core"])
            if self._epoch == self.warmup_epochs:
                self._baseline_instructions = float(np.mean(self._warmup_inst))
                self._baseline_power = float(np.mean(self._warmup_power))
            return default_level

        # Record the reward of the last action and store the transition.
        if self._last_state is not None and self._last_action is not None:
            reward = self._reward(record)
            self._transitions.append(
                (self._last_state, self._last_action, reward))
        if self._epoch % self.update_period == 0:
            self._update_models()

        probs = self._policy_distribution(state)
        action = int(self._rng.choice(len(probs), p=probs))
        self._last_state = state
        self._last_action = action
        return action
