"""Adapted PCSTALL baseline (Bharadwaj et al., ASPLOS 2022; paper §V-B).

PCSTALL is an analytical fine-grain DVFS controller built on the linear
additivity of frequency-sensitivity metrics: an epoch's wall-clock time
splits into a part that scales with the core clock (issue/execute
cycles) and a part pinned to the memory clock domain (stall time on
memory), and iterative GPGPU kernels let the split measured in recent
epochs predict the next one.

The adapted objective (matching SSMDVFS): from performance counters,
estimate each operating point's sustained slowdown versus the default
point, and pick the slowest level whose predicted loss stays within the
preset.

Its weakness — the reason a learned model beats it — is exactly what it
is: a two-term linear model.  Bandwidth saturation, store-buffer
effects, and divergence all bend the true time-vs-frequency curve away
from linear additivity, and those errors land directly on the level
decision.
"""

from __future__ import annotations

from ..errors import PolicyError
from ..gpu.counters import CounterSet
from ..gpu.simulator import EpochRecord, GPUSimulator
from ..core.policy import BasePolicy


class PCSTALLPolicy(BasePolicy):
    """Frequency-sensitivity analytical DVFS controller."""

    def __init__(self, preset: float, history_weight: float = 0.5,
                 per_cluster: bool = True) -> None:
        super().__init__()
        if preset < 0:
            raise PolicyError("preset cannot be negative")
        if not 0.0 <= history_weight < 1.0:
            raise PolicyError("history_weight must be in [0, 1)")
        self.preset = float(preset)
        self.history_weight = float(history_weight)
        self.per_cluster = per_cluster
        self.name = f"pcstall-p{int(round(preset * 100))}"
        self._stall_history: list[float | None] = []

    def reset(self, simulator: GPUSimulator) -> None:
        """Clear the stall history and pin clusters at the default."""
        super().reset(simulator)
        self._stall_history = [None] * simulator.arch.num_clusters
        simulator.set_all_levels(simulator.arch.vf_table.default_level)

    # ------------------------------------------------------------------
    def _memory_time_fraction(self, counters: CounterSet) -> float:
        """Fraction of the epoch spent waiting on the memory domain.

        Estimated from the memory-hazard share of issue slots — the
        counter-level quantity PCSTALL's sensitivity metric is built on.
        """
        slots = counters["issue_slots"]
        if slots <= 0:
            return 0.0
        fraction = counters["stall_mem_hazard"] / slots
        return min(1.0, max(0.0, fraction))

    def _predict_loss(self, stall_fraction: float, current_hz: float,
                      target_hz: float, default_hz: float) -> float:
        """Two-term linear model: T(f) = busy * f_cur/f + memwait."""
        busy = 1.0 - stall_fraction
        time_at = busy * current_hz / target_hz + stall_fraction
        time_default = busy * current_hz / default_hz + stall_fraction
        return time_at / time_default - 1.0

    def _decide_one(self, counters: CounterSet, cluster_index: int,
                    current_level: int) -> int:
        table = self.simulator.arch.vf_table
        measured = self._memory_time_fraction(counters)
        previous = self._stall_history[cluster_index]
        if previous is None:
            blended = measured
        else:
            # Iterative-pattern smoothing: kernels repeat, so the recent
            # history is a predictor for the next epoch.
            blended = (self.history_weight * previous
                       + (1.0 - self.history_weight) * measured)
        self._stall_history[cluster_index] = blended

        current_hz = table[current_level].frequency_hz
        default_hz = table[table.default_level].frequency_hz
        for level in range(table.num_levels):
            loss = self._predict_loss(blended, current_hz,
                                      table[level].frequency_hz, default_hz)
            if loss <= self.preset:
                return level
        return table.default_level

    def decide(self, record: EpochRecord):
        """Pick each cluster's minimal level under the predicted loss."""
        if self.simulator is None:
            raise PolicyError("policy not bound to a simulator")
        if self.per_cluster:
            levels = []
            for index, counters in enumerate(record.cluster_counters):
                if counters["inst_total"] <= 0:
                    levels.append(self.simulator.arch.vf_table.min_level)
                else:
                    levels.append(self._decide_one(
                        counters, index, record.levels[index]))
            return levels
        return self._decide_one(record.counters, 0, record.levels[0])
