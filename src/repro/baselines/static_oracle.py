"""Best-static-level oracle baseline.

Exhaustively runs a kernel at every operating point and reports the
level with the best objective — the strongest *static* policy possible,
and therefore the reference that quantifies what *dynamic* (per-epoch)
DVFS adds on top of perfect offline tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PolicyError
from ..gpu.arch import GPUArchConfig
from ..gpu.kernels import KernelProfile
from ..gpu.simulator import GPUSimulator
from ..power.model import PowerModel
from ..core.policy import StaticPolicy


@dataclass(frozen=True)
class StaticSweepPoint:
    """Outcome of one pinned-level run."""

    level: int
    time_s: float
    energy_j: float

    @property
    def edp(self) -> float:
        """Energy-delay product."""
        return self.energy_j * self.time_s


@dataclass
class StaticOracleResult:
    """Full static sweep plus the chosen level."""

    points: list[StaticSweepPoint]
    chosen: StaticSweepPoint
    preset: float | None

    @property
    def best_level(self) -> int:
        """The selected operating point."""
        return self.chosen.level


def static_sweep(kernel: KernelProfile, arch: GPUArchConfig,
                 power_model: PowerModel | None = None,
                 seed: int = 0) -> list[StaticSweepPoint]:
    """Run ``kernel`` pinned at every operating point."""
    points = []
    for level in range(arch.vf_table.num_levels):
        simulator = GPUSimulator(arch, kernel, power_model, seed=seed)
        result = simulator.run(StaticPolicy(level), keep_records=False)
        points.append(StaticSweepPoint(level=level, time_s=result.time_s,
                                       energy_j=result.energy_j))
    return points


def best_static(kernel: KernelProfile, arch: GPUArchConfig,
                power_model: PowerModel | None = None,
                preset: float | None = None,
                seed: int = 0) -> StaticOracleResult:
    """Best static level by minimum EDP, optionally under a loss preset.

    With ``preset`` given, only levels whose total slowdown versus the
    default level stays within the preset are eligible (matching the
    adapted objective every policy in the paper optimises).
    """
    points = static_sweep(kernel, arch, power_model, seed=seed)
    default = points[arch.vf_table.default_level]
    eligible = points
    if preset is not None:
        if preset < 0:
            raise PolicyError("preset cannot be negative")
        eligible = [p for p in points
                    if (p.time_s - default.time_s) / default.time_s
                    <= preset + 1e-12]
        if not eligible:
            eligible = [default]
    chosen = min(eligible, key=lambda p: p.edp)
    return StaticOracleResult(points=points, chosen=chosen, preset=preset)
