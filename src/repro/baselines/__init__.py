"""Comparator DVFS policies.

Paper comparators (§V-B): adapted PCSTALL and F-LEMMA.  Extensions:
the best-static oracle and an ondemand-style utilization governor.
"""

from .flemma import FLEMMAPolicy
from .governor import UtilizationGovernor
from .pcstall import PCSTALLPolicy
from .static_oracle import (StaticOracleResult, StaticSweepPoint,
                            best_static, static_sweep)

__all__ = [
    "FLEMMAPolicy", "PCSTALLPolicy", "UtilizationGovernor",
    "StaticOracleResult", "StaticSweepPoint", "best_static", "static_sweep",
]
