"""Utilization-threshold ("ondemand"-style) governor baseline.

The classic OS DVFS governor adapted to GPU clusters: raise the
operating point when utilization is high, drop it when utilization is
low, with hysteresis.  It knows nothing about memory-boundedness — the
structural blindness that motivates counter-based policies like
PCSTALL and SSMDVFS — so it serves as the naive-dynamic reference.
"""

from __future__ import annotations

from ..errors import PolicyError
from ..gpu.counters import CounterSet
from ..gpu.simulator import EpochRecord, GPUSimulator
from ..core.policy import BasePolicy


class UtilizationGovernor(BasePolicy):
    """Step levels up/down on issue-slot utilization thresholds."""

    def __init__(self, up_threshold: float = 0.6,
                 down_threshold: float = 0.3, step: int = 1) -> None:
        super().__init__()
        if not 0.0 < down_threshold < up_threshold <= 1.0:
            raise PolicyError(
                "need 0 < down_threshold < up_threshold <= 1"
            )
        if step < 1:
            raise PolicyError("step must be >= 1")
        self.up_threshold = float(up_threshold)
        self.down_threshold = float(down_threshold)
        self.step = int(step)
        self.name = "governor"

    def reset(self, simulator: GPUSimulator) -> None:
        """Start every cluster at the default operating point."""
        super().reset(simulator)
        simulator.set_all_levels(simulator.arch.vf_table.default_level)

    @staticmethod
    def utilization(counters: CounterSet) -> float:
        """Issued share of the epoch's issue slots."""
        slots = counters["issue_slots"]
        if slots <= 0:
            return 0.0
        return min(1.0, counters["inst_total"] / slots)

    def decide(self, record: EpochRecord) -> list[int]:
        """Step each cluster by utilization thresholds."""
        if self.simulator is None:
            raise PolicyError("policy not bound to a simulator")
        table = self.simulator.arch.vf_table
        levels = []
        for current, counters in zip(record.levels,
                                     record.cluster_counters):
            utilization = self.utilization(counters)
            if utilization >= self.up_threshold:
                levels.append(table.clamp(current + self.step))
            elif utilization <= self.down_threshold:
                levels.append(table.clamp(current - self.step))
            else:
                levels.append(current)
        return levels
