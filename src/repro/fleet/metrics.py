"""Fleet-level metrics: EDP, SLO accounting, tail latency.

The paper's per-GPU metrics (normalized EDP, normalized latency) do not
capture what a datacenter operator watches.  :class:`FleetResult`
aggregates a scheduled trace into the fleet-scale triple:

* **fleet EDP** — total dissipated energy times the makespan, the
  energy-delay product of the fleet serving the whole trace;
* **SLO-violation rate** — the fraction of jobs that finished after
  their deadline (reported overall and per job class);
* **tail latency** — p50/p95/p99 of per-job latency (queue wait plus
  service), the distribution SLOs are actually written against.

Every field derives deterministically from the seeded trace replay, so
``export_json`` produces byte-identical payloads across reruns — the
property the ``fleet-smoke`` CI gate and the regression tests pin.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from ..errors import FleetError
from ..store import atomic_write_text
from .jobs import JOB_CLASSES

#: The tail percentiles every fleet report carries.
TAIL_PERCENTILES = (50, 95, 99)


def tail_latencies(latencies_s: list[float],
                   percentiles: tuple[int, ...] = TAIL_PERCENTILES
                   ) -> dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` over a latency sample."""
    if not latencies_s:
        return {f"p{p}": 0.0 for p in percentiles}
    values = np.asarray(latencies_s, dtype=float)
    return {f"p{p}": float(np.percentile(values, p)) for p in percentiles}


@dataclass(frozen=True)
class JobOutcome:
    """One job's scheduled life: arrival -> queue -> node -> completion."""

    job_id: int
    name: str
    job_class: str
    node_id: int
    arrival_s: float
    start_s: float
    finish_s: float
    service_s: float
    energy_j: float
    epochs: int
    mean_level: float
    deadline_s: float

    @property
    def wait_s(self) -> float:
        """Time spent in the pending queue."""
        return self.start_s - self.arrival_s

    @property
    def latency_s(self) -> float:
        """End-to-end latency: queue wait plus service."""
        return self.finish_s - self.arrival_s

    @property
    def violated(self) -> bool:
        """True when the job finished past its deadline."""
        return self.finish_s > self.deadline_s

    def to_payload(self) -> dict:
        """JSON-ready dict including the derived SLO fields."""
        payload = asdict(self)
        payload["wait_s"] = self.wait_s
        payload["latency_s"] = self.latency_s
        payload["violated"] = self.violated
        return payload


@dataclass
class FleetResult:
    """Aggregate outcome of one scheduled trace replay."""

    policy_name: str
    trace_name: str
    seed: int
    num_nodes: int
    outcomes: list[JobOutcome] = field(default_factory=list)
    node_summaries: list[dict] = field(default_factory=list)
    peak_queue_depth: int = 0

    # ------------------------------------------------------------------
    def _require_jobs(self) -> None:
        if not self.outcomes:
            raise FleetError("fleet result holds no job outcomes")

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion."""
        self._require_jobs()
        return (max(o.finish_s for o in self.outcomes)
                - min(o.arrival_s for o in self.outcomes))

    @property
    def total_energy_j(self) -> float:
        """Energy dissipated by every job across the fleet."""
        return sum(o.energy_j for o in self.outcomes)

    @property
    def fleet_edp(self) -> float:
        """Fleet energy-delay product: total energy x makespan."""
        return self.total_energy_j * self.makespan_s

    def violations(self, job_class: str | None = None) -> int:
        """Count of deadline misses (optionally for one class)."""
        return sum(1 for o in self.outcomes if o.violated
                   and (job_class is None or o.job_class == job_class))

    def slo_violation_rate(self, job_class: str | None = None) -> float:
        """Fraction of jobs that missed their deadline."""
        jobs = [o for o in self.outcomes
                if job_class is None or o.job_class == job_class]
        if not jobs:
            return 0.0
        return sum(1 for o in jobs if o.violated) / len(jobs)

    def latencies(self, job_class: str | None = None) -> list[float]:
        """Per-job latencies (seconds), job-id order."""
        return [o.latency_s for o in self.outcomes
                if job_class is None or o.job_class == job_class]

    def tail_latency(self, job_class: str | None = None) -> dict[str, float]:
        """p50/p95/p99 latency, overall or for one job class."""
        return tail_latencies(self.latencies(job_class))

    def mean_utilization(self) -> float:
        """Mean busy fraction across nodes over the makespan."""
        self._require_jobs()
        horizon = max(o.finish_s for o in self.outcomes)
        if horizon <= 0 or not self.node_summaries:
            return 0.0
        return float(np.mean([n["busy_s"] / horizon
                              for n in self.node_summaries]))

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-ready dict (no wall-clock: seeded replays export bit-equal)."""
        per_class = {}
        for job_class in JOB_CLASSES:
            per_class[job_class] = {
                "jobs": sum(1 for o in self.outcomes
                            if o.job_class == job_class),
                "slo_violation_rate": self.slo_violation_rate(job_class),
                "tail_latency_s": self.tail_latency(job_class),
            }
        return {
            "policy": self.policy_name,
            "trace": self.trace_name,
            "seed": self.seed,
            "nodes": self.num_nodes,
            "jobs": len(self.outcomes),
            "makespan_s": self.makespan_s,
            "total_energy_j": self.total_energy_j,
            "fleet_edp": self.fleet_edp,
            "slo_violation_rate": self.slo_violation_rate(),
            "slo_violations": self.violations(),
            "tail_latency_s": self.tail_latency(),
            "mean_utilization": self.mean_utilization(),
            "peak_queue_depth": self.peak_queue_depth,
            "per_class": per_class,
            "node_summaries": list(self.node_summaries),
            "job_outcomes": [o.to_payload() for o in self.outcomes],
        }

    def export_json(self, path: str | Path) -> Path:
        """Atomically write the payload as JSON; returns the path."""
        path = Path(path)
        atomic_write_text(path, json.dumps(self.to_payload(), indent=2,
                                           sort_keys=True))
        return path

    def render(self) -> str:
        """Human-readable fleet report."""
        from ..evaluation.reporting import format_percent, format_table
        self._require_jobs()
        rows = []
        for job_class in (None, *JOB_CLASSES):
            label = job_class or "all"
            tail = self.tail_latency(job_class)
            jobs = [o for o in self.outcomes
                    if job_class is None or o.job_class == job_class]
            rows.append([
                label, str(len(jobs)),
                format_percent(self.slo_violation_rate(job_class)),
                f"{tail['p50'] * 1e6:.1f}",
                f"{tail['p95'] * 1e6:.1f}",
                f"{tail['p99'] * 1e6:.1f}",
            ])
        table = format_table(
            ["class", "jobs", "SLO viol", "p50 (us)", "p95 (us)",
             "p99 (us)"], rows,
            title=(f"Fleet replay: policy {self.policy_name}, trace "
                   f"{self.trace_name}, {self.num_nodes} nodes, "
                   f"seed {self.seed}"))
        lines = [table,
                 f"fleet EDP {self.fleet_edp:.3e} J*s  "
                 f"(energy {self.total_energy_j * 1e3:.2f} mJ over "
                 f"makespan {self.makespan_s * 1e3:.3f} ms)",
                 f"mean node utilization "
                 f"{format_percent(self.mean_utilization())}, peak queue "
                 f"depth {self.peak_queue_depth}"]
        return "\n".join(lines)
