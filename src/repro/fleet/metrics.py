"""Fleet-level metrics: EDP, SLO accounting, tail latency, shed jobs.

The paper's per-GPU metrics (normalized EDP, normalized latency) do not
capture what a datacenter operator watches.  :class:`FleetResult`
aggregates a scheduled trace into the fleet-scale picture:

* **fleet EDP** — total dissipated energy times the makespan, the
  energy-delay product of the fleet serving the whole trace;
* **SLO-violation rate** — the fraction of *completed* jobs that
  finished after their deadline (reported overall and per job class);
* **tail latency** — p50/p95/p99 of per-job latency (queue wait plus
  service), the distribution SLOs are actually written against;
* **shed accounting** — jobs deliberately dropped by admission control
  (or stranded by a fleet-wide outage) are first-class
  :class:`ShedJob` records, *not* SLO violations: overload and node
  failure degrade into an explicit, conserved shed count instead of a
  collapsing tail.  ``completed + shed == submitted`` always holds —
  the job-conservation invariant the ``fleet-chaos`` harness pins.

Every field derives deterministically from the seeded trace replay, so
``export_json`` produces byte-identical payloads across reruns and
worker counts — the property the ``fleet-smoke`` / ``fleet-chaos``
CI gates and the regression tests pin.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from ..errors import FleetError
from ..store import atomic_write_text
from .jobs import JOB_CLASSES

#: The tail percentiles every fleet report carries.
TAIL_PERCENTILES = (50, 95, 99)

#: Reasons a job can be shed instead of served.
SHED_REASONS = ("unmeetable", "migration_limit", "stranded")


def tail_latencies(latencies_s: list[float],
                   percentiles: tuple[int, ...] = TAIL_PERCENTILES
                   ) -> dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` over a latency sample."""
    if not latencies_s:
        return {f"p{p}": 0.0 for p in percentiles}
    values = np.asarray(latencies_s, dtype=float)
    return {f"p{p}": float(np.percentile(values, p)) for p in percentiles}


@dataclass(frozen=True)
class JobOutcome:
    """One job's scheduled life: arrival -> queue -> node(s) -> completion.

    ``start_s`` is the *first* dispatch; a migrated job may run
    segments on several nodes before finishing on ``node_id``.
    ``queued_s`` accumulates every wait in the pending queue (initial
    plus post-preemption requeues), ``lost_work_s`` is service-time
    progress discarded because it happened after the job's last
    checkpoint, and ``overhead_s`` the restart cost paid on
    re-dispatch.
    """

    job_id: int
    name: str
    job_class: str
    node_id: int
    arrival_s: float
    start_s: float
    finish_s: float
    service_s: float
    energy_j: float
    epochs: int
    mean_level: float
    deadline_s: float
    migrations: int = 0
    lost_work_s: float = 0.0
    overhead_s: float = 0.0
    queued_s: float = 0.0

    @property
    def wait_s(self) -> float:
        """Time from submission to the first dispatch."""
        return self.start_s - self.arrival_s

    @property
    def latency_s(self) -> float:
        """End-to-end latency: queue wait plus service."""
        return self.finish_s - self.arrival_s

    @property
    def violated(self) -> bool:
        """True when the job finished past its deadline."""
        return self.finish_s > self.deadline_s

    def to_payload(self) -> dict:
        """JSON-ready dict including the derived SLO fields."""
        payload = asdict(self)
        payload["wait_s"] = self.wait_s
        payload["latency_s"] = self.latency_s
        payload["violated"] = self.violated
        return payload


@dataclass(frozen=True)
class ShedJob:
    """A job deliberately dropped instead of served.

    ``reason`` is one of :data:`SHED_REASONS`: ``unmeetable`` (admission
    control — the deadline could not be met with surviving capacity),
    ``migration_limit`` (preempted more times than the migration budget
    allows), or ``stranded`` (still pending when the fleet ran out of
    recoverable nodes).  Shed jobs are accounted separately from SLO
    violations and participate in the conservation invariant.
    """

    job_id: int
    name: str
    job_class: str
    arrival_s: float
    deadline_s: float
    expected_s: float
    shed_s: float
    reason: str

    def __post_init__(self) -> None:
        if self.reason not in SHED_REASONS:
            raise FleetError(f"unknown shed reason {self.reason!r}; "
                             f"expected one of {SHED_REASONS}")

    def to_payload(self) -> dict:
        """JSON-ready dict."""
        return asdict(self)


@dataclass
class FleetResult:
    """Aggregate outcome of one scheduled trace replay."""

    policy_name: str
    trace_name: str
    seed: int
    num_nodes: int
    outcomes: list[JobOutcome] = field(default_factory=list)
    node_summaries: list[dict] = field(default_factory=list)
    peak_queue_depth: int = 0
    shed: list[ShedJob] = field(default_factory=list)
    #: Jobs submitted to the replay (0 means "derive from outcomes",
    #: kept for backward construction compatibility).
    submitted: int = 0
    #: Fleet-scope resilience counters (``fleet_fault_*``,
    #: ``migration_*``, ``shed_*``, ``node_state_*``, ``queue_*``).
    counters: dict[str, int] = field(default_factory=dict)
    #: Aggregated per-policy observability (``guard_*``/``drift_*``/...)
    #: over every job of the replay.
    policy_counters: dict[str, int] = field(default_factory=dict)
    #: The injected node-fault train, in replay order (empty when the
    #: replay ran fault-free).
    fault_events: list[dict] = field(default_factory=list)

    # ------------------------------------------------------------------
    def _require_jobs(self) -> None:
        if not self.outcomes:
            raise FleetError("fleet result holds no job outcomes")

    @property
    def jobs_submitted(self) -> int:
        """Jobs submitted to the replay (conservation denominator)."""
        return self.submitted or (len(self.outcomes) + len(self.shed))

    @property
    def conserved(self) -> bool:
        """Job-conservation invariant: nothing lost or double-counted."""
        completed_ids = [o.job_id for o in self.outcomes]
        shed_ids = [s.job_id for s in self.shed]
        all_ids = completed_ids + shed_ids
        return (len(all_ids) == len(set(all_ids))
                and len(all_ids) == self.jobs_submitted)

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion (0 when nothing completed)."""
        if not self.outcomes:
            return 0.0
        return (max(o.finish_s for o in self.outcomes)
                - min(o.arrival_s for o in self.outcomes))

    @property
    def total_energy_j(self) -> float:
        """Energy dissipated by every job across the fleet."""
        return sum(o.energy_j for o in self.outcomes)

    @property
    def fleet_edp(self) -> float:
        """Fleet energy-delay product: total energy x makespan."""
        return self.total_energy_j * self.makespan_s

    def violations(self, job_class: str | None = None) -> int:
        """Count of deadline misses (optionally for one class)."""
        return sum(1 for o in self.outcomes if o.violated
                   and (job_class is None or o.job_class == job_class))

    def slo_violation_rate(self, job_class: str | None = None) -> float:
        """Fraction of completed jobs that missed their deadline."""
        jobs = [o for o in self.outcomes
                if job_class is None or o.job_class == job_class]
        if not jobs:
            return 0.0
        return sum(1 for o in jobs if o.violated) / len(jobs)

    def shed_rate(self, job_class: str | None = None) -> float:
        """Fraction of submitted jobs that were shed (optionally per class)."""
        if job_class is None:
            total = self.jobs_submitted
            count = len(self.shed)
        else:
            total = (sum(1 for o in self.outcomes
                         if o.job_class == job_class)
                     + sum(1 for s in self.shed
                           if s.job_class == job_class))
            count = sum(1 for s in self.shed if s.job_class == job_class)
        return count / total if total else 0.0

    def migrations_total(self) -> int:
        """Total preemption-driven migrations across completed jobs."""
        return sum(o.migrations for o in self.outcomes)

    def latencies(self, job_class: str | None = None) -> list[float]:
        """Per-job latencies (seconds), job-id order."""
        return [o.latency_s for o in self.outcomes
                if job_class is None or o.job_class == job_class]

    def tail_latency(self, job_class: str | None = None) -> dict[str, float]:
        """p50/p95/p99 latency, overall or for one job class."""
        return tail_latencies(self.latencies(job_class))

    def mean_utilization(self) -> float:
        """Mean busy fraction across nodes over the makespan."""
        if not self.outcomes:
            return 0.0
        horizon = max(o.finish_s for o in self.outcomes)
        if horizon <= 0 or not self.node_summaries:
            return 0.0
        return float(np.mean([n["busy_s"] / horizon
                              for n in self.node_summaries]))

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-ready dict (no wall-clock: seeded replays export bit-equal)."""
        per_class = {}
        for job_class in JOB_CLASSES:
            per_class[job_class] = {
                "jobs": sum(1 for o in self.outcomes
                            if o.job_class == job_class),
                "slo_violation_rate": self.slo_violation_rate(job_class),
                "tail_latency_s": self.tail_latency(job_class),
                "shed": sum(1 for s in self.shed
                            if s.job_class == job_class),
            }
        return {
            "policy": self.policy_name,
            "trace": self.trace_name,
            "seed": self.seed,
            "nodes": self.num_nodes,
            "jobs": len(self.outcomes),
            "submitted": self.jobs_submitted,
            "conserved": self.conserved,
            "makespan_s": self.makespan_s,
            "total_energy_j": self.total_energy_j,
            "fleet_edp": self.fleet_edp,
            "slo_violation_rate": self.slo_violation_rate(),
            "slo_violations": self.violations(),
            "tail_latency_s": self.tail_latency(),
            "mean_utilization": self.mean_utilization(),
            "peak_queue_depth": self.peak_queue_depth,
            "shed_jobs": len(self.shed),
            "shed_rate": self.shed_rate(),
            "migrations": self.migrations_total(),
            "per_class": per_class,
            "counters": dict(sorted(self.counters.items())),
            "policy_counters": dict(sorted(self.policy_counters.items())),
            "fault_events": list(self.fault_events),
            "node_summaries": list(self.node_summaries),
            "shed": [s.to_payload() for s in self.shed],
            "job_outcomes": [o.to_payload() for o in self.outcomes],
        }

    def export_json(self, path: str | Path) -> Path:
        """Atomically write the payload as JSON; returns the path."""
        path = Path(path)
        atomic_write_text(path, json.dumps(self.to_payload(), indent=2,
                                           sort_keys=True))
        return path

    def render(self) -> str:
        """Human-readable fleet report."""
        from ..evaluation.reporting import format_percent, format_table
        self._require_jobs()
        rows = []
        for job_class in (None, *JOB_CLASSES):
            label = job_class or "all"
            tail = self.tail_latency(job_class)
            jobs = [o for o in self.outcomes
                    if job_class is None or o.job_class == job_class]
            rows.append([
                label, str(len(jobs)),
                format_percent(self.slo_violation_rate(job_class)),
                f"{tail['p50'] * 1e6:.1f}",
                f"{tail['p95'] * 1e6:.1f}",
                f"{tail['p99'] * 1e6:.1f}",
            ])
        table = format_table(
            ["class", "jobs", "SLO viol", "p50 (us)", "p95 (us)",
             "p99 (us)"], rows,
            title=(f"Fleet replay: policy {self.policy_name}, trace "
                   f"{self.trace_name}, {self.num_nodes} nodes, "
                   f"seed {self.seed}"))
        lines = [table,
                 f"fleet EDP {self.fleet_edp:.3e} J*s  "
                 f"(energy {self.total_energy_j * 1e3:.2f} mJ over "
                 f"makespan {self.makespan_s * 1e3:.3f} ms)",
                 f"mean node utilization "
                 f"{format_percent(self.mean_utilization())}, peak queue "
                 f"depth {self.peak_queue_depth}"]
        if self.shed or self.migrations_total() or self.fault_events:
            lines.append(
                f"resilience: {len(self.fault_events)} node faults, "
                f"{self.migrations_total()} migrations, "
                f"{len(self.shed)} shed "
                f"({format_percent(self.shed_rate())} of submitted), "
                f"conserved={'yes' if self.conserved else 'NO'}")
        return "\n".join(lines)
