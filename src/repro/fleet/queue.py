"""Deadline-aware pending-job queue.

Jobs wait here between arrival and dispatch.  Ordering is earliest-
deadline-first (EDF): the job whose deadline expires soonest is always
served next, with FIFO arrival order as the deterministic tie-break.
Latency-sensitive jobs carry much tighter deadlines than throughput
jobs, so EDF naturally prioritises the interactive traffic without a
separate priority lane — a throughput job only runs ahead of a latency
job when the latency job still has more slack than it does.
"""

from __future__ import annotations

import heapq

from ..errors import FleetError
from .jobs import Job


class PendingJobQueue:
    """Earliest-deadline-first queue of jobs awaiting dispatch."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Job]] = []
        self._pushes = 0
        #: High-water mark of the backlog (fleet observability).
        self.peak_depth = 0

    def push(self, job: Job) -> None:
        """Enqueue a job, keyed by its deadline (FIFO tie-break)."""
        heapq.heappush(self._heap, (job.deadline_s, self._pushes, job))
        self._pushes += 1
        self.peak_depth = max(self.peak_depth, len(self._heap))

    def pop(self) -> Job:
        """Remove and return the job with the earliest deadline."""
        if not self._heap:
            raise FleetError("cannot pop an empty pending-job queue")
        return heapq.heappop(self._heap)[2]

    def peek(self) -> Job:
        """The job that :meth:`pop` would return, without removing it."""
        if not self._heap:
            raise FleetError("cannot peek an empty pending-job queue")
        return self._heap[0][2]

    def jobs(self) -> list[Job]:
        """Pending jobs in dispatch order (non-destructive)."""
        return [entry[2] for entry in sorted(self._heap)]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
