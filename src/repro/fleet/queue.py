"""Deadline-aware pending-job queue with admission control.

Jobs wait here between arrival and dispatch.  Ordering is earliest-
deadline-first (EDF): the job whose deadline expires soonest is always
served next, with FIFO arrival order as the deterministic tie-break.
Latency-sensitive jobs carry much tighter deadlines than throughput
jobs, so EDF naturally prioritises the interactive traffic without a
separate priority lane — a throughput job only runs ahead of a latency
job when the latency job still has more slack than it does.

Two resilience concerns live here too:

* **Requeue accounting** — a job migrated off a failed node re-enters
  the queue with ``push(job, requeued=True)``.  Requeued entries keep
  their original :class:`~repro.fleet.jobs.Job` (and therefore their
  original submit time and deadline, which is what deadline-slack
  computations key on) and are *excluded* from :attr:`peak_depth`, so
  migration churn cannot masquerade as fresh demand in queue-depth
  stats; :attr:`peak_depth_total` keeps the raw high-water mark and
  :attr:`requeues` counts the churn itself.
* **Admission control** — :class:`AdmissionConfig` describes when the
  dispatcher may shed a job whose deadline has become unmeetable with
  the surviving capacity, so overload degrades into accounted shed
  jobs instead of a collapsing tail.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..errors import FleetError
from .jobs import THROUGHPUT, Job


@dataclass(frozen=True)
class AdmissionConfig:
    """When and what the dispatcher may shed under overload.

    Disabled by default (every job is eventually served, PR-6
    behaviour).  When enabled, a job popped for dispatch whose
    remaining service estimate can no longer meet its deadline — even
    if started immediately — is shed *iff* its class is in
    ``sheddable_classes`` (throughput-class by default: latency jobs
    are the SLO the fleet is judged on, so they run and get accounted
    as violations, which is what should page an operator).
    ``slack_s`` grants extra grace beyond the deadline before a job
    counts as unmeetable.
    """

    enabled: bool = False
    slack_s: float = 0.0
    sheddable_classes: tuple[str, ...] = (THROUGHPUT,)

    def __post_init__(self) -> None:
        if self.slack_s < 0:
            raise FleetError("admission slack_s cannot be negative")

    def sheddable(self, job: Job, now_s: float,
                  remaining_estimate_s: float) -> bool:
        """True when ``job`` should be shed instead of dispatched."""
        if not self.enabled or job.job_class not in self.sheddable_classes:
            return False
        return now_s + remaining_estimate_s > job.deadline_s + self.slack_s


class PendingJobQueue:
    """Earliest-deadline-first queue of jobs awaiting dispatch."""

    def __init__(self) -> None:
        #: Heap entries: ``(deadline_s, push_seq, requeued, job)``.
        self._heap: list[tuple[float, int, bool, Job]] = []
        self._pushes = 0
        #: Requeued entries currently pending (excluded from peak_depth).
        self._requeued_pending = 0
        #: High-water mark of *first-time* pending jobs: requeued
        #: (migrated/preempted) entries are excluded so they are not
        #: double-counted as fresh backlog.
        self.peak_depth = 0
        #: High-water mark of the raw backlog, requeues included.
        self.peak_depth_total = 0
        #: Total requeued (migrated/preempted) pushes.
        self.requeues = 0

    def push(self, job: Job, *, requeued: bool = False) -> None:
        """Enqueue a job, keyed by its deadline (FIFO tie-break).

        ``requeued`` marks a migrated/preempted job re-entering the
        queue: it keeps its original ``Job`` record (submit time and
        deadline included) and does not inflate :attr:`peak_depth`.
        """
        heapq.heappush(self._heap,
                       (job.deadline_s, self._pushes, requeued, job))
        self._pushes += 1
        if requeued:
            self.requeues += 1
            self._requeued_pending += 1
        self.peak_depth = max(self.peak_depth,
                              len(self._heap) - self._requeued_pending)
        self.peak_depth_total = max(self.peak_depth_total, len(self._heap))

    def pop(self) -> Job:
        """Remove and return the job with the earliest deadline."""
        if not self._heap:
            raise FleetError("cannot pop an empty pending-job queue")
        _, _, requeued, job = heapq.heappop(self._heap)
        if requeued:
            self._requeued_pending -= 1
        return job

    def peek(self) -> Job:
        """The job that :meth:`pop` would return, without removing it."""
        if not self._heap:
            raise FleetError("cannot peek an empty pending-job queue")
        return self._heap[0][3]

    def jobs(self) -> list[Job]:
        """Pending jobs in dispatch order (non-destructive)."""
        return [entry[3] for entry in sorted(self._heap)]

    def counters(self) -> dict[str, int]:
        """Queue observability counters for ``--stats`` aggregation."""
        return {"queue_peak_depth": self.peak_depth,
                "queue_peak_depth_total": self.peak_depth_total,
                "queue_requeues": self.requeues}

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
