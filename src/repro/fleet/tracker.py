"""Per-GPU node state and least-contended placement.

The tracker maintains what the dispatcher knows about every simulated
GPU: when it frees up (contention), how much work and energy it has
absorbed (load), the mean operating level its controller last ran at
(frequency state), and a first-order thermal proxy.  Placement picks
the **least-contended** node: smallest backlog first, then the coolest
and least-loaded node, with the node id as the final deterministic
tie-break — so an idle fleet round-robins by temperature instead of
piling every job onto node 0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import FleetError
from .jobs import Job

#: Ambient temperature of the thermal proxy (deg C).
AMBIENT_C = 35.0


@dataclass
class NodeState:
    """Dispatcher-visible state of one simulated GPU."""

    node_id: int
    free_at_s: float = 0.0
    jobs_assigned: int = 0
    jobs_done: int = 0
    busy_s: float = 0.0
    energy_j: float = 0.0
    temperature_c: float = AMBIENT_C
    peak_temperature_c: float = AMBIENT_C
    last_level_mean: float = 0.0
    last_update_s: float = 0.0

    def backlog_s(self, now_s: float) -> float:
        """Seconds of already-committed work beyond ``now_s``."""
        return max(0.0, self.free_at_s - now_s)

    def utilization(self, horizon_s: float) -> float:
        """Busy fraction of the run horizon."""
        return self.busy_s / horizon_s if horizon_s > 0 else 0.0

    def to_payload(self) -> dict:
        """JSON-ready summary of this node."""
        return {
            "node_id": self.node_id,
            "jobs_done": self.jobs_done,
            "busy_s": self.busy_s,
            "energy_j": self.energy_j,
            "peak_temperature_c": self.peak_temperature_c,
            "last_level_mean": self.last_level_mean,
        }


@dataclass
class ThermalConfig:
    """First-order RC thermal proxy: heat per joule, exponential cool-down."""

    ambient_c: float = AMBIENT_C
    #: Temperature rise per joule of dissipated energy (deg C / J).
    heat_per_joule: float = 40.0
    #: Cool-down time constant (seconds of simulated fleet time).
    tau_s: float = 2e-3

    def __post_init__(self) -> None:
        if self.heat_per_joule < 0 or self.tau_s <= 0:
            raise FleetError("thermal proxy needs heat_per_joule >= 0 "
                             "and tau_s > 0")


class NodeTracker:
    """Book-keeping and placement over the fleet's simulated GPUs."""

    def __init__(self, num_nodes: int,
                 thermal: ThermalConfig | None = None) -> None:
        if num_nodes < 1:
            raise FleetError("a fleet needs at least one node")
        self.thermal = thermal or ThermalConfig()
        self.nodes = [NodeState(node_id=i,
                                temperature_c=self.thermal.ambient_c,
                                peak_temperature_c=self.thermal.ambient_c)
                      for i in range(num_nodes)]

    def __len__(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    def _cool(self, node: NodeState, now_s: float) -> None:
        """Decay the node's temperature toward ambient up to ``now_s``."""
        elapsed = max(0.0, now_s - node.last_update_s)
        if elapsed > 0:
            node.temperature_c = (
                self.thermal.ambient_c
                + (node.temperature_c - self.thermal.ambient_c)
                * math.exp(-elapsed / self.thermal.tau_s))
            node.last_update_s = now_s

    def contention_key(self, node: NodeState,
                       now_s: float) -> tuple[float, float, float, int]:
        """Placement sort key: backlog, then heat, then load, then id."""
        return (node.backlog_s(now_s), node.temperature_c, node.busy_s,
                node.node_id)

    def least_contended(self, now_s: float) -> NodeState:
        """The node the dispatcher should place the next job on."""
        for node in self.nodes:
            self._cool(node, now_s)
        return min(self.nodes, key=lambda n: self.contention_key(n, now_s))

    def idle_nodes(self, now_s: float) -> list[NodeState]:
        """Nodes with no committed work beyond ``now_s``."""
        return [n for n in self.nodes if n.free_at_s <= now_s + 1e-15]

    # ------------------------------------------------------------------
    def assign(self, node: NodeState, job: Job, start_s: float,
               finish_s: float) -> None:
        """Commit a job to a node for the ``[start_s, finish_s)`` window."""
        if finish_s < start_s:
            raise FleetError("job cannot finish before it starts")
        if start_s < node.free_at_s - 1e-15:
            raise FleetError(
                f"node {node.node_id} is busy until {node.free_at_s:.6g}s; "
                f"cannot start a job at {start_s:.6g}s")
        node.free_at_s = finish_s
        node.jobs_assigned += 1

    def complete(self, node: NodeState, finish_s: float, service_s: float,
                 energy_j: float, mean_level: float) -> None:
        """Fold a finished job's measurements into the node state."""
        self._cool(node, finish_s)
        node.jobs_done += 1
        node.busy_s += service_s
        node.energy_j += energy_j
        node.last_level_mean = mean_level
        node.temperature_c += self.thermal.heat_per_joule * energy_j
        node.peak_temperature_c = max(node.peak_temperature_c,
                                      node.temperature_c)

    def to_payload(self) -> list[dict]:
        """JSON-ready per-node summaries, ordered by node id."""
        return [node.to_payload() for node in self.nodes]
